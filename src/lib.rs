//! Umbrella crate for the *On-Stack Replacement, Distilled* (PLDI 2018)
//! reproduction.
//!
//! The workspace is layered bottom-up:
//!
//! * [`tinylang`] — the formal language of §2–§4 (programs, stores, traces);
//! * [`ctl`] — the CTL model checker discharging rewrite side conditions;
//! * [`rewrite`] — LVE program transformations (CP, DCE, Hoist);
//! * [`osr`] — OSR mappings, compensation code, Algorithm 1, `OSR_trans`;
//! * [`ssair`] — the SSA compiler substrate with OSR-aware passes (§5);
//! * [`minic`] — a small C-like frontend lowering to `ssair`;
//! * [`debugger`] — the §7 source-level debugging study;
//! * [`workloads`] — Table 2 kernels and the seeded SPEC-like corpus;
//! * [`tinyvm`] — a profiling interpreter firing real OSR transitions;
//! * [`engine`] — a concurrent multi-tier execution service: O1/O2 pipeline
//!   ladder, composed version-to-version OSR, persistent sessions, sharded
//!   code cache;
//! * [`bench`](https://docs.rs/bench) (workspace member) — table/figure
//!   regeneration and Criterion-style benches.
//!
//! This crate only re-exports the members; the top-level `tests/` and
//! `examples/` directories compile against it.

// (`bench` is not re-exported: its name collides with the built-in
// `#[bench]` attribute in the macro namespace; depend on it directly.)
pub use ctl;
pub use debugger;
pub use engine;
pub use minic;
pub use osr;
pub use rewrite;
pub use ssair;
pub use tinylang;
pub use tinyvm;
pub use workloads;
