//! Symbolic debugging of optimized code (§7 of *On-Stack Replacement,
//! Distilled*): endangered-variable analysis and state recovery.
//!
//! The study works on a `(fbase, fopt, CodeMapper)` triple:
//!
//! 1. [`bindings::BindingAnalysis`] recovers, for every location of the
//!    baseline function, which SSA value each **source variable** holds —
//!    from the `DbgValue` pseudo-instructions `mem2reg` materialized
//!    (the `llvm.dbg.value` analogue);
//! 2. for every location of the optimized function that has a source-level
//!    location in `fbase` as its OSR landing pad, [`analyze_function`]
//!    checks which user variables are *endangered* — their expected value
//!    is not directly available in the optimized frame — and whether
//!    `reconstruct` can recover them, in both the `live` and `avail`
//!    variants (§7.2, §7.4);
//! 3. the per-function [`FunctionReport`]s aggregate into the
//!    [`StudySummary`] rows of Table 4, Figure 9, and Table 5.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use debugger::analyze_function;
//! use ssair::passes::Pipeline;
//!
//! let m = minic::compile(
//!     "fn f(x, n) {
//!          var s = 0;
//!          for (var i = 0; i < n; i = i + 1) { s = s + x * x; }
//!          return s;
//!      }",
//! )?;
//! let base = m.get("f").unwrap().clone();
//! let (opt, cm, _) = Pipeline::standard().optimize(&base);
//! let report = analyze_function(&base, &opt, &cm);
//! // Every endangered variable in this function is recoverable.
//! assert_eq!(report.recoverable_avail, report.endangered_total);
//! # Ok(())
//! # }
//! ```

pub mod bindings;
mod study;

pub use study::{analyze_function, FunctionReport, StudySummary};
