//! Source-variable → SSA-value binding analysis.
//!
//! `mem2reg` materializes a `DbgValue { var, value }` pseudo-instruction
//! after every promoted store (§7.2).  This forward dataflow computes, for
//! every program location, the unique binding of each source variable —
//! or ⊤ when different paths disagree (the debugger then cannot report the
//! variable, mirroring LLVM's dropped `dbg.value` at merges).

use std::collections::BTreeMap;

use ssair::cfg::Cfg;
use ssair::{BlockId, Function, InstId, InstKind, ValueId};

/// Binding lattice: unknown (no binding seen), a unique value, or
/// conflicting values (⊤).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Binding {
    /// No binding reaches this point.
    Unbound,
    /// A unique SSA value holds the variable.
    Value(ValueId),
    /// Different paths bind different values.
    Conflict,
}

impl Binding {
    fn meet(self, other: Binding) -> Binding {
        match (self, other) {
            (Binding::Unbound, x) | (x, Binding::Unbound) => x,
            (Binding::Value(a), Binding::Value(b)) if a == b => Binding::Value(a),
            _ => Binding::Conflict,
        }
    }

    /// The bound value, if unique.
    pub fn value(self) -> Option<ValueId> {
        match self {
            Binding::Value(v) => Some(v),
            _ => None,
        }
    }
}

type Env = BTreeMap<String, Binding>;

/// Per-block binding environments with per-location queries.
pub struct BindingAnalysis {
    block_in: BTreeMap<BlockId, Env>,
    /// Every variable name with at least one binding.
    pub variables: Vec<String>,
}

impl BindingAnalysis {
    /// Runs the analysis on `f` (typically the baseline version).
    pub fn compute(f: &Function) -> BindingAnalysis {
        let cfg = Cfg::compute(f);
        let mut variables: Vec<String> = Vec::new();
        for (_, i) in f.inst_iter() {
            if let InstKind::DbgValue { var, .. } = &f.inst(i).kind {
                if !variables.contains(var) {
                    variables.push(var.clone());
                }
            }
        }
        let mut block_in: BTreeMap<BlockId, Env> = BTreeMap::new();
        let mut block_out: BTreeMap<BlockId, Env> = BTreeMap::new();
        for b in f.block_ids() {
            block_in.insert(b, Env::new());
            block_out.insert(b, Env::new());
        }
        loop {
            let mut changed = false;
            for &b in &cfg.rpo {
                let mut inn = Env::new();
                let preds = cfg.preds_of(b);
                for (k, p) in preds.iter().enumerate() {
                    let pout = &block_out[p];
                    if k == 0 {
                        inn = pout.clone();
                    } else {
                        let mut merged = Env::new();
                        for var in &variables {
                            let a = inn.get(var).copied().unwrap_or(Binding::Unbound);
                            let bv = pout.get(var).copied().unwrap_or(Binding::Unbound);
                            merged.insert(var.clone(), a.meet(bv));
                        }
                        inn = merged;
                    }
                }
                let mut out = inn.clone();
                for &i in &f.block(b).insts {
                    if let InstKind::DbgValue { var, value } = &f.inst(i).kind {
                        out.insert(var.clone(), Binding::Value(*value));
                    }
                }
                if block_in[&b] != inn || block_out[&b] != out {
                    block_in.insert(b, inn);
                    block_out.insert(b, out);
                    changed = true;
                }
            }
            if !changed {
                return BindingAnalysis {
                    block_in,
                    variables,
                };
            }
        }
    }

    /// The binding environment just before instruction `at` executes.
    ///
    /// # Panics
    ///
    /// Panics if `at` has been removed from the function.
    pub fn bindings_before(&self, f: &Function, at: InstId) -> Env {
        let b = f.block_of(at).expect("live instruction");
        let mut env = self.block_in.get(&b).cloned().unwrap_or_default();
        for &i in &f.block(b).insts {
            if i == at {
                break;
            }
            if let InstKind::DbgValue { var, value } = &f.inst(i).kind {
                env.insert(var.clone(), Binding::Value(*value));
            }
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_bindings() {
        let m = minic::compile(
            "fn f(x) {
                 var y = x + 1;
                 var z = y * 2;
                 return z;
             }",
        )
        .unwrap();
        let f = m.get("f").unwrap();
        let ba = BindingAnalysis::compute(f);
        assert!(ba.variables.contains(&"y".to_string()));
        // At the binding of z, y is already bound.
        let z_dbg = f
            .inst_iter()
            .map(|(_, i)| i)
            .find(|i| matches!(&f.inst(*i).kind, InstKind::DbgValue { var, .. } if var == "z"))
            .expect("dbg for z");
        let env = ba.bindings_before(f, z_dbg);
        assert!(env.get("y").and_then(|b| b.value()).is_some());
        assert!(env.get("x").and_then(|b| b.value()).is_some());
    }

    #[test]
    fn merge_conflict_detected() {
        let m = minic::compile(
            "fn f(c, x) {
                 var r = 0;
                 if (c) { r = x + 1; } else { r = x - 1; }
                 var q = r * 2;
                 return q;
             }",
        )
        .unwrap();
        let f = m.get("f").unwrap();
        let ba = BindingAnalysis::compute(f);
        // After the merge, r's binding depends on the φ: the two dbg
        // bindings conflict (LLVM would likewise lose the dbg.value).
        let q_dbg = f
            .inst_iter()
            .map(|(_, i)| i)
            .find(|i| matches!(&f.inst(*i).kind, InstKind::DbgValue { var, .. } if var == "q"))
            .expect("dbg for q");
        let env = ba.bindings_before(f, q_dbg);
        assert_eq!(env.get("r"), Some(&Binding::Conflict));
        // x stays uniquely bound throughout.
        assert!(env.get("x").and_then(|b| b.value()).is_some());
    }

    #[test]
    fn loop_binding_conflict() {
        let m = minic::compile(
            "fn f(n) {
                 var s = 0;
                 var i = 0;
                 while (i < n) { s = s + i; i = i + 1; }
                 return s;
             }",
        )
        .unwrap();
        let f = m.get("f").unwrap();
        let _ba = BindingAnalysis::compute(f);
        // Inside the loop the binding of s from entry conflicts with the
        // one from the latch.
        let in_loop = f.inst_iter().map(|(_, i)| i).find(|i| {
            matches!(&f.inst(*i).kind, InstKind::DbgValue { var, .. } if var == "s")
                && f.inst(*i).line.is_some()
        });
        assert!(in_loop.is_some());
    }
}
