//! The §7 feasibility study: endangered user variables at breakpoints in
//! optimized code, and their recovery via `reconstruct`.

use std::collections::BTreeSet;

use ssair::feasibility::{landing_site, osr_points};
use ssair::reconstruct::{Direction, OsrPair, Variant};
use ssair::{Function, SsaMapper, ValueId};

use crate::bindings::BindingAnalysis;

/// Per-function results of the endangered-variable analysis (one function's
/// contribution to Table 4, Figure 9, and Table 5).
#[derive(Clone, Debug, Default)]
pub struct FunctionReport {
    /// Whether the optimizer changed the function at all.
    pub optimized: bool,
    /// Breakpoint locations analyzed (optimized-code points whose landing
    /// pad is a source-level location).
    pub total_points: usize,
    /// Points with at least one endangered user variable.
    pub affected_points: usize,
    /// Number of endangered user variables at each affected point.
    pub endangered_per_point: Vec<usize>,
    /// Total endangered (variable, point) observations.
    pub endangered_total: usize,
    /// Observations recoverable by the `live` variant.
    pub recoverable_live: usize,
    /// Observations recoverable by the `avail` variant (superset of live).
    pub recoverable_avail: usize,
    /// Values the `avail` variant must keep available in the optimized
    /// frame, over all analyzed points (the keep set of Table 5).
    pub keep_set: BTreeSet<ValueId>,
}

impl FunctionReport {
    /// Whether the function contains endangered user variables (the
    /// `|F_end|` membership of Table 4).
    pub fn is_endangered(&self) -> bool {
        self.affected_points > 0
    }

    /// Fraction of analyzed points with endangered variables.
    pub fn affected_fraction(&self) -> f64 {
        if self.total_points == 0 {
            0.0
        } else {
            self.affected_points as f64 / self.total_points as f64
        }
    }

    /// Average endangered variables per affected point.
    pub fn avg_endangered_per_affected(&self) -> f64 {
        if self.endangered_per_point.is_empty() {
            0.0
        } else {
            self.endangered_per_point.iter().sum::<usize>() as f64
                / self.endangered_per_point.len() as f64
        }
    }

    /// Peak endangered variables at a single point.
    pub fn max_endangered(&self) -> usize {
        self.endangered_per_point.iter().copied().max().unwrap_or(0)
    }

    /// Average recoverability ratio for a variant's counts.
    pub fn recoverability(&self, avail: bool) -> f64 {
        if self.endangered_total == 0 {
            1.0
        } else {
            let r = if avail {
                self.recoverable_avail
            } else {
                self.recoverable_live
            };
            r as f64 / self.endangered_total as f64
        }
    }
}

/// Runs the endangered-variable analysis for one `(fbase, fopt, mapper)`
/// triple.
///
/// For every optimized-code location whose OSR landing pad is a baseline
/// location carrying a source line, the user variables bound at the landing
/// pad are checked: a variable is *endangered* when its expected SSA value
/// is not live in the optimized frame at the breakpoint; recovery is then
/// attempted with `reconstruct` in the `live` and `avail` variants (§7.2).
pub fn analyze_function(base: &Function, opt: &Function, cm: &SsaMapper) -> FunctionReport {
    let pair = OsrPair::new(base, opt, cm);
    let binding = BindingAnalysis::compute(base);
    let mut report = FunctionReport {
        optimized: cm.counts().total() > 0,
        ..FunctionReport::default()
    };
    for p in osr_points(opt) {
        // Only optimized-code locations that correspond to a source line.
        if opt.inst(p).line.is_none() {
            continue;
        }
        let Some(landing) = landing_site(opt, base, cm, p) else {
            continue;
        };
        if base.inst(landing.loc).line.is_none() {
            continue;
        }
        report.total_points += 1;

        let env = binding.bindings_before(base, landing.loc);
        let src_live = pair.opt.live.live_before(opt, p);
        let dst_live = pair.base.live.live_before(base, landing.loc);

        let mut endangered_here = 0;
        for (_var, b) in env.iter() {
            let Some(v) = b.value() else { continue };
            // The paper's analysis considers user variables whose value is
            // live at the *destination* (§7.2): a variable the debugger
            // could not report even in unoptimized code is out of scope.
            if !dst_live.contains(&v) {
                continue;
            }
            // Is the expected value directly available in the optimized
            // frame?  (Its counterpart is live at the breakpoint.)
            let counterpart_live = {
                let r = cm.resolve_value(v);
                src_live.contains(&r)
            };
            if counterpart_live {
                continue; // reported correctly without any work
            }
            endangered_here += 1;
            report.endangered_total += 1;
            if pair
                .reconstruct_value(Direction::Backward, p, landing.loc, Variant::Live, v)
                .is_ok()
            {
                report.recoverable_live += 1;
            }
            if let Ok(entry) =
                pair.reconstruct_value(Direction::Backward, p, landing.loc, Variant::Avail, v)
            {
                report.recoverable_avail += 1;
                report.keep_set.extend(entry.keep.iter().copied());
            }
        }
        if endangered_here > 0 {
            report.affected_points += 1;
            report.endangered_per_point.push(endangered_here);
        }
    }
    report
}

/// Aggregate over a corpus of functions: the rows of Table 4, Figure 9, and
/// Table 5 for one benchmark.
#[derive(Clone, Debug, Default)]
pub struct StudySummary {
    /// `|F_tot|`: functions analyzed.
    pub total_functions: usize,
    /// `|F_opt|`: functions the optimizer changed.
    pub optimized_functions: usize,
    /// `|F_end|`: functions with endangered user variables.
    pub endangered_functions: usize,
    /// Weighted average (by `|f_base|`) of affected-point fractions.
    pub avg_affected_weighted: f64,
    /// Unweighted average of affected-point fractions.
    pub avg_affected_unweighted: f64,
    /// Mean endangered variables per affected point.
    pub avg_endangered: f64,
    /// Standard deviation of endangered variables per affected point.
    pub sd_endangered: f64,
    /// Peak endangered variables at a point.
    pub max_endangered: usize,
    /// Global average recoverability ratio, `live` variant (weighted).
    pub recoverability_live: f64,
    /// Global average recoverability ratio, `avail` variant (weighted).
    pub recoverability_avail: f64,
    /// Fraction of endangered functions with a non-empty keep set.
    pub keep_fraction: f64,
    /// Average keep-set size over functions with non-empty keep sets.
    pub keep_avg: f64,
    /// Standard deviation of keep-set sizes over those functions.
    pub keep_sd: f64,
}

impl StudySummary {
    /// Aggregates per-function reports; `weights[i]` is `|f_base|` of
    /// function `i` (the paper weights by baseline size).
    pub fn aggregate(reports: &[FunctionReport], weights: &[usize]) -> StudySummary {
        assert_eq!(reports.len(), weights.len(), "one weight per report");
        let mut s = StudySummary {
            total_functions: reports.len(),
            ..StudySummary::default()
        };
        let mut frac_w_num = 0.0;
        let mut frac_w_den = 0.0;
        let mut frac_u = Vec::new();
        let mut all_counts: Vec<usize> = Vec::new();
        let mut rec_live_num = 0.0;
        let mut rec_avail_num = 0.0;
        let mut rec_den = 0.0;
        let mut keeps: Vec<usize> = Vec::new();
        for (r, &w) in reports.iter().zip(weights) {
            if r.optimized {
                s.optimized_functions += 1;
            }
            if r.is_endangered() {
                s.endangered_functions += 1;
                frac_w_num += r.affected_fraction() * w as f64;
                frac_w_den += w as f64;
                frac_u.push(r.affected_fraction());
                all_counts.extend(r.endangered_per_point.iter().copied());
                rec_live_num += r.recoverability(false) * w as f64;
                rec_avail_num += r.recoverability(true) * w as f64;
                rec_den += w as f64;
                keeps.push(r.keep_set.len());
            }
        }
        if frac_w_den > 0.0 {
            s.avg_affected_weighted = frac_w_num / frac_w_den;
        }
        if !frac_u.is_empty() {
            s.avg_affected_unweighted = frac_u.iter().sum::<f64>() / frac_u.len() as f64;
        }
        if !all_counts.is_empty() {
            let mean = all_counts.iter().sum::<usize>() as f64 / all_counts.len() as f64;
            s.avg_endangered = mean;
            let var = all_counts
                .iter()
                .map(|&c| (c as f64 - mean).powi(2))
                .sum::<f64>()
                / all_counts.len() as f64;
            s.sd_endangered = var.sqrt();
            s.max_endangered = all_counts.iter().copied().max().unwrap_or(0);
        }
        if rec_den > 0.0 {
            s.recoverability_live = rec_live_num / rec_den;
            s.recoverability_avail = rec_avail_num / rec_den;
        }
        let nonzero: Vec<usize> = keeps.iter().copied().filter(|k| *k > 0).collect();
        if !keeps.is_empty() {
            s.keep_fraction = nonzero.len() as f64 / keeps.len() as f64;
        }
        if !nonzero.is_empty() {
            let mean = nonzero.iter().sum::<usize>() as f64 / nonzero.len() as f64;
            s.keep_avg = mean;
            let var = nonzero
                .iter()
                .map(|&k| (k as f64 - mean).powi(2))
                .sum::<f64>()
                / nonzero.len() as f64;
            s.keep_sd = var.sqrt();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssair::passes::Pipeline;

    fn study(src: &str, name: &str) -> FunctionReport {
        let m = minic::compile(src).unwrap();
        let base = m.get(name).unwrap().clone();
        let (opt, cm, _) = Pipeline::standard().optimize(&base);
        analyze_function(&base, &opt, &cm)
    }

    #[test]
    fn hoisted_code_creates_endangered_vars() {
        // t = x*x is invariant and hoisted; inside the loop the user's `t`
        // and loop counters remain inspectable, but intermediate dead
        // values can become endangered.
        let r = study(
            "fn f(x, n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) {
                     var t = x * x;
                     s = s + t + i;
                 }
                 return s;
             }",
            "f",
        );
        assert!(r.optimized);
        assert!(r.total_points > 0);
        // Everything endangered must be avail-recoverable here.
        assert_eq!(r.recoverable_avail, r.endangered_total, "{r:?}");
    }

    #[test]
    fn unoptimized_function_has_no_endangered_vars() {
        let r = study(
            "fn id(x) {
                 return x;
             }",
            "id",
        );
        assert_eq!(r.endangered_total, 0);
        assert!((r.recoverability(true) - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn dead_user_variable_is_endangered_and_recoverable() {
        // `dead` is computed but unused afterwards: ADCE removes it; at a
        // breakpoint after its assignment the debugger must reconstruct it.
        let r = study(
            "fn f(x) {
                 var dead = x * 3;
                 var y = x + 1;
                 var z = y + 1;
                 return z;
             }",
            "f",
        );
        assert!(r.optimized);
        if r.endangered_total > 0 {
            assert!(
                r.recoverable_avail >= r.recoverable_live,
                "avail dominates live"
            );
            assert!(r.recoverability(true) > 0.0);
        }
    }

    #[test]
    fn summary_aggregation() {
        let r1 = FunctionReport {
            optimized: true,
            total_points: 10,
            affected_points: 5,
            endangered_per_point: vec![1, 2, 1, 1, 2],
            endangered_total: 7,
            recoverable_live: 5,
            recoverable_avail: 7,
            keep_set: [ValueId(1), ValueId(2)].into_iter().collect(),
        };
        let r2 = FunctionReport {
            optimized: true,
            ..FunctionReport::default()
        };
        let s = StudySummary::aggregate(&[r1, r2], &[100, 50]);
        assert_eq!(s.total_functions, 2);
        assert_eq!(s.optimized_functions, 2);
        assert_eq!(s.endangered_functions, 1);
        assert!((s.avg_affected_weighted - 0.5).abs() < 1e-9);
        assert!((s.recoverability_avail - 1.0).abs() < 1e-9);
        assert!(s.recoverability_live < 1.0);
        assert_eq!(s.max_endangered, 2);
        assert!((s.keep_fraction - 1.0).abs() < 1e-9);
        assert!((s.keep_avg - 2.0).abs() < 1e-9);
    }
}
