//! Meta-variable patterns over instructions, expressions, and formulas
//! (the `Iˆ`, `e`, `m` of Definition 2.8).

use std::collections::BTreeMap;
use std::fmt;

use tinylang::{BinOp, Expr, Instr, Point, Var};

/// A term standing for a program variable: either a meta-variable to be
/// bound by matching, or a concrete variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VarTerm {
    /// Meta-variable, e.g. `x` in the rule `m : y := 2*x ⇒ y := x + x`.
    Meta(String),
    /// A concrete program variable.
    Concrete(Var),
}

/// A term standing for a program point.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PointTerm {
    /// Meta-variable over program points.
    Meta(String),
    /// A concrete point.
    Concrete(Point),
}

/// A term standing for an expression.
#[derive(Clone, PartialEq, Debug)]
pub enum ExprTerm {
    /// Meta-variable matching any expression.
    Meta(String),
    /// Meta-variable matching any expression that contains the given
    /// variable free — the `e[v]` notation of the paper.
    MetaWithVar(String, Box<VarTerm>),
    /// A concrete integer literal.
    Num(i64),
    /// A meta-variable ranging over constant literals only (`c` with
    /// side-condition `conlit(c)`).
    NumMeta(String),
    /// A variable reference.
    Var(VarTerm),
    /// A binary operation pattern.
    Bin(BinOp, Box<ExprTerm>, Box<ExprTerm>),
    /// RHS-only: instantiate the named expression meta-variable, then
    /// substitute `var ↦ replacement` inside it — the `e[c/v]` used by the
    /// constant-propagation rule's right-hand side.
    SubstInto {
        /// Name of a bound expression meta-variable.
        expr_meta: String,
        /// The variable to replace.
        var: VarTerm,
        /// The replacement expression term.
        replacement: Box<ExprTerm>,
    },
}

/// An instruction pattern (`Iˆ` in Definition 2.8).
#[derive(Clone, PartialEq, Debug)]
pub enum InstrPat {
    /// `x := e`.
    Assign(VarTerm, ExprTerm),
    /// `if (e) goto m`.
    IfGoto(ExprTerm, PointTerm),
    /// `goto m`.
    Goto(PointTerm),
    /// `skip`.
    Skip,
    /// `abort`.
    Abort,
    /// Wildcard matching any instruction.
    Any,
}

/// A substitution `θ` binding meta-variables to program objects.
#[derive(Clone, Default, PartialEq, Debug)]
pub struct Subst {
    vars: BTreeMap<String, Var>,
    exprs: BTreeMap<String, Expr>,
    points: BTreeMap<String, Point>,
    nums: BTreeMap<String, i64>,
}

impl Subst {
    /// The empty substitution.
    pub fn new() -> Self {
        Subst::default()
    }

    /// Binds a variable meta-variable, failing on conflicting rebinding.
    pub fn bind_var(&mut self, name: &str, v: Var) -> bool {
        match self.vars.get(name) {
            Some(old) => *old == v,
            None => {
                self.vars.insert(name.to_string(), v);
                true
            }
        }
    }

    /// Binds an expression meta-variable.
    pub fn bind_expr(&mut self, name: &str, e: Expr) -> bool {
        match self.exprs.get(name) {
            Some(old) => *old == e,
            None => {
                self.exprs.insert(name.to_string(), e);
                true
            }
        }
    }

    /// Binds a point meta-variable.
    pub fn bind_point(&mut self, name: &str, p: Point) -> bool {
        match self.points.get(name) {
            Some(old) => *old == p,
            None => {
                self.points.insert(name.to_string(), p);
                true
            }
        }
    }

    /// Binds a numeric (constant-literal) meta-variable.
    pub fn bind_num(&mut self, name: &str, n: i64) -> bool {
        match self.nums.get(name) {
            Some(old) => *old == n,
            None => {
                self.nums.insert(name.to_string(), n);
                true
            }
        }
    }

    /// Looks up a bound variable meta-variable.
    pub fn var(&self, name: &str) -> Option<&Var> {
        self.vars.get(name)
    }

    /// Looks up a bound expression meta-variable.
    pub fn expr(&self, name: &str) -> Option<&Expr> {
        self.exprs.get(name)
    }

    /// Looks up a bound point meta-variable.
    pub fn point(&self, name: &str) -> Option<Point> {
        self.points.get(name).copied()
    }

    /// Looks up a bound numeric meta-variable.
    pub fn num(&self, name: &str) -> Option<i64> {
        self.nums.get(name).copied()
    }

    fn resolve_var(&self, t: &VarTerm) -> Option<Var> {
        match t {
            VarTerm::Meta(n) => self.var(n).cloned(),
            VarTerm::Concrete(v) => Some(v.clone()),
        }
    }

    fn resolve_point(&self, t: &PointTerm) -> Option<Point> {
        match t {
            PointTerm::Meta(n) => self.point(n),
            PointTerm::Concrete(p) => Some(*p),
        }
    }

    /// Grounds an expression term under this substitution.
    ///
    /// Returns `None` if any meta-variable in the term is unbound.
    pub fn ground_expr(&self, t: &ExprTerm) -> Option<Expr> {
        match t {
            ExprTerm::Meta(n) => self.expr(n).cloned(),
            ExprTerm::MetaWithVar(n, _) => self.expr(n).cloned(),
            ExprTerm::Num(k) => Some(Expr::Num(*k)),
            ExprTerm::NumMeta(n) => self.num(n).map(Expr::Num),
            ExprTerm::Var(v) => self.resolve_var(v).map(Expr::Var),
            ExprTerm::Bin(op, a, b) => {
                Some(Expr::bin(*op, self.ground_expr(a)?, self.ground_expr(b)?))
            }
            ExprTerm::SubstInto {
                expr_meta,
                var,
                replacement,
            } => {
                let e = self.expr(expr_meta)?.clone();
                let v = self.resolve_var(var)?;
                let r = self.ground_expr(replacement)?;
                Some(e.substitute(&v, &r))
            }
        }
    }

    /// Grounds an instruction pattern under this substitution.
    ///
    /// Returns `None` if any meta-variable is unbound (wildcards cannot be
    /// grounded).
    pub fn ground_instr(&self, pat: &InstrPat) -> Option<Instr> {
        match pat {
            InstrPat::Assign(x, e) => {
                Some(Instr::Assign(self.resolve_var(x)?, self.ground_expr(e)?))
            }
            InstrPat::IfGoto(e, m) => {
                Some(Instr::IfGoto(self.ground_expr(e)?, self.resolve_point(m)?))
            }
            InstrPat::Goto(m) => Some(Instr::Goto(self.resolve_point(m)?)),
            InstrPat::Skip => Some(Instr::Skip),
            InstrPat::Abort => Some(Instr::Abort),
            InstrPat::Any => None,
        }
    }
}

impl fmt::Display for Subst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "θ{{")?;
        let mut first = true;
        let mut item = |f: &mut fmt::Formatter<'_>, s: String| -> fmt::Result {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            write!(f, "{s}")
        };
        for (k, v) in &self.vars {
            item(f, format!("{k}↦{v}"))?;
        }
        for (k, v) in &self.exprs {
            item(f, format!("{k}↦{v}"))?;
        }
        for (k, v) in &self.points {
            item(f, format!("{k}↦{v}"))?;
        }
        for (k, v) in &self.nums {
            item(f, format!("{k}↦{v}"))?;
        }
        write!(f, "}}")
    }
}

/// Matches `pat` against a concrete expression, extending `subst`.
///
/// Returns every consistent extension (the `e[v]` pattern can bind its
/// variable meta-term to any free variable of the matched expression, so a
/// single match may yield several substitutions).
pub fn match_expr(pat: &ExprTerm, e: &Expr, subst: &Subst) -> Vec<Subst> {
    match pat {
        ExprTerm::Meta(n) => {
            let mut s = subst.clone();
            if s.bind_expr(n, e.clone()) {
                vec![s]
            } else {
                vec![]
            }
        }
        ExprTerm::MetaWithVar(n, vt) => {
            let mut out = Vec::new();
            for v in e.free_vars() {
                let mut s = subst.clone();
                let var_ok = match &**vt {
                    VarTerm::Meta(vn) => s.bind_var(vn, v.clone()),
                    VarTerm::Concrete(cv) => *cv == v,
                };
                if var_ok && s.bind_expr(n, e.clone()) {
                    out.push(s);
                }
            }
            out
        }
        ExprTerm::Num(k) => match e {
            Expr::Num(n) if n == k => vec![subst.clone()],
            _ => vec![],
        },
        ExprTerm::NumMeta(name) => match e {
            Expr::Num(n) => {
                let mut s = subst.clone();
                if s.bind_num(name, *n) {
                    vec![s]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        },
        ExprTerm::Var(vt) => match e {
            Expr::Var(v) => {
                let mut s = subst.clone();
                let ok = match vt {
                    VarTerm::Meta(n) => s.bind_var(n, v.clone()),
                    VarTerm::Concrete(cv) => cv == v,
                };
                if ok {
                    vec![s]
                } else {
                    vec![]
                }
            }
            _ => vec![],
        },
        ExprTerm::Bin(op, pa, pb) => match e {
            Expr::Bin(eop, ea, eb) if eop == op => {
                let mut out = Vec::new();
                for s1 in match_expr(pa, ea, subst) {
                    out.extend(match_expr(pb, eb, &s1));
                }
                out
            }
            _ => vec![],
        },
        ExprTerm::SubstInto { .. } => Vec::new(), // RHS-only construct
    }
}

/// Matches an instruction pattern against a concrete instruction.
pub fn match_instr(pat: &InstrPat, instr: &Instr, subst: &Subst) -> Vec<Subst> {
    match (pat, instr) {
        (InstrPat::Any, _) => vec![subst.clone()],
        (InstrPat::Skip, Instr::Skip) => vec![subst.clone()],
        (InstrPat::Abort, Instr::Abort) => vec![subst.clone()],
        (InstrPat::Assign(xt, et), Instr::Assign(x, e)) => {
            let mut s = subst.clone();
            let ok = match xt {
                VarTerm::Meta(n) => s.bind_var(n, x.clone()),
                VarTerm::Concrete(cv) => cv == x,
            };
            if ok {
                match_expr(et, e, &s)
            } else {
                vec![]
            }
        }
        (InstrPat::IfGoto(et, mt), Instr::IfGoto(e, m)) => {
            let mut s = subst.clone();
            let ok = match mt {
                PointTerm::Meta(n) => s.bind_point(n, *m),
                PointTerm::Concrete(cp) => cp == m,
            };
            if ok {
                match_expr(et, e, &s)
            } else {
                vec![]
            }
        }
        (InstrPat::Goto(mt), Instr::Goto(m)) => {
            let mut s = subst.clone();
            let ok = match mt {
                PointTerm::Meta(n) => s.bind_point(n, *m),
                PointTerm::Concrete(cp) => cp == m,
            };
            if ok {
                vec![s]
            } else {
                vec![]
            }
        }
        _ => vec![],
    }
}

/// A CTL formula pattern: [`ctl::Formula`] with meta-terms at the atoms.
///
/// Grounded under a substitution by [`CtlPat::ground`].
#[derive(Clone, PartialEq, Debug)]
pub enum CtlPat {
    /// Constant truth.
    True,
    /// A local-predicate atom with meta-terms.
    Atom(PatAtom),
    /// Negation.
    Not(Box<CtlPat>),
    /// Conjunction.
    And(Box<CtlPat>, Box<CtlPat>),
    /// Disjunction.
    Or(Box<CtlPat>, Box<CtlPat>),
    /// `→AX`.
    Ax(Box<CtlPat>),
    /// `→EX`.
    Ex(Box<CtlPat>),
    /// `→A(_ U _)`.
    Au(Box<CtlPat>, Box<CtlPat>),
    /// `→E(_ U _)`.
    Eu(Box<CtlPat>, Box<CtlPat>),
    /// `←AX`.
    Bax(Box<CtlPat>),
    /// `←EX`.
    Bex(Box<CtlPat>),
    /// `←A(_ U _)`.
    Bau(Box<CtlPat>, Box<CtlPat>),
    /// `←E(_ U _)`.
    Beu(Box<CtlPat>, Box<CtlPat>),
}

/// Atom patterns mirroring [`ctl::Atom`].
#[derive(Clone, PartialEq, Debug)]
pub enum PatAtom {
    /// `def(x)`.
    Def(VarTerm),
    /// `use(x)`.
    Use(VarTerm),
    /// `stmt(Iˆ)`.
    Stmt(InstrPat),
    /// `point(m)`.
    Point(PointTerm),
    /// `trans(e)`.
    Trans(ExprTerm),
}

impl CtlPat {
    /// Grounds the pattern into a checkable [`ctl::Formula`].
    ///
    /// Returns `None` if any meta-variable is unbound.
    pub fn ground(&self, subst: &Subst) -> Option<ctl::Formula> {
        use ctl::Formula as F;
        Some(match self {
            CtlPat::True => F::True,
            CtlPat::Atom(a) => F::Atom(match a {
                PatAtom::Def(v) => ctl::Atom::Def(subst.resolve_var(v)?),
                PatAtom::Use(v) => ctl::Atom::Use(subst.resolve_var(v)?),
                PatAtom::Stmt(pat) => ctl::Atom::Stmt(subst.ground_instr(pat)?),
                PatAtom::Point(m) => ctl::Atom::Point(subst.resolve_point(m)?),
                PatAtom::Trans(e) => ctl::Atom::Trans(subst.ground_expr(e)?),
            }),
            CtlPat::Not(f) => F::not(f.ground(subst)?),
            CtlPat::And(a, b) => F::and(a.ground(subst)?, b.ground(subst)?),
            CtlPat::Or(a, b) => F::or(a.ground(subst)?, b.ground(subst)?),
            CtlPat::Ax(f) => F::ax(f.ground(subst)?),
            CtlPat::Ex(f) => F::ex(f.ground(subst)?),
            CtlPat::Au(a, b) => F::au(a.ground(subst)?, b.ground(subst)?),
            CtlPat::Eu(a, b) => F::eu(a.ground(subst)?, b.ground(subst)?),
            CtlPat::Bax(f) => F::bax(f.ground(subst)?),
            CtlPat::Bex(f) => F::bex(f.ground(subst)?),
            CtlPat::Bau(a, b) => F::bau(a.ground(subst)?, b.ground(subst)?),
            CtlPat::Beu(a, b) => F::beu(a.ground(subst)?, b.ground(subst)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::parse_expr;

    #[test]
    fn match_binary_pattern() {
        // Pattern: y := 2 * x   (strength reduction LHS)
        let pat = InstrPat::Assign(
            VarTerm::Meta("y".into()),
            ExprTerm::Bin(
                BinOp::Mul,
                Box::new(ExprTerm::Num(2)),
                Box::new(ExprTerm::Var(VarTerm::Meta("x".into()))),
            ),
        );
        let instr = Instr::Assign(Var::new("a"), parse_expr("2 * b").unwrap());
        let matches = match_instr(&pat, &instr, &Subst::new());
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].var("y"), Some(&Var::new("a")));
        assert_eq!(matches[0].var("x"), Some(&Var::new("b")));
    }

    #[test]
    fn meta_with_var_enumerates_free_vars() {
        // e[v] against `a + b` binds v to a and to b.
        let pat = InstrPat::Assign(
            VarTerm::Meta("x".into()),
            ExprTerm::MetaWithVar("e".into(), Box::new(VarTerm::Meta("v".into()))),
        );
        let instr = Instr::Assign(Var::new("t"), parse_expr("a + b").unwrap());
        let matches = match_instr(&pat, &instr, &Subst::new());
        let bound: Vec<_> = matches
            .iter()
            .map(|s| s.var("v").unwrap().as_str().to_string())
            .collect();
        assert_eq!(bound, ["a", "b"]);
    }

    #[test]
    fn conflicting_rebinding_fails() {
        // Pattern x + x against a + b must fail; against a + a succeeds.
        let pat = ExprTerm::Bin(
            BinOp::Add,
            Box::new(ExprTerm::Var(VarTerm::Meta("x".into()))),
            Box::new(ExprTerm::Var(VarTerm::Meta("x".into()))),
        );
        assert!(match_expr(&pat, &parse_expr("a + b").unwrap(), &Subst::new()).is_empty());
        assert_eq!(
            match_expr(&pat, &parse_expr("a + a").unwrap(), &Subst::new()).len(),
            1
        );
    }

    #[test]
    fn ground_subst_into() {
        let mut s = Subst::new();
        assert!(s.bind_expr("e", parse_expr("v * w").unwrap()));
        assert!(s.bind_var("v", Var::new("v")));
        assert!(s.bind_num("c", 3));
        let rhs = ExprTerm::SubstInto {
            expr_meta: "e".into(),
            var: VarTerm::Meta("v".into()),
            replacement: Box::new(ExprTerm::NumMeta("c".into())),
        };
        assert_eq!(s.ground_expr(&rhs).unwrap().to_string(), "(3 * w)");
    }

    #[test]
    fn ground_ctl_pattern() {
        let mut s = Subst::new();
        assert!(s.bind_var("x", Var::new("q")));
        let pat = CtlPat::Eu(
            Box::new(CtlPat::Not(Box::new(CtlPat::Atom(PatAtom::Def(
                VarTerm::Meta("x".into()),
            ))))),
            Box::new(CtlPat::Atom(PatAtom::Use(VarTerm::Meta("x".into())))),
        );
        let f = pat.ground(&s).unwrap();
        assert_eq!(f.to_string(), "E(!def(q) U use(q))");
    }

    #[test]
    fn unbound_meta_fails_to_ground() {
        let pat = CtlPat::Atom(PatAtom::Def(VarTerm::Meta("nope".into())));
        assert!(pat.ground(&Subst::new()).is_none());
    }
}
