//! The rewrite-rule engine of Definitions 2.8–2.9: matching, side-condition
//! enumeration, model checking, and rule application.

use std::collections::BTreeSet;

use ctl::Checker;
use tinylang::{Expr, Instr, Point, Program, Var};

use crate::pattern::{match_instr, CtlPat, ExprTerm, InstrPat, PatAtom, PointTerm, Subst, VarTerm};

/// A side condition `ϕ` of a rewrite rule.
///
/// Fig. 5 conditions combine point-anchored CTL formulas (`m ⊨ φ`) with the
/// global predicates `conlit(c)` and `freevar(x, e)`.
#[derive(Clone, Debug)]
pub enum SideCond {
    /// Always satisfied.
    True,
    /// Conjunction.
    And(Box<SideCond>, Box<SideCond>),
    /// `conlit(c)`: the expression term is a constant literal.
    ConLit(ExprTerm),
    /// `¬freevar(x, e)`: `x` does not occur free in `e`.
    NotFreeVar(VarTerm, ExprTerm),
    /// `m ⊨ φ`: the CTL formula holds at the point bound to `m`.
    At(String, CtlPat),
}

impl SideCond {
    /// Conjunction helper.
    pub fn and(a: SideCond, b: SideCond) -> SideCond {
        SideCond::And(Box::new(a), Box::new(b))
    }

    fn eval(&self, checker: &Checker<'_>, subst: &Subst) -> Option<bool> {
        match self {
            SideCond::True => Some(true),
            SideCond::And(a, b) => Some(a.eval(checker, subst)? && b.eval(checker, subst)?),
            SideCond::ConLit(t) => Some(subst.ground_expr(t)?.is_const_literal()),
            SideCond::NotFreeVar(v, e) => {
                let var = match v {
                    VarTerm::Meta(n) => subst.var(n)?.clone(),
                    VarTerm::Concrete(c) => c.clone(),
                };
                Some(!subst.ground_expr(e)?.has_free_var(&var))
            }
            SideCond::At(m, pat) => {
                let point = subst.point(m)?;
                let formula = pat.ground(subst)?;
                Some(checker.holds_at(&formula, point))
            }
        }
    }

    fn collect_metas(&self, metas: &mut MetaInventory) {
        match self {
            SideCond::True => {}
            SideCond::And(a, b) => {
                a.collect_metas(metas);
                b.collect_metas(metas);
            }
            SideCond::ConLit(t) | SideCond::NotFreeVar(_, t) => {
                metas.expr_term(t);
                if let SideCond::NotFreeVar(v, _) = self {
                    metas.var_term(v);
                }
            }
            SideCond::At(m, pat) => {
                metas.points.insert(m.clone());
                metas.ctl_pat(pat);
            }
        }
    }
}

/// A rewrite rule `T = m₁ : Iˆ₁ ⇒ Iˆ'₁ ⋯ mᵣ : Iˆᵣ ⇒ Iˆ'ᵣ if ϕ`
/// (Definition 2.8).
#[derive(Clone, Debug)]
pub struct Rule {
    /// Human-readable rule name.
    pub name: String,
    /// Left-hand sides: `(point meta-variable, instruction pattern)` pairs.
    pub lhs: Vec<(String, InstrPat)>,
    /// Right-hand sides, one per left-hand side.
    pub rhs: Vec<InstrPat>,
    /// The side condition `ϕ`.
    pub cond: SideCond,
}

/// A successful application of a rule.
#[derive(Clone, Debug)]
pub struct ApplyOutcome {
    /// The rewritten program `p' = ⌈T⌉(p)`.
    pub program: Program,
    /// The substitution `θ` that was used.
    pub subst: Subst,
    /// The rewritten points, in rule order.
    pub points: Vec<Point>,
}

/// Inventory of meta-variable names appearing in a side condition, used to
/// enumerate candidates for names not bound by LHS matching.
#[derive(Default)]
struct MetaInventory {
    vars: BTreeSet<String>,
    exprs: BTreeSet<String>,
    points: BTreeSet<String>,
    nums: BTreeSet<String>,
}

impl MetaInventory {
    fn var_term(&mut self, t: &VarTerm) {
        if let VarTerm::Meta(n) = t {
            self.vars.insert(n.clone());
        }
    }

    fn point_term(&mut self, t: &PointTerm) {
        if let PointTerm::Meta(n) = t {
            self.points.insert(n.clone());
        }
    }

    fn expr_term(&mut self, t: &ExprTerm) {
        match t {
            ExprTerm::Meta(n) => {
                self.exprs.insert(n.clone());
            }
            ExprTerm::MetaWithVar(n, v) => {
                self.exprs.insert(n.clone());
                self.var_term(v);
            }
            ExprTerm::NumMeta(n) => {
                self.nums.insert(n.clone());
            }
            ExprTerm::Var(v) => self.var_term(v),
            ExprTerm::Bin(_, a, b) => {
                self.expr_term(a);
                self.expr_term(b);
            }
            ExprTerm::SubstInto {
                expr_meta,
                var,
                replacement,
            } => {
                self.exprs.insert(expr_meta.clone());
                self.var_term(var);
                self.expr_term(replacement);
            }
            ExprTerm::Num(_) => {}
        }
    }

    fn instr_pat(&mut self, p: &InstrPat) {
        match p {
            InstrPat::Assign(v, e) => {
                self.var_term(v);
                self.expr_term(e);
            }
            InstrPat::IfGoto(e, m) => {
                self.expr_term(e);
                self.point_term(m);
            }
            InstrPat::Goto(m) => self.point_term(m),
            InstrPat::Skip | InstrPat::Abort | InstrPat::Any => {}
        }
    }

    fn ctl_pat(&mut self, p: &CtlPat) {
        match p {
            CtlPat::True => {}
            CtlPat::Atom(a) => match a {
                PatAtom::Def(v) | PatAtom::Use(v) => self.var_term(v),
                PatAtom::Stmt(i) => self.instr_pat(i),
                PatAtom::Point(m) => self.point_term(m),
                PatAtom::Trans(e) => self.expr_term(e),
            },
            CtlPat::Not(f) | CtlPat::Ax(f) | CtlPat::Ex(f) | CtlPat::Bax(f) | CtlPat::Bex(f) => {
                self.ctl_pat(f)
            }
            CtlPat::And(a, b)
            | CtlPat::Or(a, b)
            | CtlPat::Au(a, b)
            | CtlPat::Eu(a, b)
            | CtlPat::Bau(a, b)
            | CtlPat::Beu(a, b) => {
                self.ctl_pat(a);
                self.ctl_pat(b);
            }
        }
    }
}

impl Rule {
    /// Finds every substitution under which the rule applies to `p`, in a
    /// deterministic order.
    ///
    /// This is the model-checking step of Definition 2.9: LHS patterns are
    /// matched at every tuple of distinct program points, remaining
    /// meta-variables in the side condition are enumerated over program
    /// objects (variables, points, and constant literals / expressions
    /// occurring in `p`), and the side condition is discharged by the CTL
    /// checker.
    pub fn matches(&self, p: &Program) -> Vec<ApplyOutcome> {
        let checker = Checker::new(p);
        let mut outcomes = Vec::new();
        let mut partial = vec![(Subst::new(), Vec::<Point>::new())];
        for (point_meta, pat) in &self.lhs {
            let mut next = Vec::new();
            for (subst, chosen) in &partial {
                for (l, instr) in p.iter() {
                    if chosen.contains(&l) {
                        continue;
                    }
                    let mut s0 = subst.clone();
                    if !s0.bind_point(point_meta, l) {
                        continue;
                    }
                    for s in match_instr(pat, instr, &s0) {
                        let mut c = chosen.clone();
                        c.push(l);
                        next.push((s, c));
                    }
                }
            }
            partial = next;
        }
        for (subst, points) in partial {
            for full in self.enumerate_cond_metas(p, &subst) {
                if self.cond.eval(&checker, &full) == Some(true) {
                    if let Some(program) = self.rewrite(p, &full, &points) {
                        outcomes.push(ApplyOutcome {
                            program,
                            subst: full,
                            points: points.clone(),
                        });
                    }
                }
            }
        }
        outcomes
    }

    /// Applies the rule once (first match in deterministic order), i.e. the
    /// transformation function `⌈T⌉` of Definition 2.9.
    pub fn apply_once(&self, p: &Program) -> Option<ApplyOutcome> {
        self.matches(p).into_iter().next()
    }

    fn rewrite(&self, p: &Program, subst: &Subst, points: &[Point]) -> Option<Program> {
        let mut instrs: Vec<Instr> = p.instrs().to_vec();
        for (pat, l) in self.rhs.iter().zip(points) {
            let instr = subst.ground_instr(pat)?;
            instrs[l.get() - 1] = instr;
        }
        Program::new(instrs).ok()
    }

    /// Enumerates bindings for side-condition meta-variables not bound by
    /// the LHS match.
    fn enumerate_cond_metas(&self, p: &Program, subst: &Subst) -> Vec<Subst> {
        let mut inv = MetaInventory::default();
        self.cond.collect_metas(&mut inv);

        let program_vars: Vec<Var> = ctl::dataflow::all_vars(p).into_iter().collect();
        let program_points: Vec<Point> = p.points().collect();
        let constants: Vec<i64> = p
            .instrs()
            .iter()
            .filter_map(|i| match i {
                Instr::Assign(_, Expr::Num(n)) => Some(*n),
                _ => None,
            })
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let exprs: Vec<Expr> = p
            .instrs()
            .iter()
            .filter_map(Instr::expr)
            .cloned()
            .collect::<Vec<_>>();

        let mut substs = vec![subst.clone()];
        for name in &inv.vars {
            if subst.var(name).is_some() {
                continue;
            }
            substs = product(substs, &program_vars, |s, v| s.bind_var(name, v.clone()));
        }
        for name in &inv.points {
            if subst.point(name).is_some() {
                continue;
            }
            substs = product(substs, &program_points, |s, l| s.bind_point(name, *l));
        }
        for name in &inv.nums {
            if subst.num(name).is_some() {
                continue;
            }
            substs = product(substs, &constants, |s, n| s.bind_num(name, *n));
        }
        for name in &inv.exprs {
            if subst.expr(name).is_some() {
                continue;
            }
            substs = product(substs, &exprs, |s, e| s.bind_expr(name, e.clone()));
        }
        substs
    }
}

fn product<T>(
    substs: Vec<Subst>,
    candidates: &[T],
    bind: impl Fn(&mut Subst, &T) -> bool,
) -> Vec<Subst> {
    let mut out = Vec::new();
    for s in substs {
        for c in candidates {
            let mut s2 = s.clone();
            if bind(&mut s2, c) {
                out.push(s2);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::parse_program;

    /// The paper's example: `m : y := 2 * x ⇒ y := x + x if true`.
    fn strength_reduction() -> Rule {
        use tinylang::BinOp;
        Rule {
            name: "strength-reduction".into(),
            lhs: vec![(
                "m".into(),
                InstrPat::Assign(
                    VarTerm::Meta("y".into()),
                    ExprTerm::Bin(
                        BinOp::Mul,
                        Box::new(ExprTerm::Num(2)),
                        Box::new(ExprTerm::Var(VarTerm::Meta("x".into()))),
                    ),
                ),
            )],
            rhs: vec![InstrPat::Assign(
                VarTerm::Meta("y".into()),
                ExprTerm::Bin(
                    BinOp::Add,
                    Box::new(ExprTerm::Var(VarTerm::Meta("x".into()))),
                    Box::new(ExprTerm::Var(VarTerm::Meta("x".into()))),
                ),
            )],
            cond: SideCond::True,
        }
    }

    #[test]
    fn strength_reduction_applies() {
        let p = parse_program(
            "in a
             b := 2 * a
             out b",
        )
        .unwrap();
        let out = strength_reduction().apply_once(&p).expect("rule applies");
        assert_eq!(out.points, vec![Point::new(2)]);
        assert!(out.program.to_string().contains("(a + a)"));
    }

    #[test]
    fn rule_without_match_returns_none() {
        let p = parse_program("in a\nb := 3 * a\nout b").unwrap();
        assert!(strength_reduction().apply_once(&p).is_none());
    }

    #[test]
    fn rewritten_program_is_equivalent() {
        let p = parse_program(
            "in a
             b := 2 * a
             out b",
        )
        .unwrap();
        let out = strength_reduction().apply_once(&p).unwrap();
        for x in -5..5 {
            let mut s = tinylang::Store::new();
            s.set("a", x);
            assert_eq!(
                tinylang::semantics::run(&p, &s, 100),
                tinylang::semantics::run(&out.program, &s, 100)
            );
        }
    }
}
