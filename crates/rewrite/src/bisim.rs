//! Bounded checking of live-variable bisimilarity (Definitions 4.1–4.3).
//!
//! Two programs `p`, `p'` are live-variable bisimilar (LVB) if the relation
//! `R_A` with `A(l) = live(p, l) ∩ live(p', l)` is a bisimulation between
//! their trace systems for every initial store.  Being a ∀-store property,
//! it is undecidable in general; this module checks it on a user-supplied
//! finite set of stores with bounded fuel — exactly what the test-suite
//! needs to validate Theorem 4.5 on concrete programs.

use std::collections::BTreeSet;

use ctl::LivenessOracle;
use tinylang::semantics::trace;
use tinylang::{Point, Program, Store, Var};

/// A counterexample to live-variable bisimilarity.
#[derive(Clone, Debug)]
pub struct BisimWitness {
    /// The initial store on which the traces diverge.
    pub store: Store,
    /// Index into the lock-step traces where the divergence appears.
    pub step: usize,
    /// What went wrong.
    pub reason: WitnessReason,
}

/// The kind of divergence found.
#[derive(Clone, Debug)]
pub enum WitnessReason {
    /// The traces sit at different program points (violates `R_A`'s
    /// same-point requirement).
    PointMismatch {
        /// Point in the first program.
        left: Point,
        /// Point in the second program.
        right: Point,
    },
    /// A commonly-live variable holds different values.
    ValueMismatch {
        /// The offending variable.
        var: Var,
        /// Its value in the first program's store (`None` = undefined).
        left: Option<i64>,
        /// Its value in the second program's store.
        right: Option<i64>,
    },
    /// One trace is longer than the other within the fuel bound.
    LengthMismatch {
        /// Trace length of the first program.
        left: usize,
        /// Trace length of the second program.
        right: usize,
    },
}

/// Checks live-variable bisimilarity of `p` and `q` on the given stores,
/// with per-run fuel `fuel`.
///
/// Programs are compared in lock-step with the *identity* point mapping, as
/// in Definition 4.2.  Returns the first witness found, or `Ok(())` if all
/// runs stay bisimilar.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use rewrite::{bisim::check_lvb, ConstProp, LveTransform};
/// use tinylang::{parse_program, Store};
///
/// let p = parse_program("in x\nk := 7\ny := x + k\nout y")?;
/// let (p2, _) = ConstProp.apply_once(&p).expect("CP applies");
/// let stores: Vec<Store> = (-3..3).map(|v| Store::new().with("x", v)).collect();
/// assert!(check_lvb(&p, &p2, &stores, 1_000).is_ok());
/// # Ok(())
/// # }
/// ```
pub fn check_lvb(
    p: &Program,
    q: &Program,
    stores: &[Store],
    fuel: usize,
) -> Result<(), Box<BisimWitness>> {
    let live_p = LivenessOracle::new(p);
    let live_q = LivenessOracle::new(q);
    for store in stores {
        let tp = trace(p, store, fuel);
        let tq = trace(q, store, fuel);
        if tp.len() != tq.len() {
            return Err(Box::new(BisimWitness {
                store: store.clone(),
                step: tp.len().min(tq.len()),
                reason: WitnessReason::LengthMismatch {
                    left: tp.len(),
                    right: tq.len(),
                },
            }));
        }
        for (step, (sp, sq)) in tp.iter().zip(&tq).enumerate() {
            if sp.point != sq.point {
                return Err(Box::new(BisimWitness {
                    store: store.clone(),
                    step,
                    reason: WitnessReason::PointMismatch {
                        left: sp.point,
                        right: sq.point,
                    },
                }));
            }
            // The virtual final point n+1 carries the restricted output
            // store; compare outputs directly there.
            let common: BTreeSet<Var> = if sp.point.get() > p.len() {
                p.output_vars().iter().cloned().collect()
            } else {
                live_p
                    .live_at(sp.point)
                    .intersection(&live_q.live_at(sq.point))
                    .cloned()
                    .collect()
            };
            for var in common {
                let lv = sp.store.get(var.as_str());
                let rv = sq.store.get(var.as_str());
                if lv != rv {
                    return Err(Box::new(BisimWitness {
                        store: store.clone(),
                        step,
                        reason: WitnessReason::ValueMismatch {
                            var,
                            left: lv,
                            right: rv,
                        },
                    }));
                }
            }
        }
    }
    Ok(())
}

/// Convenience: dense integer stores over the input variables of `p`,
/// sampling each variable over `lo..=hi` (cartesian product).
///
/// Useful for exercising [`check_lvb`] and the OSR validation harness on
/// programs with few inputs.
pub fn input_grid(p: &Program, lo: i64, hi: i64) -> Vec<Store> {
    let mut out = vec![Store::new()];
    for v in p.input_vars() {
        let mut next = Vec::new();
        for s in &out {
            for val in lo..=hi {
                next.push(s.with(v.clone(), val));
            }
        }
        out = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConstProp, DeadCodeElim, Hoist, LveTransform, TransformSeq};
    use tinylang::parse_program;

    #[test]
    fn theorem_4_5_cp_is_lve() {
        let p = parse_program(
            "in x
             k := 7
             y := x + k
             z := y * k
             out z",
        )
        .unwrap();
        let (p2, _) = ConstProp.apply_fixpoint(&p, 100);
        let stores = input_grid(&p, -4, 4);
        check_lvb(&p, &p2, &stores, 10_000).expect("CP must be LVE");
    }

    #[test]
    fn theorem_4_5_dce_is_lve() {
        let p = parse_program(
            "in x
             t := x * x
             u := t + 1
             y := x + 2
             out y",
        )
        .unwrap();
        let (p2, edits) = DeadCodeElim.apply_fixpoint(&p, 100);
        assert!(!edits.is_empty());
        let stores = input_grid(&p, -4, 4);
        check_lvb(&p, &p2, &stores, 10_000).expect("DCE must be LVE");
    }

    #[test]
    fn theorem_4_5_hoist_is_lve() {
        let p = parse_program(
            "in x n
             skip
             i := 0
             t := x * x
             i := i + t
             if (i < n) goto 4
             out i",
        )
        .unwrap();
        let (p2, _) = Hoist.apply_once(&p).unwrap();
        let stores = input_grid(&p, -2, 4);
        check_lvb(&p, &p2, &stores, 10_000).expect("Hoist must be LVE");
    }

    #[test]
    fn pipeline_is_lve() {
        let p = parse_program(
            "in x
             a := 5
             b := a + 1
             c := b * x
             d := x * x
             out c",
        )
        .unwrap();
        let (programs, _) = TransformSeq::standard().apply_staged(&p);
        let stores = input_grid(&p, -4, 4);
        for window in programs.windows(2) {
            check_lvb(&window[0], &window[1], &stores, 10_000)
                .expect("every pipeline stage must be LVE");
        }
    }

    #[test]
    fn non_equivalent_programs_yield_witness() {
        let p = parse_program("in x\ny := x + 1\nout y").unwrap();
        let q = parse_program("in x\ny := x + 2\nout y").unwrap();
        let stores = input_grid(&p, 0, 0);
        let w = check_lvb(&p, &q, &stores, 100).unwrap_err();
        assert!(matches!(w.reason, WitnessReason::ValueMismatch { .. }));
    }

    #[test]
    fn point_mismatch_detected() {
        let p = parse_program("in x\nif (x) goto 4\ngoto 5\nskip\nout x").unwrap();
        let q = parse_program("in x\nif (x + 1) goto 4\ngoto 5\nskip\nout x").unwrap();
        let stores = vec![Store::new().with("x", -1)];
        // x = -1: p jumps (x ≠ 0), q falls through (x+1 == 0); both paths
        // have the same length, so the divergence shows up as a point
        // mismatch.
        let w = check_lvb(&p, &q, &stores, 100).unwrap_err();
        assert!(matches!(w.reason, WitnessReason::PointMismatch { .. }));
    }
}
