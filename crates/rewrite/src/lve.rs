//! Direct implementations of the live-variable-equivalent transformations
//! of Figure 5.
//!
//! These perform the same rewrites as the declarative rules in
//! [`crate::rules`] but compute side conditions with dedicated dataflow
//! analyses instead of meta-variable enumeration, making them fast enough
//! to drive the evaluation harness.  All three preserve program-point
//! numbering, so `apply(p, T)` yields the identity point mapping `Δ`
//! required by Theorem 4.6.

use ctl::dataflow::{MustDefined, ReachingDefs};
use ctl::{Atom, Checker, Formula};
use tinylang::{Expr, Instr, Point, Program, Var};

/// A single rewrite performed by an LVE transformation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Edit {
    /// Constant `constant` propagated into the expression at `point`,
    /// replacing variable `var`.
    ConstProp {
        /// Rewritten point.
        point: Point,
        /// The propagated-away variable.
        var: Var,
        /// The constant it was replaced by.
        constant: i64,
    },
    /// The dead assignment to `var` at `point` was replaced by `skip`.
    DeadCode {
        /// Rewritten point.
        point: Point,
        /// The variable whose assignment died.
        var: Var,
    },
    /// The assignment at `from` was hoisted to the `skip` at `to`.
    Hoist {
        /// Original location of the assignment.
        from: Point,
        /// The `skip` it was moved to.
        to: Point,
    },
}

/// A live-variable-equivalent program transformation (Definition 4.4).
///
/// Implementations guarantee (Theorem 4.5) that `p` and `apply_once(p)` are
/// live-variable bisimilar with the identity point mapping, which is what
/// `osr::osr_trans` relies on to build strict forward and backward OSR
/// mappings (Theorem 4.6).
pub trait LveTransform {
    /// Short name used in diagnostics and evaluation tables.
    fn name(&self) -> &'static str;

    /// Applies the transformation at the first applicable point, returning
    /// the rewritten program and a description of the edit, or `None` if the
    /// transformation does not apply anywhere.
    fn apply_once(&self, p: &Program) -> Option<(Program, Edit)>;

    /// Applies the transformation repeatedly (at most `max` times) until it
    /// no longer fires.
    fn apply_fixpoint(&self, p: &Program, max: usize) -> (Program, Vec<Edit>) {
        let mut current = p.clone();
        let mut edits = Vec::new();
        for _ in 0..max {
            match self.apply_once(&current) {
                Some((next, edit)) => {
                    current = next;
                    edits.push(edit);
                }
                None => break,
            }
        }
        (current, edits)
    }
}

/// Constant propagation (`CP` in Figure 5).
///
/// Rewrites `x := e[v]` to `x := e[c]` when every definition of `v` reaching
/// the point is the same constant assignment `v := c` (and `v` is defined on
/// every incoming path).
#[derive(Clone, Copy, Default, Debug)]
pub struct ConstProp;

impl LveTransform for ConstProp {
    fn name(&self) -> &'static str {
        "CP"
    }

    fn apply_once(&self, p: &Program) -> Option<(Program, Edit)> {
        let rd = ReachingDefs::compute(p);
        let md = MustDefined::compute(p);
        for (m, instr) in p.iter() {
            let Instr::Assign(x, e) = instr else {
                continue;
            };
            for v in e.free_vars() {
                // The Fig. 5 condition is anchored at m with non-strict
                // until, so def(v) must not hold at m itself: v ≠ x.
                if v == *x {
                    continue;
                }
                if !md.defined_in(m).contains(&v) {
                    continue;
                }
                let defs = rd.reaching(&v, m);
                let mut constant: Option<i64> = None;
                let all_same_const = !defs.is_empty()
                    && defs.iter().all(|d| match p.instr_at(*d) {
                        Instr::Assign(dv, Expr::Num(c)) if dv == &v => match constant {
                            None => {
                                constant = Some(*c);
                                true
                            }
                            Some(prev) => prev == *c,
                        },
                        _ => false,
                    });
                if all_same_const {
                    let c = constant.expect("set when all_same_const");
                    let new_e = e.substitute(&v, &Expr::Num(c));
                    let p2 = p
                        .with_instr(m, Instr::Assign(x.clone(), new_e))
                        .expect("assign-for-assign swap keeps the program well-formed");
                    return Some((
                        p2,
                        Edit::ConstProp {
                            point: m,
                            var: v,
                            constant: c,
                        },
                    ));
                }
            }
        }
        None
    }
}

/// Dead code elimination (`DCE` in Figure 5).
///
/// Rewrites `x := e` to `skip` when **no** use of `x` is forward-reachable
/// from any successor — the paper's condition `→AX ¬→E(true U use(x))`,
/// which is deliberately stronger than classic liveness-based DCE (a use
/// behind a redefinition still blocks it).
#[derive(Clone, Copy, Default, Debug)]
pub struct DeadCodeElim;

impl LveTransform for DeadCodeElim {
    fn name(&self) -> &'static str {
        "DCE"
    }

    fn apply_once(&self, p: &Program) -> Option<(Program, Edit)> {
        let checker = Checker::new(p);
        for (m, instr) in p.iter() {
            let Instr::Assign(x, _) = instr else {
                continue;
            };
            let cond = Formula::ax(Formula::not(Formula::eu(
                Formula::True,
                Formula::atom(Atom::Use(x.clone())),
            )));
            if checker.holds_at(&cond, m) {
                let p2 = p
                    .with_instr(m, Instr::Skip)
                    .expect("skip-for-assign swap keeps the program well-formed");
                return Some((
                    p2,
                    Edit::DeadCode {
                        point: m,
                        var: x.clone(),
                    },
                ));
            }
        }
        None
    }
}

/// Code hoisting (`Hoist` in Figure 5).
///
/// Moves an assignment `x := e` at `q` up to an existing `skip` at `p`,
/// provided no path from `p` uses `x` before reaching `q`, and on every
/// backward path from `q` to `p` neither `x` nor any constituent of `e` is
/// modified.
#[derive(Clone, Copy, Default, Debug)]
pub struct Hoist;

impl LveTransform for Hoist {
    fn name(&self) -> &'static str {
        "Hoist"
    }

    fn apply_once(&self, p: &Program) -> Option<(Program, Edit)> {
        let checker = Checker::new(p);
        for (to, skip_instr) in p.iter() {
            if !matches!(skip_instr, Instr::Skip) {
                continue;
            }
            for (from, instr) in p.iter() {
                let Instr::Assign(x, e) = instr else {
                    continue;
                };
                if from == to {
                    continue;
                }
                // p ⊨ →A(¬use(x) U point(q))
                let fwd = Formula::au(
                    Formula::not(Formula::atom(Atom::Use(x.clone()))),
                    Formula::atom(Atom::Point(from)),
                );
                if !checker.holds_at(&fwd, to) {
                    continue;
                }
                // q ⊨ ←A((¬def(x) ∨ point(q)) ∧ trans(e) U point(p))
                let bwd = Formula::bau(
                    Formula::and(
                        Formula::or(
                            Formula::not(Formula::atom(Atom::Def(x.clone()))),
                            Formula::atom(Atom::Point(from)),
                        ),
                        Formula::atom(Atom::Trans(e.clone())),
                    ),
                    Formula::atom(Atom::Point(to)),
                );
                if !checker.holds_at(&bwd, from) {
                    continue;
                }
                let p2 = p
                    .with_instr(to, instr.clone())
                    .and_then(|p2| p2.with_instr(from, Instr::Skip))
                    .expect("swapping skip and assignment keeps the program well-formed");
                return Some((p2, Edit::Hoist { from, to }));
            }
        }
        None
    }
}

/// A sequence of LVE transformations, applied left-to-right, each to a
/// fix-point.
///
/// The paper composes OSR mappings transformation-by-transformation
/// (Theorem 3.4); `TransformSeq` is the workload driver for that: it
/// records every intermediate program so that per-step mappings can be
/// built and composed.
pub struct TransformSeq {
    transforms: Vec<Box<dyn LveTransform>>,
    /// Bound on rewrites per transformation, to guarantee termination.
    pub max_steps: usize,
}

impl TransformSeq {
    /// Creates the sequence.
    pub fn new(transforms: Vec<Box<dyn LveTransform>>) -> Self {
        TransformSeq {
            transforms,
            max_steps: 10_000,
        }
    }

    /// The standard pipeline used in the evaluation: CP → DCE → Hoist → CP →
    /// DCE.
    pub fn standard() -> Self {
        TransformSeq::new(vec![
            Box::new(ConstProp),
            Box::new(DeadCodeElim),
            Box::new(Hoist),
            Box::new(ConstProp),
            Box::new(DeadCodeElim),
        ])
    }

    /// Applies the whole sequence, returning every intermediate program
    /// (`result[0]` is the input; `result.last()` the fully optimized
    /// program) together with the edits of each stage.
    pub fn apply_staged(&self, p: &Program) -> (Vec<Program>, Vec<Vec<Edit>>) {
        let mut programs = vec![p.clone()];
        let mut all_edits = Vec::new();
        for t in &self.transforms {
            let (next, edits) =
                t.apply_fixpoint(programs.last().expect("non-empty"), self.max_steps);
            programs.push(next);
            all_edits.push(edits);
        }
        (programs, all_edits)
    }

    /// Applies the whole sequence and returns only the final program and the
    /// flattened edit list.
    pub fn apply(&self, p: &Program) -> (Program, Vec<Edit>) {
        let (programs, edits) = self.apply_staged(p);
        (
            programs.into_iter().last().expect("non-empty"),
            edits.into_iter().flatten().collect(),
        )
    }
}

impl std::fmt::Debug for TransformSeq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<_> = self.transforms.iter().map(|t| t.name()).collect();
        write!(f, "TransformSeq({names:?})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::{parse_program, semantics::run, Store};

    fn stores_over(vars: &[&str], lo: i64, hi: i64) -> Vec<Store> {
        let mut out = vec![Store::new()];
        for v in vars {
            let mut next = Vec::new();
            for s in &out {
                for val in lo..=hi {
                    next.push(s.with(*v, val));
                }
            }
            out = next;
        }
        out
    }

    fn assert_equivalent(p1: &Program, p2: &Program, vars: &[&str]) {
        for s in stores_over(vars, -3, 3) {
            assert_eq!(run(p1, &s, 10_000), run(p2, &s, 10_000), "input {s}");
        }
    }

    #[test]
    fn const_prop_direct_matches_rule_engine() {
        let srcs = [
            "in x\nk := 7\ny := x + k\nout y",
            "in x\nk := 2\nk := 2\ny := k * x\nout y",
            "in x c\nk := 7\nif (c) goto 5\nk := x\ny := x + k\nout y",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            let direct = ConstProp.apply_once(&p).map(|(p2, _)| p2);
            let engine = crate::rules::cp_rule().apply_once(&p).map(|o| o.program);
            assert_eq!(direct, engine, "CP mismatch on:\n{p}");
        }
    }

    #[test]
    fn dce_direct_matches_rule_engine() {
        let srcs = [
            "in x\nt := x * x\ny := x + 1\nout y",
            "in x\nt := 1\nt := 2\nout t",
            "in x\ny := x\nout y",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            let direct = DeadCodeElim.apply_once(&p).map(|(p2, _)| p2);
            let engine = crate::rules::dce_rule().apply_once(&p).map(|o| o.program);
            assert_eq!(direct, engine, "DCE mismatch on:\n{p}");
        }
    }

    #[test]
    fn hoist_direct_matches_rule_engine() {
        let srcs = [
            "in x n
             skip
             i := 0
             t := x * x
             i := i + t
             if (i < n) goto 4
             out i",
            "in a
             skip
             b := a + 1
             out b",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            let direct = Hoist.apply_once(&p).map(|(p2, _)| p2);
            let engine = crate::rules::hoist_rule().apply_once(&p).map(|o| o.program);
            assert_eq!(direct, engine, "Hoist mismatch on:\n{p}");
        }
    }

    #[test]
    fn fixpoint_terminates_and_preserves_semantics() {
        let p = parse_program(
            "in x
             a := 5
             b := a + 1
             c := b * 2
             d := x * x
             out c",
        )
        .unwrap();
        let seq = TransformSeq::standard();
        let (opt, edits) = seq.apply(&p);
        assert!(!edits.is_empty());
        assert_equivalent(&p, &opt, &["x"]);
        // d := x*x is dead and must be gone.
        assert!(
            opt.iter()
                .all(|(_, i)| !i.defines(&Var::new("d")) || matches!(i, Instr::Skip)),
            "dead store to d must be eliminated:\n{opt}"
        );
    }

    #[test]
    fn cp_propagates_through_chain() {
        let p = parse_program(
            "in x
             a := 5
             b := a + 1
             out b",
        )
        .unwrap();
        let (opt, edits) = ConstProp.apply_fixpoint(&p, 100);
        assert_eq!(edits.len(), 1);
        assert!(opt.to_string().contains("(5 + 1)"));
    }

    #[test]
    fn hoist_into_loop_preheader_skip() {
        let p = parse_program(
            "in x n
             skip
             i := 0
             t := x * x
             i := i + t
             if (i < n) goto 4
             out i",
        )
        .unwrap();
        let (opt, edit) = Hoist.apply_once(&p).unwrap();
        assert_equivalent(&p, &opt, &["x", "n"]);
        match edit {
            Edit::Hoist { from, to } => {
                assert!(to < from);
            }
            other => panic!("expected hoist edit, got {other:?}"),
        }
    }

    #[test]
    fn transforms_preserve_program_length() {
        let p = parse_program(
            "in x
             a := 5
             b := a + 1
             c := x * 2
             out c",
        )
        .unwrap();
        let (opt, _) = TransformSeq::standard().apply(&p);
        assert_eq!(p.len(), opt.len(), "LVE transforms preserve point count");
    }
}
