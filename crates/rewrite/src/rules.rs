//! The rewrite rules of Figure 5 (plus the §2.2 strength-reduction example)
//! expressed in the [`Rule`] engine.
//!
//! These are the *declarative* counterparts of the direct [`crate::lve`]
//! implementations; the test-suite checks that engine and direct
//! implementations perform the same rewrites.

use tinylang::BinOp;

use crate::engine::{Rule, SideCond};
use crate::pattern::{CtlPat, ExprTerm, InstrPat, PatAtom, VarTerm};

fn vmeta(n: &str) -> VarTerm {
    VarTerm::Meta(n.to_string())
}

fn evar(n: &str) -> ExprTerm {
    ExprTerm::Var(vmeta(n))
}

/// `m : y := 2 ∗ x ⇒ y := x + x if true` — the peephole strength-reduction
/// example of §2.2.
pub fn strength_reduction_rule() -> Rule {
    Rule {
        name: "strength-reduction".into(),
        lhs: vec![(
            "m".into(),
            InstrPat::Assign(
                vmeta("y"),
                ExprTerm::Bin(BinOp::Mul, Box::new(ExprTerm::Num(2)), Box::new(evar("x"))),
            ),
        )],
        rhs: vec![InstrPat::Assign(
            vmeta("y"),
            ExprTerm::Bin(BinOp::Add, Box::new(evar("x")), Box::new(evar("x"))),
        )],
        cond: SideCond::True,
    }
}

/// Constant propagation (Figure 5):
///
/// ```text
/// m : x := e[v] ⇒ x := e[c]
///   if conlit(c) ∧ m ⊨ ←A(¬def(v) U stmt(v := c))
/// ```
pub fn cp_rule() -> Rule {
    Rule {
        name: "CP".into(),
        lhs: vec![(
            "m".into(),
            InstrPat::Assign(
                vmeta("x"),
                ExprTerm::MetaWithVar("e".into(), Box::new(vmeta("v"))),
            ),
        )],
        rhs: vec![InstrPat::Assign(
            vmeta("x"),
            ExprTerm::SubstInto {
                expr_meta: "e".into(),
                var: vmeta("v"),
                replacement: Box::new(ExprTerm::NumMeta("c".into())),
            },
        )],
        cond: SideCond::and(
            SideCond::ConLit(ExprTerm::NumMeta("c".into())),
            SideCond::At(
                "m".into(),
                CtlPat::Bau(
                    Box::new(CtlPat::Not(Box::new(CtlPat::Atom(PatAtom::Def(vmeta(
                        "v",
                    )))))),
                    Box::new(CtlPat::Atom(PatAtom::Stmt(InstrPat::Assign(
                        vmeta("v"),
                        ExprTerm::NumMeta("c".into()),
                    )))),
                ),
            ),
        ),
    }
}

/// Dead code elimination (Figure 5):
///
/// ```text
/// m : x := e ⇒ skip  if m ⊨ →AX ¬→E(true U use(x))
/// ```
pub fn dce_rule() -> Rule {
    Rule {
        name: "DCE".into(),
        lhs: vec![(
            "m".into(),
            InstrPat::Assign(vmeta("x"), ExprTerm::Meta("e".into())),
        )],
        rhs: vec![InstrPat::Skip],
        cond: SideCond::At(
            "m".into(),
            CtlPat::Ax(Box::new(CtlPat::Not(Box::new(CtlPat::Eu(
                Box::new(CtlPat::True),
                Box::new(CtlPat::Atom(PatAtom::Use(vmeta("x")))),
            ))))),
        ),
    }
}

/// Code hoisting (Figure 5):
///
/// ```text
/// p : skip   ⇒ x := e
/// q : x := e ⇒ skip
///   if p ⊨ →A(¬use(x) U point(q))
///    ∧ q ⊨ ←A((¬def(x) ∨ point(q)) ∧ trans(e) U point(p))
/// ```
pub fn hoist_rule() -> Rule {
    Rule {
        name: "Hoist".into(),
        lhs: vec![
            ("p".into(), InstrPat::Skip),
            (
                "q".into(),
                InstrPat::Assign(vmeta("x"), ExprTerm::Meta("e".into())),
            ),
        ],
        rhs: vec![
            InstrPat::Assign(vmeta("x"), ExprTerm::Meta("e".into())),
            InstrPat::Skip,
        ],
        cond: SideCond::and(
            SideCond::At(
                "p".into(),
                CtlPat::Au(
                    Box::new(CtlPat::Not(Box::new(CtlPat::Atom(PatAtom::Use(vmeta(
                        "x",
                    )))))),
                    Box::new(CtlPat::Atom(PatAtom::Point(
                        crate::pattern::PointTerm::Meta("q".into()),
                    ))),
                ),
            ),
            SideCond::At(
                "q".into(),
                CtlPat::Bau(
                    Box::new(CtlPat::And(
                        Box::new(CtlPat::Or(
                            Box::new(CtlPat::Not(Box::new(CtlPat::Atom(PatAtom::Def(vmeta(
                                "x",
                            )))))),
                            Box::new(CtlPat::Atom(PatAtom::Point(
                                crate::pattern::PointTerm::Meta("q".into()),
                            ))),
                        )),
                        Box::new(CtlPat::Atom(PatAtom::Trans(ExprTerm::Meta("e".into())))),
                    )),
                    Box::new(CtlPat::Atom(PatAtom::Point(
                        crate::pattern::PointTerm::Meta("p".into()),
                    ))),
                ),
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::{parse_program, semantics::run, Store};

    fn stores_over(vars: &[&str], lo: i64, hi: i64) -> Vec<Store> {
        // Cartesian sampling of small input stores.
        let mut out = vec![Store::new()];
        for v in vars {
            let mut next = Vec::new();
            for s in &out {
                for val in lo..=hi {
                    next.push(s.with(*v, val));
                }
            }
            out = next;
        }
        out
    }

    fn assert_equivalent(p1: &tinylang::Program, p2: &tinylang::Program, vars: &[&str]) {
        for s in stores_over(vars, -3, 3) {
            assert_eq!(run(p1, &s, 10_000), run(p2, &s, 10_000), "input {s}");
        }
    }

    #[test]
    fn cp_rule_rewrites_constant_use() {
        let p = parse_program(
            "in x
             k := 7
             y := x + k
             out y",
        )
        .unwrap();
        let out = cp_rule().apply_once(&p).expect("CP applies");
        assert!(out.program.to_string().contains("(x + 7)"));
        assert_equivalent(&p, &out.program, &["x"]);
    }

    #[test]
    fn cp_rule_blocked_by_redefinition() {
        let p = parse_program(
            "in x c
             k := 7
             if (c) goto 5
             k := x
             y := x + k
             out y",
        )
        .unwrap();
        // k has two reaching definitions at point 5; CP must not fire on k.
        for m in cp_rule().matches(&p) {
            assert_ne!(m.subst.var("v"), Some(&tinylang::Var::new("k")));
        }
    }

    #[test]
    fn dce_rule_removes_dead_assign() {
        let p = parse_program(
            "in x
             t := x * x
             y := x + 1
             out y",
        )
        .unwrap();
        let out = dce_rule().apply_once(&p).expect("DCE applies");
        assert_eq!(out.points, vec![tinylang::Point::new(2)]);
        assert!(matches!(
            out.program.instr_at(tinylang::Point::new(2)),
            tinylang::Instr::Skip
        ));
        assert_equivalent(&p, &out.program, &["x"]);
    }

    #[test]
    fn dce_rule_keeps_used_after_redefinition() {
        // x := 1 is dead in the classic sense only if x is not used before
        // redefinition; the Fig. 5 condition is stronger (no use reachable
        // at all), so `t := 1; t := 2; out t` must NOT eliminate point 2.
        let p = parse_program(
            "in x
             t := 1
             t := 2
             out t",
        )
        .unwrap();
        let matches = dce_rule().matches(&p);
        assert!(
            matches.is_empty(),
            "Fig. 5 DCE must not fire when a use of x remains reachable"
        );
    }

    #[test]
    fn hoist_rule_moves_invariant_assign() {
        let p = parse_program(
            "in x n
             skip
             i := 0
             t := x * x
             i := i + t
             if (i < n) goto 4
             out i",
        )
        .unwrap();
        // Hoisting t := x*x from point 4 to the skip at point 2 is NOT valid
        // because point 4 is in a loop and 2 is outside... it IS valid: on
        // all paths from 2 until 4, x is not used… x is used at 4 itself?
        // `use` at 4 is of x; the condition is about uses of t, not x.
        let out = hoist_rule().apply_once(&p).expect("Hoist applies");
        assert_equivalent(&p, &out.program, &["x", "n"]);
    }

    #[test]
    fn strength_reduction_from_module() {
        let p = parse_program("in a\nb := 2 * a\nout b").unwrap();
        let out = strength_reduction_rule().apply_once(&p).unwrap();
        assert_equivalent(&p, &out.program, &["a"]);
    }
}
