//! Program transformations as rewrite rules with CTL side conditions
//! (*On-Stack Replacement, Distilled* §2.2 and §4.1).
//!
//! Two layers are provided:
//!
//! * a general [`Rule`] engine (Definitions 2.8–2.9): instruction patterns
//!   with meta-variables are matched against a concrete program, candidate
//!   substitutions are enumerated, and side conditions are discharged by the
//!   [`ctl`] model checker;
//! * direct implementations of the three live-variable-equivalent (LVE)
//!   transformations of Figure 5 — [`ConstProp`], [`DeadCodeElim`] and
//!   [`Hoist`] — via the [`LveTransform`] trait.  These are the
//!   transformations `OSR_trans` (crate `osr`) makes OSR-aware.
//!
//! All three transformations preserve the program-point numbering (DCE
//! rewrites to `skip`; Hoist swaps an assignment with an existing `skip`),
//! so the `Δ` point mappings of Theorem 4.6 are the identity.
//!
//! The [`bisim`] module implements a bounded checker for live-variable
//! bisimilarity (Definition 4.3), used to validate Theorem 4.5 in tests.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use rewrite::{ConstProp, LveTransform};
//! use tinylang::parse_program;
//!
//! let p = parse_program(
//!     "in x
//!      k := 7
//!      y := x + k
//!      out y",
//! )?;
//! let (p2, edit) = ConstProp.apply_once(&p).expect("CP applies");
//! assert_eq!(p2.to_string().contains("(x + 7)"), true);
//! println!("rewrote point {:?}", edit);
//! # Ok(())
//! # }
//! ```

pub mod bisim;
mod engine;
mod lve;
mod pattern;
mod rules;

pub use engine::{ApplyOutcome, Rule, SideCond};
pub use lve::{ConstProp, DeadCodeElim, Edit, Hoist, LveTransform, TransformSeq};
pub use pattern::{CtlPat, ExprTerm, InstrPat, PatAtom, PointTerm, Subst, VarTerm};
pub use rules::{cp_rule, dce_rule, hoist_rule, strength_reduction_rule};
