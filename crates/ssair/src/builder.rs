//! Ergonomic construction of SSA functions.

use crate::ir::{BinOp, BlockId, Function, InstKind, Terminator, Ty, ValueId};

/// Builds a [`Function`] block by block.
///
/// The builder starts with an implicit `entry` block selected.  Every
/// instruction-creating method appends to the current block and returns the
/// result value.
///
/// # Examples
///
/// ```
/// use ssair::{BinOp, FunctionBuilder, Ty};
///
/// let mut b = FunctionBuilder::new("abs", &[("x", Ty::I64)]);
/// let x = b.param(0);
/// let zero = b.const_i64(0);
/// let neg = b.binop(BinOp::Lt, x, zero);
/// let (then_bb, else_bb, join) = (b.create_block("neg"), b.create_block("pos"), b.create_block("join"));
/// b.cond_br(neg, then_bb, else_bb);
/// b.switch_to(then_bb);
/// let nx = b.neg(x);
/// b.br(join);
/// b.switch_to(else_bb);
/// b.br(join);
/// b.switch_to(join);
/// let r = b.phi(&[(then_bb, nx), (else_bb, x)]);
/// b.ret(Some(r));
/// let f = b.finish();
/// assert!(ssair::verify(&f).is_ok());
/// ```
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    line: Option<u32>,
}

impl FunctionBuilder {
    /// Starts a new function with the given parameters, creating and
    /// selecting the entry block.
    pub fn new(name: &str, params: &[(&str, Ty)]) -> Self {
        let mut func = Function::new(name, params);
        let entry = func.create_block("entry");
        func.entry = entry;
        FunctionBuilder {
            func,
            current: entry,
            line: None,
        }
    }

    /// The value of parameter `i`.
    pub fn param(&self, i: usize) -> ValueId {
        self.func.param_value(i)
    }

    /// Creates (but does not select) a new block.
    pub fn create_block(&mut self, name: &str) -> BlockId {
        self.func.create_block(name)
    }

    /// Selects the block new instructions are appended to.
    pub fn switch_to(&mut self, b: BlockId) {
        self.current = b;
    }

    /// The currently selected block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Sets the source line attached to subsequently created instructions.
    pub fn set_line(&mut self, line: u32) {
        self.line = Some(line);
    }

    /// Clears the source line.
    pub fn clear_line(&mut self) {
        self.line = None;
    }

    fn emit(&mut self, kind: InstKind) -> ValueId {
        let (_, res) = self.func.append_new_inst(self.current, kind, self.line);
        res.expect("instruction produces a result")
    }

    fn emit_void(&mut self, kind: InstKind) {
        self.func.append_new_inst(self.current, kind, self.line);
    }

    /// Integer constant.
    pub fn const_i64(&mut self, n: i64) -> ValueId {
        self.emit(InstKind::Const(n))
    }

    /// Binary operation.
    pub fn binop(&mut self, op: BinOp, a: ValueId, b: ValueId) -> ValueId {
        self.emit(InstKind::Binop(op, a, b))
    }

    /// Arithmetic negation.
    pub fn neg(&mut self, a: ValueId) -> ValueId {
        self.emit(InstKind::Neg(a))
    }

    /// Logical negation.
    pub fn not(&mut self, a: ValueId) -> ValueId {
        self.emit(InstKind::Not(a))
    }

    /// `select cond, a, b`.
    pub fn select(&mut self, cond: ValueId, then_v: ValueId, else_v: ValueId) -> ValueId {
        self.emit(InstKind::Select {
            cond,
            then_v,
            else_v,
        })
    }

    /// φ-node over `(predecessor, value)` pairs.
    pub fn phi(&mut self, incomings: &[(BlockId, ValueId)]) -> ValueId {
        self.emit(InstKind::Phi(incomings.to_vec()))
    }

    /// Anonymous stack slot of `size` cells.
    pub fn alloca(&mut self, size: u32) -> ValueId {
        self.emit(InstKind::Alloca { size, name: None })
    }

    /// Stack slot backing the named source variable.
    pub fn alloca_named(&mut self, size: u32, name: &str) -> ValueId {
        self.emit(InstKind::Alloca {
            size,
            name: Some(name.to_string()),
        })
    }

    /// Load through a pointer.
    pub fn load(&mut self, addr: ValueId) -> ValueId {
        self.emit(InstKind::Load { addr })
    }

    /// Store through a pointer.
    pub fn store(&mut self, addr: ValueId, value: ValueId) {
        self.emit_void(InstKind::Store { addr, value });
    }

    /// Pointer arithmetic.
    pub fn gep(&mut self, base: ValueId, index: ValueId) -> ValueId {
        self.emit(InstKind::Gep { base, index })
    }

    /// Call a module function.
    pub fn call(&mut self, callee: &str, args: &[ValueId]) -> ValueId {
        self.emit(InstKind::Call {
            callee: callee.to_string(),
            args: args.to_vec(),
        })
    }

    /// Debug binding pseudo-instruction.
    pub fn dbg_value(&mut self, var: &str, value: ValueId) {
        self.emit_void(InstKind::DbgValue {
            var: var.to_string(),
            value,
        });
    }

    /// Terminates the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.current).term = Terminator::Br(target);
    }

    /// Terminates the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.func.block_mut(self.current).term = Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        };
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.func.block_mut(self.current).term = Terminator::Ret(value);
    }

    /// Finishes construction and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::Module;

    #[test]
    fn builds_loop_function() {
        // sum(n) = 0 + 1 + … + (n-1)
        let mut b = FunctionBuilder::new("sum", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(b.current_block(), zero)]); // placeholder fixed below
        let s = b.phi(&[(b.current_block(), zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let s2 = b.binop(BinOp::Add, s, i);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        // Fix up φ incomings now that all blocks exist.
        let entry = f.entry;
        let phi_i = f.block(header).insts[0];
        let phi_s = f.block(header).insts[1];
        f.inst_mut(phi_i).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        f.inst_mut(phi_s).kind = InstKind::Phi(vec![(entry, zero), (body, s2)]);
        crate::verify(&f).unwrap();
        let m = Module::new();
        let out = run_function(&f, &[Val::Int(5)], &m, 10_000).unwrap();
        assert_eq!(out, Some(Val::Int(10)));
    }
}
