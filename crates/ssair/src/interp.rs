//! A reference interpreter for the SSA IR.
//!
//! Used for differential testing of the optimization passes and as the
//! execution engine of the `tinyvm` runtime.  Values are integers or
//! pointers into alloca cells; memory lives in a [`Machine`] shared across
//! the call stack.

use std::collections::BTreeMap;
use std::fmt;

use crate::ir::{BlockId, Function, InstId, InstKind, Module, Terminator, ValueId};

/// A runtime value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Val {
    /// 64-bit integer.
    Int(i64),
    /// Pointer: allocation id + cell offset.
    Ptr(usize, i64),
}

impl Val {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is a pointer.
    pub fn as_int(self) -> i64 {
        match self {
            Val::Int(n) => n,
            Val::Ptr(..) => panic!("expected integer, found pointer"),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(n) => write!(f, "{n}"),
            Val::Ptr(a, o) => write!(f, "ptr({a}+{o})"),
        }
    }
}

/// Why execution failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The step budget ran out.
    OutOfFuel,
    /// A value was read before being computed (interpreter bug or invalid
    /// IR).
    UndefinedValue(ValueId),
    /// Memory access out of bounds.
    OutOfBounds,
    /// Call to an unknown function.
    UnknownFunction(String),
    /// Pointer/integer confusion.
    TypeError,
    /// A transition the runtime had committed to (e.g. a mandatory
    /// guard-escape out of speculative code) could not be served; the
    /// activation cannot soundly continue in its current version.
    MandatoryTransitionFailed,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::OutOfFuel => write!(f, "out of fuel"),
            ExecError::UndefinedValue(v) => write!(f, "read of undefined value {v}"),
            ExecError::OutOfBounds => write!(f, "memory access out of bounds"),
            ExecError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ExecError::TypeError => write!(f, "pointer/integer type confusion"),
            ExecError::MandatoryTransitionFailed => {
                write!(f, "a mandatory transition could not be served")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Machine state: allocation arena shared by all frames.
#[derive(Clone, Default, Debug)]
pub struct Machine {
    allocs: Vec<Vec<i64>>,
    /// Remaining step budget.
    pub fuel: usize,
}

impl Machine {
    /// Creates a machine with the given step budget.
    pub fn new(fuel: usize) -> Self {
        Machine {
            allocs: Vec::new(),
            fuel,
        }
    }

    /// Allocates `size` zeroed cells, returning a pointer to cell 0.
    pub fn alloc(&mut self, size: u32) -> Val {
        self.allocs.push(vec![0; size as usize]);
        Val::Ptr(self.allocs.len() - 1, 0)
    }

    pub(crate) fn load(&self, p: Val) -> Result<i64, ExecError> {
        let Val::Ptr(a, o) = p else {
            return Err(ExecError::TypeError);
        };
        self.allocs
            .get(a)
            .and_then(|cells| usize::try_from(o).ok().and_then(|o| cells.get(o)))
            .copied()
            .ok_or(ExecError::OutOfBounds)
    }

    pub(crate) fn store(&mut self, p: Val, v: i64) -> Result<(), ExecError> {
        let Val::Ptr(a, o) = p else {
            return Err(ExecError::TypeError);
        };
        let cell = self
            .allocs
            .get_mut(a)
            .and_then(|cells| usize::try_from(o).ok().and_then(move |o| cells.get_mut(o)))
            .ok_or(ExecError::OutOfBounds)?;
        *cell = v;
        Ok(())
    }
}

/// Reads a memory cell without mutating the machine (used when executing
/// compensation-code loads).
pub fn machine_peek(machine: &Machine, p: Val) -> Option<i64> {
    machine.load(p).ok()
}

/// An activation frame, exposed so the runtime can suspend/resume and
/// perform OSR transitions.
#[derive(Clone, Debug)]
pub struct Frame {
    /// Computed SSA values.
    pub values: BTreeMap<ValueId, Val>,
    /// Block currently executing.
    pub block: BlockId,
    /// Index of the next instruction within the block.
    pub index: usize,
    /// Block we arrived from (for φ evaluation).
    pub came_from: Option<BlockId>,
}

impl Frame {
    /// Creates a frame positioned at the entry of `f` with the given
    /// arguments bound to the parameters.
    pub fn enter(f: &Function, args: &[Val]) -> Frame {
        let mut values = BTreeMap::new();
        for (i, a) in args.iter().enumerate() {
            values.insert(ValueId(i as u32), *a);
        }
        Frame {
            values,
            block: f.entry,
            index: 0,
            came_from: None,
        }
    }

    /// Reads a computed value.
    pub fn get(&self, v: ValueId) -> Result<Val, ExecError> {
        self.values
            .get(&v)
            .copied()
            .ok_or(ExecError::UndefinedValue(v))
    }
}

/// Outcome of driving a frame forward.
#[derive(Clone, Debug, PartialEq)]
pub enum StepOutcome {
    /// The function returned.
    Returned(Option<Val>),
    /// The frame stopped at an instruction boundary (used by the runtime's
    /// OSR checks); `at` is the instruction about to execute.
    Paused {
        /// The instruction the frame is about to execute.
        at: InstId,
    },
}

/// Hook consulted before each instruction; returning `true` pauses the
/// frame at that instruction.
pub type PausePredicate<'a> = dyn Fn(&Function, &Frame, InstId) -> bool + 'a;

/// Runs `f` to completion on `args`.
///
/// # Errors
///
/// Returns an [`ExecError`] on undefined values, memory errors, unknown
/// callees, or fuel exhaustion.
pub fn run_function(
    f: &Function,
    args: &[Val],
    module: &Module,
    fuel: usize,
) -> Result<Option<Val>, ExecError> {
    let mut machine = Machine::new(fuel);
    let mut frame = Frame::enter(f, args);
    match run_frame(f, &mut frame, &mut machine, module, None)? {
        StepOutcome::Returned(v) => Ok(v),
        StepOutcome::Paused { .. } => unreachable!("no pause predicate supplied"),
    }
}

/// Drives `frame` until return, fuel exhaustion, or the pause predicate
/// fires at an instruction boundary.
///
/// # Errors
///
/// See [`run_function`].
pub fn run_frame(
    f: &Function,
    frame: &mut Frame,
    machine: &mut Machine,
    module: &Module,
    pause: Option<&PausePredicate<'_>>,
) -> Result<StepOutcome, ExecError> {
    loop {
        let block = f.block(frame.block);
        if frame.index < block.insts.len() {
            let inst_id = block.insts[frame.index];
            if let Some(p) = pause {
                if p(f, frame, inst_id) {
                    return Ok(StepOutcome::Paused { at: inst_id });
                }
            }
            if machine.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            machine.fuel -= 1;
            exec_inst(f, frame, machine, module, inst_id)?;
            frame.index += 1;
        } else {
            if machine.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            machine.fuel -= 1;
            match &block.term {
                Terminator::Ret(v) => {
                    let val = match v {
                        Some(v) => Some(frame.get(*v)?),
                        None => None,
                    };
                    return Ok(StepOutcome::Returned(val));
                }
                Terminator::Br(t) => jump(f, frame, *t)?,
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = frame.get(*cond)?.as_int_checked()?;
                    let t = if c != 0 { *then_bb } else { *else_bb };
                    jump(f, frame, t)?;
                }
            }
        }
    }
}

trait IntChecked {
    // `Val` is `Copy`; taking it by value is the natural calling convention.
    #[allow(clippy::wrong_self_convention)]
    fn as_int_checked(self) -> Result<i64, ExecError>;
}

impl IntChecked for Val {
    fn as_int_checked(self) -> Result<i64, ExecError> {
        match self {
            Val::Int(n) => Ok(n),
            Val::Ptr(..) => Err(ExecError::TypeError),
        }
    }
}

/// Performs the control transfer to `target`, evaluating its φ-nodes
/// atomically with respect to the source block.
fn jump(f: &Function, frame: &mut Frame, target: BlockId) -> Result<(), ExecError> {
    let from = frame.block;
    // Evaluate φs against the *old* frame values (parallel assignment).
    let mut phi_updates: Vec<(ValueId, Val)> = Vec::new();
    for &i in &f.block(target).insts {
        let data = f.inst(i);
        let InstKind::Phi(incs) = &data.kind else {
            break;
        };
        let (_, v) = incs
            .iter()
            .find(|(p, _)| *p == from)
            .ok_or(ExecError::UndefinedValue(data.result.unwrap_or(ValueId(0))))?;
        let val = frame.get(*v)?;
        phi_updates.push((data.result.expect("φ has a result"), val));
    }
    for (r, v) in phi_updates {
        frame.values.insert(r, v);
    }
    frame.came_from = Some(from);
    frame.block = target;
    // Skip past the φ-nodes we just evaluated.
    frame.index = f
        .block(target)
        .insts
        .iter()
        .take_while(|i| f.inst(**i).kind.is_phi())
        .count();
    Ok(())
}

fn exec_inst(
    f: &Function,
    frame: &mut Frame,
    machine: &mut Machine,
    module: &Module,
    inst_id: InstId,
) -> Result<(), ExecError> {
    let data = f.inst(inst_id);
    let result: Option<Val> = match &data.kind {
        InstKind::Const(n) => Some(Val::Int(*n)),
        InstKind::Binop(op, a, b) => Some(Val::Int(op.apply(
            frame.get(*a)?.as_int_checked()?,
            frame.get(*b)?.as_int_checked()?,
        ))),
        InstKind::Neg(a) => Some(Val::Int(frame.get(*a)?.as_int_checked()?.wrapping_neg())),
        InstKind::Not(a) => Some(Val::Int(i64::from(frame.get(*a)?.as_int_checked()? == 0))),
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => {
            let c = frame.get(*cond)?.as_int_checked()?;
            Some(if c != 0 {
                frame.get(*then_v)?
            } else {
                frame.get(*else_v)?
            })
        }
        InstKind::Phi(_) => {
            // φs are evaluated on the incoming edge by `jump`; reaching one
            // here means the frame was resumed exactly at a φ — its value
            // must already be present.
            return match data.result {
                Some(r) if frame.values.contains_key(&r) => Ok(()),
                Some(r) => Err(ExecError::UndefinedValue(r)),
                None => Ok(()),
            };
        }
        InstKind::Alloca { size, .. } => Some(machine.alloc(*size)),
        InstKind::Load { addr } => Some(Val::Int(machine.load(frame.get(*addr)?)?)),
        InstKind::Store { addr, value } => {
            let v = frame.get(*value)?.as_int_checked()?;
            machine.store(frame.get(*addr)?, v)?;
            None
        }
        InstKind::Gep { base, index } => {
            let Val::Ptr(a, o) = frame.get(*base)? else {
                return Err(ExecError::TypeError);
            };
            let i = frame.get(*index)?.as_int_checked()?;
            Some(Val::Ptr(a, o + i))
        }
        InstKind::Call { callee, args } => {
            let callee_fn = module
                .get(callee)
                .ok_or_else(|| ExecError::UnknownFunction(callee.clone()))?;
            let mut vals = Vec::with_capacity(args.len());
            for a in args {
                vals.push(frame.get(*a)?);
            }
            let mut inner = Frame::enter(callee_fn, &vals);
            match run_frame(callee_fn, &mut inner, machine, module, None)? {
                StepOutcome::Returned(v) => Some(v.unwrap_or(Val::Int(0))),
                StepOutcome::Paused { .. } => unreachable!("no pause in calls"),
            }
        }
        InstKind::DbgValue { .. } => None,
    };
    if let (Some(r), Some(v)) = (data.result, result) {
        frame.values.insert(r, v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, FunctionBuilder, Ty};

    fn module_with(fs: Vec<Function>) -> Module {
        let mut m = Module::new();
        for f in fs {
            m.add(f);
        }
        m
    }

    #[test]
    fn arithmetic_and_select() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let two = b.const_i64(2);
        let sq = b.binop(BinOp::Mul, x, x);
        let cmp = b.binop(BinOp::Gt, sq, two);
        let r = b.select(cmp, sq, two);
        b.ret(Some(r));
        let f = b.finish();
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(3)], &m, 100).unwrap(),
            Some(Val::Int(9))
        );
        assert_eq!(
            run_function(&f, &[Val::Int(1)], &m, 100).unwrap(),
            Some(Val::Int(2))
        );
    }

    #[test]
    fn memory_roundtrip() {
        let mut b = FunctionBuilder::new("mem", &[("x", Ty::I64)]);
        let x = b.param(0);
        let buf = b.alloca(4);
        let idx = b.const_i64(2);
        let p = b.gep(buf, idx);
        b.store(p, x);
        let v = b.load(p);
        b.ret(Some(v));
        let f = b.finish();
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(42)], &m, 100).unwrap(),
            Some(Val::Int(42))
        );
    }

    #[test]
    fn out_of_bounds_detected() {
        let mut b = FunctionBuilder::new("oob", &[]);
        let buf = b.alloca(1);
        let idx = b.const_i64(5);
        let p = b.gep(buf, idx);
        let v = b.load(p);
        b.ret(Some(v));
        let f = b.finish();
        let m = Module::new();
        assert_eq!(run_function(&f, &[], &m, 100), Err(ExecError::OutOfBounds));
    }

    #[test]
    fn cross_function_call() {
        let mut callee = FunctionBuilder::new("inc", &[("a", Ty::I64)]);
        let a = callee.param(0);
        let one = callee.const_i64(1);
        let r = callee.binop(BinOp::Add, a, one);
        callee.ret(Some(r));

        let mut caller = FunctionBuilder::new("main", &[("x", Ty::I64)]);
        let x = caller.param(0);
        let c = caller.call("inc", &[x]);
        let c2 = caller.call("inc", &[c]);
        caller.ret(Some(c2));

        let m = module_with(vec![callee.finish()]);
        assert_eq!(
            run_function(&caller.finish(), &[Val::Int(5)], &m, 1000).unwrap(),
            Some(Val::Int(7))
        );
    }

    #[test]
    fn fuel_exhaustion_on_infinite_loop() {
        let mut b = FunctionBuilder::new("spin", &[]);
        let loop_bb = b.create_block("loop");
        b.br(loop_bb);
        b.switch_to(loop_bb);
        b.br(loop_bb);
        let f = b.finish();
        let m = Module::new();
        assert_eq!(run_function(&f, &[], &m, 100), Err(ExecError::OutOfFuel));
    }

    #[test]
    fn pause_predicate_stops_frame() {
        let mut b = FunctionBuilder::new("p", &[("x", Ty::I64)]);
        let x = b.param(0);
        let one = b.const_i64(1);
        let y = b.binop(BinOp::Add, x, one);
        b.ret(Some(y));
        let f = b.finish();
        let m = Module::new();
        let mut machine = Machine::new(100);
        let mut frame = Frame::enter(&f, &[Val::Int(1)]);
        let target = f.block(f.entry).insts[1];
        let out = run_frame(
            &f,
            &mut frame,
            &mut machine,
            &m,
            Some(&|_f, _fr, i| i == target),
        )
        .unwrap();
        assert_eq!(out, StepOutcome::Paused { at: target });
        // Resuming without the predicate completes the run.
        let out = run_frame(&f, &mut frame, &mut machine, &m, None).unwrap();
        assert_eq!(out, StepOutcome::Returned(Some(Val::Int(2))));
    }
}
