//! An SSA-based compiler substrate standing in for LLVM (§5 of *On-Stack
//! Replacement, Distilled*).
//!
//! The crate provides:
//!
//! * a typed-index SSA IR ([`Function`], [`InstKind`], [`Terminator`]) with
//!   a [`FunctionBuilder`] and a [`verify`] pass;
//! * the analyses the paper's techniques need: CFG utilities ([`mod@cfg`]),
//!   dominators ([`dom`]), natural loops ([`loops`]), liveness
//!   ([`liveness`]);
//! * [`mem2reg`] — stack-slot promotion with φ insertion, preserving
//!   source-variable debug bindings as transparent [`InstKind::DbgValue`]
//!   pseudo-instructions (mirroring `llvm.dbg.value`, §7.2);
//! * OSR-aware optimization passes ([`passes`]): ADCE, constant
//!   propagation, SCCP, CSE, LICM, code sinking, loop canonicalization and
//!   LCSSA construction — each instrumented with the five primitive actions
//!   of §5.1 via [`osr::CodeMapper`];
//! * the SSA formulation of Algorithm 1 ([`reconstruct`]) and the OSR
//!   feasibility analysis behind Figures 7–8 and Table 3
//!   ([`feasibility`]);
//! * a reference [`interp`]reter used for differential testing and by the
//!   `tinyvm` runtime.
//!
//! # Examples
//!
//! ```
//! use ssair::{BinOp, FunctionBuilder, Ty};
//!
//! let mut b = FunctionBuilder::new("double", &[("x", Ty::I64)]);
//! let x = b.param(0);
//! let two = b.const_i64(2);
//! let r = b.binop(BinOp::Mul, x, two);
//! b.ret(Some(r));
//! let f = b.finish();
//! assert!(ssair::verify(&f).is_ok());
//! ```

mod builder;
pub mod cfg;
pub mod dom;
pub mod feasibility;
pub mod interp;
mod ir;
pub mod liveness;
pub mod loops;
pub mod machine;
pub mod mem2reg;
pub mod passes;
pub mod reconstruct;
mod verify;

pub use builder::FunctionBuilder;
pub use ir::{
    BinOp, BlockData, BlockId, Function, InstData, InstId, InstKind, Module, Terminator, Ty,
    ValueDef, ValueId,
};
pub use verify::{verify, VerifyError};

/// The code-mapper type used throughout the substrate: locations are
/// instruction ids, values are SSA value ids (§5.1).
pub type SsaMapper = osr::CodeMapper<InstId, ValueId>;
