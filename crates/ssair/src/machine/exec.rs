//! The machine dispatch loop: direct-indexed execution of the linear
//! micro-IR.
//!
//! Each [`MInst`] costs one unit of fuel, reads its operands straight out
//! of the frame's register/slot vectors, and advances a plain `usize` pc —
//! no `ValueId → Val` hashing anywhere.  Semantics mirror the SSA
//! interpreter instruction for instruction (same wrapping arithmetic, same
//! pointer/integer checking, same shared memory arena); calls recurse into
//! the SSA interpreter for the callee so cross-function behavior, fuel
//! accounting inside callees, and the allocation arena are shared with
//! every other tier.
//!
//! The loop is deliberately *not* instrumented here: [`exec_inst`] executes
//! exactly one micro-instruction and reports whether it crossed a CFG edge
//! ([`MachineStep::Jumped`]), which is what the runtime's tiered loop hooks
//! its edge observer and hotness profiler onto.  [`run_machine`] is the
//! uninstrumented run-to-completion used for differential validation of
//! register-level entry tables.
//!
//! [`exec_inst`]: MachineArtifact::exec_inst
//! [`run_machine`]: MachineArtifact::run_machine

use crate::interp::{run_frame, ExecError, Frame, Machine, StepOutcome, Val};
use crate::ir::{BlockId, Module};

use super::{MInst, MachineArtifact, MachineFrame};

/// What one micro-instruction did to control flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineStep {
    /// Fell through to `pc + 1`.
    Next,
    /// Crossed CFG edge `from → to`, landing at `pc` — the runtime's cue
    /// to update its notion of the current block and feed the edge
    /// observer.
    Jumped {
        /// Source block of the edge.
        from: BlockId,
        /// Destination block of the edge.
        to: BlockId,
        /// The pc jumped to.
        pc: usize,
    },
    /// Transferred to an edge trampoline at `pc`.  Not an edge crossing
    /// yet — the trampoline's trailing [`MInst::Jump`] reports the edge.
    Branched(usize),
    /// The function returned.
    Returned(Option<Val>),
}

fn int(v: Val) -> Result<i64, ExecError> {
    match v {
        Val::Int(n) => Ok(n),
        Val::Ptr(..) => Err(ExecError::TypeError),
    }
}

impl MachineArtifact {
    /// Executes the micro-instruction at `pc`, spending one unit of fuel.
    ///
    /// # Errors
    ///
    /// The same failures as the SSA interpreter: fuel exhaustion, memory
    /// errors, pointer/integer confusion, unknown callees.
    pub fn exec_inst(
        &self,
        pc: usize,
        frame: &mut MachineFrame,
        machine: &mut Machine,
        module: &Module,
    ) -> Result<MachineStep, ExecError> {
        if machine.fuel == 0 {
            return Err(ExecError::OutOfFuel);
        }
        machine.fuel -= 1;
        match &self.code[pc] {
            MInst::Const { dst, value } => frame.write(*dst, Val::Int(*value)),
            MInst::Bin { op, dst, a, b } => {
                let r = op.apply(int(frame.read(*a))?, int(frame.read(*b))?);
                frame.write(*dst, Val::Int(r));
            }
            MInst::Neg { dst, src } => {
                let r = int(frame.read(*src))?.wrapping_neg();
                frame.write(*dst, Val::Int(r));
            }
            MInst::Not { dst, src } => {
                let r = i64::from(int(frame.read(*src))? == 0);
                frame.write(*dst, Val::Int(r));
            }
            MInst::Select {
                dst,
                cond,
                then_v,
                else_v,
            } => {
                let c = int(frame.read(*cond))?;
                let v = frame.read(if c != 0 { *then_v } else { *else_v });
                frame.write(*dst, v);
            }
            MInst::Copy { dst, src } => {
                let v = frame.read(*src);
                frame.write(*dst, v);
            }
            MInst::Alloca { dst, size } => {
                let p = machine.alloc(*size);
                frame.write(*dst, p);
            }
            MInst::Load { dst, addr } => {
                let v = machine.load(frame.read(*addr))?;
                frame.write(*dst, Val::Int(v));
            }
            MInst::Store { addr, value } => {
                let v = int(frame.read(*value))?;
                machine.store(frame.read(*addr), v)?;
            }
            MInst::Gep { dst, base, index } => {
                let Val::Ptr(a, o) = frame.read(*base) else {
                    return Err(ExecError::TypeError);
                };
                let i = int(frame.read(*index))?;
                frame.write(*dst, Val::Ptr(a, o + i));
            }
            MInst::Call { dst, callee, args } => {
                self.call_dispatches
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let callee_fn = module
                    .get(callee)
                    .ok_or_else(|| ExecError::UnknownFunction(callee.clone()))?;
                let vals: Vec<Val> = args.iter().map(|a| frame.read(*a)).collect();
                let mut inner = Frame::enter(callee_fn, &vals);
                match run_frame(callee_fn, &mut inner, machine, module, None)? {
                    StepOutcome::Returned(v) => frame.write(*dst, v.unwrap_or(Val::Int(0))),
                    StepOutcome::Paused { .. } => unreachable!("no pause in calls"),
                }
            }
            MInst::Jump {
                pc: target,
                from,
                to,
            } => {
                // Layout quality accounting: a jump to the very next pc is
                // a fallthrough the dispatch loop pays nothing extra for.
                let counter = if *target == pc + 1 {
                    &self.fallthrough_jumps
                } else {
                    &self.taken_jumps
                };
                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                return Ok(MachineStep::Jumped {
                    from: *from,
                    to: *to,
                    pc: *target,
                });
            }
            MInst::Branch {
                cond,
                then_pc,
                else_pc,
            } => {
                let c = int(frame.read(*cond))?;
                // Branch targets are edge trampolines (copies + Jump); the
                // transfer itself is not yet an edge crossing.
                let target = if c != 0 { *then_pc } else { *else_pc };
                return Ok(MachineStep::Branched(target));
            }
            MInst::Ret { value } => {
                return Ok(MachineStep::Returned(value.map(|l| frame.read(l))));
            }
        }
        Ok(MachineStep::Next)
    }

    /// Runs the frame from `pc` to return, uninstrumented — the validation
    /// path: entry tables over the machine substrate are differentially
    /// replayed through this before an artifact is published.
    ///
    /// # Errors
    ///
    /// See [`MachineArtifact::exec_inst`].
    pub fn run_machine(
        &self,
        mut pc: usize,
        frame: &mut MachineFrame,
        machine: &mut Machine,
        module: &Module,
    ) -> Result<Option<Val>, ExecError> {
        loop {
            match self.exec_inst(pc, frame, machine, module)? {
                MachineStep::Next => pc += 1,
                MachineStep::Jumped { pc: target, .. } | MachineStep::Branched(target) => {
                    pc = target;
                }
                MachineStep::Returned(v) => return Ok(v),
            }
        }
    }
}
