//! The machine backend: a linear, register-allocated micro-IR plus the
//! bidirectional location maps that connect it back to SSA.
//!
//! Every other program version in this repository *interprets SSA*: a
//! frame is a `ValueId → Val` map and each instruction looks its operands
//! up by name.  The machine backend is the compiled-tier analogue.
//! [`lower::lower_function`] flattens an SSA function into a linear
//! sequence of [`MInst`]s over physical [`Loc`]ations — a fixed register
//! file plus indexed spill slots — with φ-nodes resolved into parallel
//! copies on the incoming edges and every branch turned into an explicit
//! jump-to-pc.  [`regalloc`] colors SSA values onto the register file via
//! liveness-derived interference, spilling the overflow.  [`exec`] is the
//! dispatch loop: a [`MachineFrame`] is two flat `Vec<Val>`s (registers
//! and slots) indexed directly, with no value-map hashing anywhere on the
//! hot path.
//!
//! What makes the backend a *tier* rather than a toy is the OSR
//! integration: the artifact carries a [`LocationMap`] for every lowered
//! SSA point, naming — in both directions — which SSA value lives in
//! which physical location at that point.  Climbing *into* machine code
//! ([`MachineArtifact::enter`]) writes an SSA frame produced by an entry
//! table's compensation code into registers; deoptimizing *out of*
//! registers ([`MachineArtifact::reconstruct`]) rebuilds the SSA frame an
//! entry table's compensation code expects to read.  Values the backward
//! tables may read after their register died are kept reachable through
//! write-through *shadow slots* (see [`lower`]), with per-slot
//! initialization bits turning any gap into a dynamic infeasibility
//! instead of a wrong answer — the same failure mode Algorithm 1 assigns
//! to a missing landing site.

pub mod exec;
pub mod lower;
pub mod regalloc;

use std::collections::BTreeMap;

use crate::interp::Val;
use crate::ir::{BinOp, BlockId, InstId, ValueId};

pub use exec::MachineStep;
pub use lower::lower_function;

/// Size of the fixed register file values are colored onto.
pub const NUM_REGS: usize = 16;

/// A physical location: a register of the fixed file, or a spill slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Loc {
    /// Register `r` of the fixed file (`r < NUM_REGS`).
    Reg(u8),
    /// Spill slot `s` in the frame's slot array.
    Slot(u32),
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Loc::Reg(r) => write!(f, "r{r}"),
            Loc::Slot(s) => write!(f, "s{s}"),
        }
    }
}

/// One linear micro-instruction over physical locations.
///
/// Control flow is explicit: `Jump`/`Branch` name target pcs, and every
/// inter-block transfer funnels through a `Jump` carrying the CFG edge it
/// realizes, which is how the dispatch loop maintains the current block
/// and `came_from` for edge observation without per-pc tags.
#[derive(Clone, Debug)]
pub enum MInst {
    /// `dst ← value`.
    Const {
        /// Destination.
        dst: Loc,
        /// Immediate.
        value: i64,
    },
    /// `dst ← a op b` (integer operands, interpreter semantics).
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination.
        dst: Loc,
        /// Left operand.
        a: Loc,
        /// Right operand.
        b: Loc,
    },
    /// `dst ← -src` (wrapping).
    Neg {
        /// Destination.
        dst: Loc,
        /// Operand.
        src: Loc,
    },
    /// `dst ← (src == 0)`.
    Not {
        /// Destination.
        dst: Loc,
        /// Operand.
        src: Loc,
    },
    /// `dst ← cond ≠ 0 ? then_v : else_v`.
    Select {
        /// Destination.
        dst: Loc,
        /// Condition.
        cond: Loc,
        /// Value when non-zero.
        then_v: Loc,
        /// Value when zero.
        else_v: Loc,
    },
    /// `dst ← src` — φ-elimination edge copies and shadow write-through.
    Copy {
        /// Destination.
        dst: Loc,
        /// Source.
        src: Loc,
    },
    /// `dst ← fresh allocation of `size` zeroed cells`.
    Alloca {
        /// Destination (receives the pointer).
        dst: Loc,
        /// Cells to allocate.
        size: u32,
    },
    /// `dst ← memory[addr]`.
    Load {
        /// Destination.
        dst: Loc,
        /// Address operand.
        addr: Loc,
    },
    /// `memory[addr] ← value`.
    Store {
        /// Address operand.
        addr: Loc,
        /// Value stored (must be an integer).
        value: Loc,
    },
    /// `dst ← base + index` cells (pointer arithmetic).
    Gep {
        /// Destination.
        dst: Loc,
        /// Base pointer.
        base: Loc,
        /// Cell index.
        index: Loc,
    },
    /// `dst ← callee(args…)` — recurses into the SSA interpreter for the
    /// callee, sharing the memory arena and fuel budget.
    Call {
        /// Destination.
        dst: Loc,
        /// Callee name.
        callee: String,
        /// Argument locations in order.
        args: Vec<Loc>,
    },
    /// Unconditional transfer to `pc`, realizing CFG edge `from → to`.
    Jump {
        /// Target pc.
        pc: usize,
        /// Source block of the edge.
        from: BlockId,
        /// Destination block of the edge.
        to: BlockId,
    },
    /// Two-way transfer on `cond` (non-zero → `then_pc`).  Both targets
    /// point at edge-copy sequences that end in a [`MInst::Jump`].
    Branch {
        /// Condition.
        cond: Loc,
        /// Target when non-zero.
        then_pc: usize,
        /// Target when zero.
        else_pc: usize,
    },
    /// Function return.
    Ret {
        /// Returned location, if any.
        value: Option<Loc>,
    },
}

/// The register↔SSA location map at one lowered SSA point: which SSA
/// value can be found in (or must be written to) which physical location
/// when execution stands at that point.
#[derive(Clone, Debug, Default)]
pub struct LocationMap {
    /// Values *live* at the point, with their home location.  Registers
    /// here are trustworthy by construction: a live value's register
    /// cannot have been reused (interference), and its definition
    /// dominates the point.  Entering machine code requires every one of
    /// these; leaving reads them out of the register file.
    pub live: Vec<(ValueId, Loc)>,
    /// Values *available but dead* at the point whose shadow slot may
    /// still hold them — the register-machine analogue of the `Avail`
    /// liveness extension: a backward table's compensation code may read
    /// them even though no machine instruction will.  Reads are gated on
    /// the slot's initialization bit.
    pub shadow: Vec<(ValueId, u32)>,
}

/// A lowered, register-allocated program plus its OSR location maps.
#[derive(Debug)]
pub struct MachineArtifact {
    /// The linear micro-IR.
    pub code: Vec<MInst>,
    /// pc of the function entry block (arguments in their home
    /// locations, start here).
    pub entry_pc: usize,
    /// Registers actually used (≤ [`NUM_REGS`]).
    pub num_regs: usize,
    /// Spill + shadow + scratch slots used.
    pub num_slots: usize,
    /// pc of the micro-instruction lowered from each SSA instruction
    /// (φ-nodes and debug pseudo-instructions have no pc — φs become edge
    /// copies, debug bindings lower to nothing).
    pub pc_of: BTreeMap<InstId, usize>,
    /// The location map at every lowered SSA point — every point a
    /// validated entry table can land on or leave from.
    pub osr_maps: BTreeMap<InstId, LocationMap>,
    /// Home location of every allocated SSA value.
    pub loc_of: BTreeMap<ValueId, Loc>,
    /// Shadow slot of every value the backward tables may need after its
    /// register dies (write-through at the definition).
    pub shadow_slot: BTreeMap<ValueId, u32>,
    /// Dynamic count of [`MInst::Jump`]s whose target was *not* the next
    /// pc — the jumps a better layout removes.  Relaxed: a monitoring
    /// counter, never a synchronization point.
    pub taken_jumps: std::sync::atomic::AtomicU64,
    /// Dynamic count of [`MInst::Jump`]s whose target was exactly `pc + 1`
    /// (pure fallthroughs after profile-guided layout).
    pub fallthrough_jumps: std::sync::atomic::AtomicU64,
    /// Dynamic count of [`MInst::Call`]s dispatched — the frame setups,
    /// argument copies and returns inline speculation exists to remove.
    /// An artifact lowered from a spliced caller executes strictly fewer
    /// of these than its call-preserving sibling on the same traffic.
    pub call_dispatches: std::sync::atomic::AtomicU64,
}

impl MachineArtifact {
    /// Whether the CFG edge `from → to` is realized as a pc-fallthrough:
    /// its [`MInst::Jump`] targets the instruction immediately after
    /// itself.  This is the static property the dynamic
    /// [`MachineArtifact::jump_counts`] measure — profile-guided layout
    /// makes the hot successor of every biased branch a fallthrough.
    pub fn edge_is_fallthrough(&self, from: BlockId, to: BlockId) -> bool {
        self.code.iter().enumerate().any(|(at, inst)| {
            matches!(inst, MInst::Jump { pc, from: f, to: t }
                if *f == from && *t == to && *pc == at + 1)
        })
    }

    /// `(taken, fallthrough)` jump counts accumulated by every execution
    /// of this artifact.
    pub fn jump_counts(&self) -> (u64, u64) {
        (
            self.taken_jumps.load(std::sync::atomic::Ordering::Relaxed),
            self.fallthrough_jumps
                .load(std::sync::atomic::Ordering::Relaxed),
        )
    }

    /// Calls dispatched by every execution of this artifact.
    pub fn call_dispatch_count(&self) -> u64 {
        self.call_dispatches
            .load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// A machine activation: flat register and slot files indexed by
/// [`Loc`], with per-slot initialization bits.
///
/// Registers are always readable (a map only names a register for a
/// *live* value, whose definition has executed and whose register cannot
/// have been reused).  Slots carry an initialization bit because a frame
/// that OSR-entered mid-function may never execute the definition that
/// would have filled a slot — reading such a slot during reconstruction
/// must surface as a *missing value* (dynamic infeasibility), never as
/// garbage.
#[derive(Clone, Debug)]
pub struct MachineFrame {
    /// The register file.
    pub regs: Vec<Val>,
    /// Spill, shadow and scratch slots.
    pub slots: Vec<Val>,
    /// Which slots hold a value this activation actually produced.
    pub slot_init: Vec<bool>,
}

impl MachineFrame {
    /// A fresh (all-zero, no slot initialized) frame for `art`.
    pub fn new(art: &MachineArtifact) -> Self {
        MachineFrame {
            regs: vec![Val::Int(0); art.num_regs],
            slots: vec![Val::Int(0); art.num_slots],
            slot_init: vec![false; art.num_slots],
        }
    }

    /// Reads a location unconditionally (executing code only reads
    /// locations its own definitions or the validated entry wrote).
    #[inline]
    pub fn read(&self, loc: Loc) -> Val {
        match loc {
            Loc::Reg(r) => self.regs[r as usize],
            Loc::Slot(s) => self.slots[s as usize],
        }
    }

    /// Writes a location, marking slot writes initialized.
    #[inline]
    pub fn write(&mut self, loc: Loc, v: Val) {
        match loc {
            Loc::Reg(r) => self.regs[r as usize] = v,
            Loc::Slot(s) => {
                self.slots[s as usize] = v;
                self.slot_init[s as usize] = true;
            }
        }
    }

    /// Reads a location for *reconstruction*: slot reads are gated on the
    /// initialization bit (`None` = this activation never produced the
    /// value — a dynamic infeasibility, not an error).
    pub fn read_checked(&self, loc: Loc) -> Option<Val> {
        match loc {
            Loc::Reg(r) => Some(self.regs[r as usize]),
            Loc::Slot(s) => self.slot_init[s as usize].then(|| self.slots[s as usize]),
        }
    }
}

impl MachineArtifact {
    /// Builds a machine frame positioned at the lowered SSA point `at`
    /// from an SSA value environment (the output of an entry table's
    /// compensation code) — the climb-in direction of the location map.
    ///
    /// Every *live* value at `at` must be present (the machine code past
    /// `at` will read its register unconditionally); if any is missing,
    /// or `at` was never lowered, returns `None` and the caller falls
    /// back to interpreting the same SSA function — identical semantics,
    /// no substrate.  Shadow values are written when present and left
    /// uninitialized otherwise.  Live values that also own a shadow slot
    /// are written through immediately, so a later exit at a point where
    /// they have died can still read them.
    pub fn enter(&self, at: InstId, values: &BTreeMap<ValueId, Val>) -> Option<MachineFrame> {
        let map = self.osr_maps.get(&at)?;
        let mut frame = MachineFrame::new(self);
        for (v, loc) in &map.live {
            let val = *values.get(v)?;
            frame.write(*loc, val);
            if let Some(slot) = self.shadow_slot.get(v) {
                frame.write(Loc::Slot(*slot), val);
            }
        }
        for (v, slot) in &map.shadow {
            if let Some(val) = values.get(v) {
                frame.write(Loc::Slot(*slot), *val);
            }
        }
        Some(frame)
    }

    /// Rebuilds the SSA value environment at point `at` out of the
    /// physical frame — the deopt-out direction of the location map: live
    /// values are read from their home locations (registers included —
    /// this is what "deoptimizing out of registers" means), dead-but-
    /// available values from their shadow slots where initialized.
    ///
    /// The result feeds the ordinary entry-table machinery
    /// (`with_remat_consts` + `apply_comp`): a value this frame never
    /// produced is simply absent, and a table whose compensation code
    /// needs it fails feasibility dynamically — sound, and already the
    /// handled `on_infeasible` path.
    pub fn reconstruct(&self, frame: &MachineFrame, at: InstId) -> Option<BTreeMap<ValueId, Val>> {
        let map = self.osr_maps.get(&at)?;
        let mut out = BTreeMap::new();
        for (v, loc) in &map.live {
            if let Some(val) = frame.read_checked(*loc) {
                out.insert(*v, val);
            }
        }
        for (v, slot) in &map.shadow {
            if let Some(val) = frame.read_checked(Loc::Slot(*slot)) {
                out.entry(*v).or_insert(val);
            }
        }
        Some(out)
    }

    /// The pc of lowered SSA point `at`, if `at` was lowered.
    pub fn pc_at(&self, at: InstId) -> Option<usize> {
        self.pc_of.get(&at).copied()
    }

    /// A frame positioned at [`MachineArtifact::entry_pc`] with `args`
    /// bound to the parameters' home locations (parameters are the first
    /// value ids, `ValueId(0..n)`), shadow slots written through.
    pub fn enter_args(&self, args: &[Val]) -> MachineFrame {
        let mut frame = MachineFrame::new(self);
        for (i, a) in args.iter().enumerate() {
            let v = ValueId(i as u32);
            if let Some(l) = self.loc_of.get(&v) {
                frame.write(*l, *a);
            }
            if let Some(s) = self.shadow_slot.get(&v) {
                frame.write(Loc::Slot(*s), *a);
            }
        }
        frame
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use super::*;
    use crate::interp::Machine;
    use crate::liveness::Liveness;
    use crate::{mem2reg, BinOp, Function, FunctionBuilder, Module, Ty};

    fn run_lowered(f: &Function, args: &[Val], module: &Module, fuel: usize) -> Option<Val> {
        let art = lower_function(f, &BTreeSet::new());
        let mut frame = art.enter_args(args);
        let mut machine = Machine::new(fuel);
        art.run_machine(art.entry_pc, &mut frame, &mut machine, module)
            .expect("machine run succeeds")
    }

    fn differential(f: &Function, module: &Module, inputs: &[i64]) {
        for &x in inputs {
            let expect = crate::interp::run_function(f, &[Val::Int(x)], module, 1_000_000)
                .expect("interp run succeeds");
            let got = run_lowered(f, &[Val::Int(x)], module, 1_000_000);
            assert_eq!(got, expect, "machine vs interp diverged on input {x}");
        }
    }

    /// `sum(n) = Σ_{i<n} (i*i % 7)`, built with memory variables then
    /// mem2reg'd so the loop carries real φ-nodes.
    fn loop_fn() -> Function {
        let mut b = FunctionBuilder::new("sum", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let seven = b.const_i64(7);
        let acc = b.alloca_named(1, "acc");
        let iv = b.alloca_named(1, "i");
        b.store(acc, zero);
        b.store(iv, zero);
        let head = b.create_block("head");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.br(head);
        b.switch_to(head);
        let i = b.load(iv);
        let c = b.binop(BinOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.load(iv);
        let sq = b.binop(BinOp::Mul, i2, i2);
        let m = b.binop(BinOp::Rem, sq, seven);
        let a = b.load(acc);
        let a2 = b.binop(BinOp::Add, a, m);
        b.store(acc, a2);
        let i3 = b.binop(BinOp::Add, i2, one);
        b.store(iv, i3);
        b.br(head);
        b.switch_to(exit);
        let r = b.load(acc);
        b.ret(Some(r));
        let mut f = b.finish();
        assert!(mem2reg::mem2reg(&mut f) > 0, "variables promoted to φs");
        crate::verify(&f).expect("promoted function verifies");
        f
    }

    /// Two loop-carried variables swapped every iteration: mem2reg turns
    /// this into a φ-swap, exercising the parallel-copy cycle breaker.
    fn swap_fn() -> Function {
        let mut b = FunctionBuilder::new("swap", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let two = b.const_i64(2);
        let va = b.alloca_named(1, "a");
        let vb = b.alloca_named(1, "b");
        let iv = b.alloca_named(1, "i");
        b.store(va, one);
        b.store(vb, two);
        b.store(iv, zero);
        let head = b.create_block("head");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        b.br(head);
        b.switch_to(head);
        let i = b.load(iv);
        let c = b.binop(BinOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let a = b.load(va);
        let bv = b.load(vb);
        b.store(va, bv);
        b.store(vb, a);
        let i2 = b.binop(BinOp::Add, i, one);
        b.store(iv, i2);
        b.br(head);
        b.switch_to(exit);
        let ra = b.load(va);
        let rb = b.load(vb);
        let ten = b.const_i64(10);
        let hi = b.binop(BinOp::Mul, ra, ten);
        let r = b.binop(BinOp::Add, hi, rb);
        b.ret(Some(r));
        let mut f = b.finish();
        assert!(mem2reg::mem2reg(&mut f) > 0);
        crate::verify(&f).expect("promoted function verifies");
        f
    }

    #[test]
    fn straight_line_matches_interpreter() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let two = b.const_i64(2);
        let sq = b.binop(BinOp::Mul, x, x);
        let neg = b.neg(sq);
        let nz = b.not(neg);
        let cmp = b.binop(BinOp::Gt, sq, two);
        let sel = b.select(cmp, sq, nz);
        b.ret(Some(sel));
        let f = b.finish();
        differential(&f, &Module::new(), &[-3, 0, 1, 7]);
    }

    #[test]
    fn memory_matches_interpreter() {
        let mut b = FunctionBuilder::new("mem", &[("x", Ty::I64)]);
        let x = b.param(0);
        let buf = b.alloca(4);
        let idx = b.const_i64(2);
        let p = b.gep(buf, idx);
        b.store(p, x);
        let v = b.load(p);
        let d = b.binop(BinOp::Add, v, v);
        b.ret(Some(d));
        let f = b.finish();
        differential(&f, &Module::new(), &[0, 5, -9]);
    }

    #[test]
    fn phi_loop_matches_interpreter() {
        differential(&loop_fn(), &Module::new(), &[0, 1, 2, 17]);
    }

    #[test]
    fn phi_swap_cycle_matches_interpreter() {
        // Odd and even iteration counts land the swapped pair in both
        // orders; both must match the interpreter's parallel φ semantics.
        differential(&swap_fn(), &Module::new(), &[0, 1, 2, 3, 8, 9]);
    }

    #[test]
    fn calls_share_machine_and_fuel() {
        let mut callee = FunctionBuilder::new("inc", &[("a", Ty::I64)]);
        let a = callee.param(0);
        let one = callee.const_i64(1);
        let r = callee.binop(BinOp::Add, a, one);
        callee.ret(Some(r));
        let mut caller = FunctionBuilder::new("main", &[("x", Ty::I64)]);
        let x = caller.param(0);
        let c = caller.call("inc", &[x]);
        let c2 = caller.call("inc", &[c]);
        caller.ret(Some(c2));
        let mut m = Module::new();
        m.add(callee.finish());
        differential(&caller.finish(), &m, &[5, -1]);
    }

    #[test]
    fn enter_and_reconstruct_roundtrip_live_values() {
        let f = loop_fn();
        let cfg = crate::cfg::Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        // Every lowered point: an SSA environment holding exactly the live
        // values enters, and reconstruction returns all of them unchanged.
        let art = lower_function(&f, &BTreeSet::new());
        for (&at, map) in &art.osr_maps {
            let live_set = live.live_before(&f, at);
            assert_eq!(
                map.live.len(),
                live_set.len(),
                "location map covers the live set at {at}"
            );
            let mut env = BTreeMap::new();
            for (k, (v, _)) in map.live.iter().enumerate() {
                env.insert(*v, Val::Int(100 + k as i64));
            }
            let frame = art.enter(at, &env).expect("full environment enters");
            let back = art
                .reconstruct(&frame, at)
                .expect("mapped point reconstructs");
            for (v, val) in &env {
                assert_eq!(back.get(v), Some(val), "{v} survives the roundtrip");
            }
        }
    }

    #[test]
    fn enter_refuses_partial_environments() {
        let f = loop_fn();
        let art = lower_function(&f, &BTreeSet::new());
        let (&at, map) = art
            .osr_maps
            .iter()
            .find(|(_, m)| !m.live.is_empty())
            .expect("some point has live values");
        let mut env = BTreeMap::new();
        for (v, _) in map.live.iter().skip(1) {
            env.insert(*v, Val::Int(1));
        }
        assert!(
            art.enter(at, &env).is_none(),
            "a missing live value must refuse machine entry"
        );
    }

    #[test]
    fn shadow_slots_outlive_register_death() {
        let f = loop_fn();
        // Shadow every value: whatever dies must still reconstruct from
        // its write-through slot at any point its definition dominates.
        let all: BTreeSet<ValueId> = (0..f.value_count() as u32).map(ValueId).collect();
        let art = lower_function(&f, &all);
        let module = Module::new();
        let mut frame = art.enter_args(&[Val::Int(6)]);
        let mut machine = Machine::new(1_000_000);
        let got = art
            .run_machine(art.entry_pc, &mut frame, &mut machine, &module)
            .unwrap();
        let expect = crate::interp::run_function(&f, &[Val::Int(6)], &module, 1_000_000).unwrap();
        assert_eq!(got, expect, "shadowed lowering preserves semantics");
        // After the run, reconstruct at the first lowered point of the
        // exit path: dead-but-shadowed values must be present.
        let shadowed = art
            .osr_maps
            .values()
            .flat_map(|m| m.shadow.iter().map(|(v, _)| *v))
            .collect::<BTreeSet<_>>();
        assert!(
            !shadowed.is_empty(),
            "shadowing every value yields dead-but-available entries"
        );
    }

    #[test]
    fn spill_pressure_still_matches_interpreter() {
        // More simultaneously-live values than registers: force spills.
        let mut b = FunctionBuilder::new("wide", &[("x", Ty::I64)]);
        let x = b.param(0);
        let mut vals = Vec::new();
        for k in 1..=(NUM_REGS as i64 + 8) {
            let c = b.const_i64(k);
            vals.push(b.binop(BinOp::Mul, x, c));
        }
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = b.binop(BinOp::Add, acc, v);
        }
        b.ret(Some(acc));
        let f = b.finish();
        let art = lower_function(&f, &BTreeSet::new());
        assert!(art.num_regs <= NUM_REGS);
        differential(&f, &Module::new(), &[0, 1, -3, 1000]);
    }
}
