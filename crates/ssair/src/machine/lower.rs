//! Lowering SSA to the linear micro-IR: one machine instruction per
//! non-φ SSA instruction, φ-nodes resolved into parallel copies on the
//! incoming edges, every branch an explicit jump-to-pc.
//!
//! Control flow is normalized so that *every* inter-block transfer ends
//! in a [`MInst::Jump`] carrying the CFG edge it realizes: unconditional
//! terminators lower to their edge-copy sequence inline, conditional
//! terminators branch to per-edge trampolines appended after the block
//! bodies.  The dispatch loop thereby maintains the current block and
//! `came_from` exactly as the SSA interpreter's `jump` does, which keeps
//! the [`crate::Function`]-derived edge observer and hotness profiler
//! valid over machine execution.
//!
//! φ-elimination is a genuine parallel copy: all copies of one edge read
//! the *pre-transfer* state, so a swap (`i, j ← j, i`) is sequentialized
//! with a scratch slot rather than executed left-to-right.  Each cycle
//! break allocates a fresh scratch slot — never a register — so scratch
//! traffic cannot perturb the coloring.
//!
//! Values named in `shadow_roots` (the values the artifact's backward
//! entry tables may read after the value's last register use) get a
//! *shadow spill slot*: a write-through [`MInst::Copy`] after each
//! definition whose home is a register.  A value spilled by the allocator
//! is its own shadow — its definition already writes the slot.

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, InstId, InstKind, Terminator, ValueId};
use crate::liveness::{Availability, Liveness};

use super::regalloc::allocate;
use super::{Loc, LocationMap, MInst, MachineArtifact};

/// Lowers `f` into a register-allocated machine artifact.
///
/// `shadow_roots` names the SSA values that must stay reachable for OSR
/// reconstruction even after their registers die — in practice the
/// transfer sources of the artifact's backward entry tables plus its
/// keep set.  Values outside the set are reconstructible only while
/// live (registers) or by the entry tables' own rematerialization.
pub fn lower_function(f: &Function, shadow_roots: &BTreeSet<ValueId>) -> MachineArtifact {
    let cfg = Cfg::compute(f);
    let live = Liveness::compute(f, &cfg);
    let alloc = allocate(f, &live);
    let loc_of = alloc.loc_of;
    let mut next_slot = alloc.num_slots as u32;

    // Shadow slots: spilled roots shadow themselves; register-resident
    // roots get a dedicated slot written through at the definition.
    let mut shadow_slot: BTreeMap<ValueId, u32> = BTreeMap::new();
    for v in shadow_roots {
        match loc_of.get(v) {
            Some(Loc::Slot(s)) => {
                shadow_slot.insert(*v, *s);
            }
            Some(Loc::Reg(_)) => {
                shadow_slot.insert(*v, next_slot);
                next_slot += 1;
            }
            None => {}
        }
    }

    let loc = |v: ValueId| -> Loc {
        *loc_of
            .get(&v)
            .unwrap_or_else(|| panic!("value {v} used but never allocated"))
    };

    let mut code: Vec<MInst> = Vec::new();
    let mut pc_of: BTreeMap<InstId, usize> = BTreeMap::new();
    let mut block_start: BTreeMap<BlockId, usize> = BTreeMap::new();
    // Conditional edges whose trampolines are emitted after the bodies;
    // `branch_patches[i]` names the Branch pc and its two edges.
    let mut branch_patches: Vec<(usize, (BlockId, BlockId), (BlockId, BlockId))> = Vec::new();
    let mut edge_start: BTreeMap<(BlockId, BlockId), usize> = BTreeMap::new();

    // The parallel copies realizing edge `from → to` (φ-elimination),
    // sequentialized with fresh scratch slots for cycles, followed by
    // shadow write-through and the edge's Jump.
    let emit_edge = |code: &mut Vec<MInst>, next_slot: &mut u32, from: BlockId, to: BlockId| {
        let mut pending: Vec<(Loc, Loc)> = Vec::new();
        let mut shadow_writes: Vec<(u32, Loc)> = Vec::new();
        for &i in &f.block(to).insts {
            let InstKind::Phi(incs) = &f.inst(i).kind else {
                continue;
            };
            let d = f.result_of(i).expect("φ has a result");
            let (_, v) = incs
                .iter()
                .find(|(p, _)| *p == from)
                .unwrap_or_else(|| panic!("φ {i} lacks an incoming for {from}"));
            let (dst, src) = (loc(d), loc(*v));
            if dst != src {
                pending.push((dst, src));
            }
            if let (Some(s), Loc::Reg(_)) = (shadow_slot.get(&d), dst) {
                shadow_writes.push((*s, dst));
            }
        }
        while !pending.is_empty() {
            if let Some(ix) = pending
                .iter()
                .position(|(d, _)| !pending.iter().any(|(_, s)| s == d))
            {
                let (dst, src) = pending.remove(ix);
                code.push(MInst::Copy { dst, src });
            } else {
                // Every pending destination is still read by another
                // pending copy: a cycle.  Park one value in a scratch
                // slot and retarget its readers.
                let (d0, _) = pending[0];
                let scratch = Loc::Slot(*next_slot);
                *next_slot += 1;
                code.push(MInst::Copy {
                    dst: scratch,
                    src: d0,
                });
                for (_, s) in pending.iter_mut() {
                    if *s == d0 {
                        *s = scratch;
                    }
                }
            }
        }
        for (slot, src) in shadow_writes {
            code.push(MInst::Copy {
                dst: Loc::Slot(slot),
                src,
            });
        }
        // Target pc patched once every block start is known.
        code.push(MInst::Jump {
            pc: usize::MAX,
            from,
            to,
        });
    };

    let emission_order = f.block_ids();
    for (bi, &b) in emission_order.iter().enumerate() {
        block_start.insert(b, code.len());
        for &i in &f.block(b).insts {
            let kind = &f.inst(i).kind;
            if kind.is_phi() || kind.is_dbg() {
                continue;
            }
            pc_of.insert(i, code.len());
            let dst = f.result_of(i).map(&loc);
            code.push(match kind {
                InstKind::Const(n) => MInst::Const {
                    dst: dst.expect("const has a result"),
                    value: *n,
                },
                InstKind::Binop(op, a, b2) => MInst::Bin {
                    op: *op,
                    dst: dst.expect("binop has a result"),
                    a: loc(*a),
                    b: loc(*b2),
                },
                InstKind::Neg(a) => MInst::Neg {
                    dst: dst.expect("neg has a result"),
                    src: loc(*a),
                },
                InstKind::Not(a) => MInst::Not {
                    dst: dst.expect("not has a result"),
                    src: loc(*a),
                },
                InstKind::Select {
                    cond,
                    then_v,
                    else_v,
                } => MInst::Select {
                    dst: dst.expect("select has a result"),
                    cond: loc(*cond),
                    then_v: loc(*then_v),
                    else_v: loc(*else_v),
                },
                InstKind::Alloca { size, .. } => MInst::Alloca {
                    dst: dst.expect("alloca has a result"),
                    size: *size,
                },
                InstKind::Load { addr } => MInst::Load {
                    dst: dst.expect("load has a result"),
                    addr: loc(*addr),
                },
                InstKind::Store { addr, value } => MInst::Store {
                    addr: loc(*addr),
                    value: loc(*value),
                },
                InstKind::Gep { base, index } => MInst::Gep {
                    dst: dst.expect("gep has a result"),
                    base: loc(*base),
                    index: loc(*index),
                },
                InstKind::Call { callee, args } => MInst::Call {
                    dst: dst.expect("call has a result"),
                    callee: callee.clone(),
                    args: args.iter().map(|a| loc(*a)).collect(),
                },
                InstKind::Phi(_) | InstKind::DbgValue { .. } => unreachable!("filtered above"),
            });
            // Shadow write-through: keep the value reachable for backward
            // tables after its register is reused.
            if let Some(d) = f.result_of(i) {
                if let (Some(s), Some(Loc::Reg(_))) = (shadow_slot.get(&d), loc_of.get(&d)) {
                    code.push(MInst::Copy {
                        dst: Loc::Slot(*s),
                        src: loc(d),
                    });
                }
            }
        }
        match &f.block(b).term {
            Terminator::Ret(v) => code.push(MInst::Ret { value: v.map(&loc) }),
            Terminator::Br(t) => emit_edge(&mut code, &mut next_slot, b, *t),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => {
                branch_patches.push((code.len(), (b, *then_bb), (b, *else_bb)));
                code.push(MInst::Branch {
                    cond: loc(*cond),
                    then_pc: usize::MAX,
                    else_pc: usize::MAX,
                });
                // Layout honoring: when one arm's target is the next block
                // in emission order (the hot successor under profile-guided
                // layout), emit that arm's edge sequence inline so its
                // trailing Jump lands on the very next pc — a fallthrough.
                let next = emission_order.get(bi + 1);
                if let Some(&n) = next.filter(|n| **n == *then_bb || **n == *else_bb) {
                    let at = code.len();
                    emit_edge(&mut code, &mut next_slot, b, n);
                    edge_start.insert((b, n), at);
                }
            }
        }
    }

    // Edge trampolines for the conditional edges (deduplicated: two
    // branches can share an edge only if they share source and target,
    // i.e. they are the same branch).
    for &(_, e1, e2) in &branch_patches {
        for e in [e1, e2] {
            edge_start.entry(e).or_insert_with(|| {
                let pc = code.len();
                emit_edge(&mut code, &mut next_slot, e.0, e.1);
                pc
            });
        }
    }

    // Patch the control-flow targets now that every label is placed.
    for (pc, then_edge, else_edge) in branch_patches {
        let (t, e) = (edge_start[&then_edge], edge_start[&else_edge]);
        let MInst::Branch {
            then_pc, else_pc, ..
        } = &mut code[pc]
        else {
            unreachable!("patch list points at a Branch");
        };
        *then_pc = t;
        *else_pc = e;
    }
    for inst in &mut code {
        if let MInst::Jump { pc, to, .. } = inst {
            *pc = block_start[to];
        }
    }

    // Location maps at every lowered point: live values at their homes,
    // shadowed values where the definition dominates the point.
    let dt = DomTree::compute(f, &cfg);
    let avail = Availability::new(f, &dt);
    let mut osr_maps: BTreeMap<InstId, LocationMap> = BTreeMap::new();
    for &i in pc_of.keys() {
        let live_set = live.live_before(f, i);
        let mut map = LocationMap::default();
        for v in &live_set {
            if let Some(l) = loc_of.get(v) {
                map.live.push((*v, *l));
            }
        }
        for (v, slot) in &shadow_slot {
            if !live_set.contains(v) && avail.available_before(*v, i) {
                map.shadow.push((*v, *slot));
            }
        }
        osr_maps.insert(i, map);
    }

    MachineArtifact {
        entry_pc: block_start[&f.entry],
        code,
        num_regs: alloc.num_regs,
        num_slots: next_slot as usize,
        pc_of,
        osr_maps,
        loc_of,
        shadow_slot,
        taken_jumps: Default::default(),
        fallthrough_jumps: Default::default(),
        call_dispatches: Default::default(),
    }
}
