//! Register allocation for the machine backend: liveness-derived
//! interference, greedy coloring onto the fixed register file, spill
//! slots for the overflow.
//!
//! Values are SSA values, so every value has exactly one definition and
//! the classic interference criterion applies directly: two values
//! interfere when one is live across the other's definition.  φ-results
//! are defined "on the edge" (the lowering turns them into parallel
//! copies at the end of each predecessor), so each block's φ-results are
//! treated as defined simultaneously at block entry: they interfere with
//! everything live into the block and with each other.  Parameters are
//! likewise defined simultaneously at function entry.
//!
//! Coloring is greedy in descending use count (hot values get registers
//! first), breaking ties by value id so allocation is deterministic.
//! Values that find no free register get a spill slot; spilled values'
//! definitions write the slot directly, so a slot is its own shadow.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{Function, ValueId};
use crate::liveness::Liveness;

use super::{Loc, NUM_REGS};

/// The coloring result: every allocatable value's home location, plus the
/// sizes the frame needs.
#[derive(Debug)]
pub struct Allocation {
    /// Home location per value.
    pub loc_of: BTreeMap<ValueId, Loc>,
    /// Registers used (≤ [`NUM_REGS`]).
    pub num_regs: usize,
    /// Spill slots used (the lowering appends shadow and scratch slots
    /// after these).
    pub num_slots: usize,
}

/// Colors every value of `f` (parameters and instruction results) onto
/// the register file, spilling the overflow.
pub fn allocate(f: &Function, live: &Liveness) -> Allocation {
    let mut interference: BTreeMap<ValueId, BTreeSet<ValueId>> = BTreeMap::new();
    let mut values: BTreeSet<ValueId> = (0..f.params.len()).map(|i| f.param_value(i)).collect();
    let edge = |interference: &mut BTreeMap<ValueId, BTreeSet<ValueId>>, a: ValueId, b: ValueId| {
        if a != b {
            interference.entry(a).or_default().insert(b);
            interference.entry(b).or_default().insert(a);
        }
    };

    for b in f.block_ids() {
        let mut live_now: BTreeSet<ValueId> = live.live_out(b).clone();
        let mut phi_results: Vec<ValueId> = Vec::new();
        for &i in f.block(b).insts.iter().rev() {
            let inst = f.inst(i);
            if inst.kind.is_dbg() {
                continue;
            }
            if inst.kind.is_phi() {
                if let Some(d) = f.result_of(i) {
                    phi_results.push(d);
                }
                continue;
            }
            if let Some(d) = f.result_of(i) {
                values.insert(d);
                for &w in &live_now {
                    edge(&mut interference, d, w);
                }
                live_now.remove(&d);
            }
            for u in inst.kind.operands() {
                live_now.insert(u);
            }
        }
        // φ-results: defined simultaneously at block entry — they clash
        // with everything live into the block and with each other (a swap
        // needs two homes even though the copies are parallel).
        for (k, &d) in phi_results.iter().enumerate() {
            values.insert(d);
            for &w in &live_now {
                edge(&mut interference, d, w);
            }
            for &d2 in &phi_results[k + 1..] {
                edge(&mut interference, d, d2);
            }
        }
        if b == f.entry {
            // Parameters: defined simultaneously at function entry.
            let params: Vec<ValueId> = (0..f.params.len()).map(|i| f.param_value(i)).collect();
            for (k, &p) in params.iter().enumerate() {
                for &w in &live_now {
                    edge(&mut interference, p, w);
                }
                for &p2 in &params[k + 1..] {
                    edge(&mut interference, p, p2);
                }
                for &d in &phi_results {
                    edge(&mut interference, p, d);
                }
            }
        }
    }

    // Greedy coloring, hot values first.
    let uses = f.compute_uses();
    let mut order: Vec<ValueId> = values.iter().copied().collect();
    order.sort_by_key(|v| (std::cmp::Reverse(uses.get(v).map_or(0, Vec::len)), v.0));

    let mut loc_of: BTreeMap<ValueId, Loc> = BTreeMap::new();
    let mut num_regs = 0usize;
    let mut num_slots = 0u32;
    let empty = BTreeSet::new();
    for v in order {
        let neighbors = interference.get(&v).unwrap_or(&empty);
        let mut taken = [false; NUM_REGS];
        for w in neighbors {
            if let Some(Loc::Reg(r)) = loc_of.get(w) {
                taken[*r as usize] = true;
            }
        }
        match taken.iter().position(|t| !t) {
            Some(r) => {
                num_regs = num_regs.max(r + 1);
                loc_of.insert(v, Loc::Reg(r as u8));
            }
            None => {
                loc_of.insert(v, Loc::Slot(num_slots));
                num_slots += 1;
            }
        }
    }
    Allocation {
        loc_of,
        num_regs,
        num_slots: num_slots as usize,
    }
}
