//! Jump simplification: collapse degenerate conditional branches and
//! thread empty forwarding blocks (the `simplify_jumps` cleanup of a
//! layout-oriented backend), OSR-aware.
//!
//! Three rewrites, iterated to a fix-point:
//!
//! 1. a conditional branch whose arms coincide becomes an unconditional
//!    branch;
//! 2. a conditional branch on a constant becomes an unconditional branch
//!    to the taken arm (the dead edge's φ-incomings are dropped, SCCP's
//!    idiom);
//! 3. a completely empty block `E` (no instructions, no φs) that merely
//!    forwards `Br(T)` is threaded past: every predecessor that reaches
//!    `E` *unconditionally* branches straight to `T`, with `T`'s φs
//!    gaining the predecessor's incoming.  Conditional predecessors are
//!    deliberately left routing through `E` — the conditional's block id
//!    and its immediate successor ids key the edge profiles, and
//!    [`tinyvm`-level observers](crate::Function) resolve empty chains
//!    themselves.  `E` is removed once no predecessor remains.
//!
//! No instruction is created, deleted, or moved, so no §5.1 action is
//! recorded: the baseline φ-resolution chains used by the landing-site
//! logic scan the *whole* baseline `Br` chain and therefore resolve edges
//! through threaded-away blocks to the surviving predecessor.

use crate::ir::{BlockId, Function, InstKind, Terminator, ValueDef};
use crate::passes::Pass;
use crate::SsaMapper;

/// Threads trivial forwarding blocks and collapses constant branches.
#[derive(Clone, Copy, Default, Debug)]
pub struct SimplifyJumps;

impl Pass for SimplifyJumps {
    fn name(&self) -> &'static str {
        "simplify-jumps"
    }

    fn hook_sites(&self) -> usize {
        0 // terminator and φ-incoming rewrites only, never a §5.1 action
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let _ = cm;
        let mut changed = false;
        loop {
            let mut round = false;
            round |= collapse_degenerate_branches(f);
            round |= thread_empty_blocks(f);
            if !round {
                break;
            }
            changed = true;
        }
        changed
    }
}

/// Rewrites `CondBr` terminators with equal arms or constant conditions
/// into plain `Br`s.
fn collapse_degenerate_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for b in f.block_ids() {
        let Terminator::CondBr {
            cond,
            then_bb,
            else_bb,
        } = f.block(b).term.clone()
        else {
            continue;
        };
        if then_bb == else_bb {
            f.block_mut(b).term = Terminator::Br(then_bb);
            changed = true;
            continue;
        }
        let constant = match f.value_def(cond) {
            ValueDef::Param(_) => None,
            ValueDef::Inst(i) => match f.inst(i).kind {
                InstKind::Const(n) => Some(n),
                _ => None,
            },
        };
        if let Some(n) = constant {
            let (taken, dead) = if n != 0 {
                (then_bb, else_bb)
            } else {
                (else_bb, then_bb)
            };
            f.block_mut(b).term = Terminator::Br(taken);
            remove_phi_incoming(f, dead, b);
            changed = true;
        }
    }
    changed
}

/// Threads `P --Br--> E --Br--> T` past the empty `E` for unconditional
/// predecessors `P`, removing `E` once unreferenced.
fn thread_empty_blocks(f: &mut Function) -> bool {
    let mut changed = false;
    for e in f.block_ids() {
        if e == f.entry || !f.block(e).insts.is_empty() {
            continue;
        }
        let Terminator::Br(t) = f.block(e).term else {
            continue;
        };
        if t == e {
            continue;
        }
        // Predecessors of `e`, split by how they reach it.
        let mut br_preds: Vec<BlockId> = Vec::new();
        let mut other_preds = false;
        for p in f.block_ids() {
            if p == e {
                continue;
            }
            match f.block(p).term {
                Terminator::Br(x) if x == e => {
                    if p != t {
                        br_preds.push(p);
                    } else {
                        other_preds = true; // P == T would create a self-edge
                    }
                }
                ref term if term.successors().contains(&e) => other_preds = true,
                _ => {}
            }
        }
        if br_preds.is_empty() {
            continue;
        }
        // φs in T gain one incoming per threaded predecessor, mirroring
        // the value that flowed along E → T (available at P's exit, since
        // E computes nothing).
        let t_insts = f.block(t).insts.clone();
        for p in &br_preds {
            for &i in &t_insts {
                if let InstKind::Phi(incs) = &mut f.inst_mut(i).kind {
                    if let Some(v) = incs.iter().find_map(|(pr, v)| (*pr == e).then_some(*v)) {
                        incs.push((*p, v));
                    }
                }
            }
            f.block_mut(*p).term.retarget(e, t);
        }
        if !other_preds {
            remove_phi_incoming(f, t, e);
            f.remove_block(e);
        }
        changed = true;
    }
    changed
}

/// Drops the `(pred → block)` incoming entry from every φ in `block`.
fn remove_phi_incoming(f: &mut Function, block: BlockId, pred: BlockId) {
    if !f.block_exists(block) {
        return;
    }
    let insts = f.block(block).insts.clone();
    for i in insts {
        if let InstKind::Phi(incs) = f.inst(i).kind.clone() {
            let filtered: Vec<_> = incs.into_iter().filter(|(p, _)| *p != pred).collect();
            f.inst_mut(i).kind = InstKind::Phi(filtered);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    #[test]
    fn threads_empty_forwarder_and_patches_phis() {
        // p --Br--> e(empty) --Br--> t(φ); q --Br--> t directly.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let p = b.create_block("p");
        let q = b.create_block("q");
        let e = b.create_block("e");
        let t = b.create_block("t");
        b.cond_br(c, p, q);
        b.switch_to(p);
        let vp = b.const_i64(1);
        b.br(e);
        b.switch_to(q);
        let vq = b.const_i64(2);
        b.br(t);
        b.switch_to(e);
        b.br(t);
        b.switch_to(t);
        let ph = b.phi(&[(e, vp), (q, vq)]);
        b.ret(Some(ph));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(SimplifyJumps.run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert!(!f.block_exists(e), "the forwarder is gone");
        let m = Module::new();
        for c in [0, 1] {
            assert_eq!(
                run_function(&f, &[Val::Int(c)], &m, 1000).unwrap(),
                run_function(&f0, &[Val::Int(c)], &m, 1000).unwrap(),
            );
        }
    }

    #[test]
    fn conditional_predecessors_keep_routing_through_the_forwarder() {
        // entry cond_br → e / q; e is empty and forwards to t.  The
        // conditional edge must keep its profiled successor id `e`.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let e = b.create_block("e");
        let q = b.create_block("q");
        let t = b.create_block("t");
        b.cond_br(c, e, q);
        b.switch_to(e);
        b.br(t);
        b.switch_to(q);
        b.br(t);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        let mut f = b.finish();
        let entry = f.entry;
        let mut cm = SsaMapper::new();
        SimplifyJumps.run(&mut f, &mut cm);
        verify(&f).unwrap();
        assert!(f.block_exists(e), "conditional edges are not threaded");
        assert!(f.block(entry).term.successors().contains(&e));
    }

    #[test]
    fn collapses_equal_arms_and_constant_conditions() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let one = b.const_i64(1);
        let t = b.create_block("t");
        let dead = b.create_block("dead");
        b.cond_br(one, t, dead);
        b.switch_to(t);
        let r = b.binop(BinOp::Add, x, one);
        b.ret(Some(r));
        b.switch_to(dead);
        b.ret(Some(x));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(SimplifyJumps.run(&mut f, &mut cm));
        verify(&f).unwrap();
        let entry = f.entry;
        assert!(matches!(f.block(entry).term, Terminator::Br(b) if b == t));
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(5)], &m, 1000).unwrap(),
            Some(Val::Int(6))
        );
    }
}
