//! Loop canonicalization (the `LC` of Table 1): ensure every natural loop
//! has a dedicated preheader.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{Function, InstKind, Terminator};
use crate::loops::LoopInfo;
use crate::passes::Pass;
use crate::SsaMapper;

/// Inserts preheader blocks for loops lacking one, rewriting header
/// φ-nodes accordingly.  When the header has several out-of-loop
/// predecessors, their φ incomings are merged through a new φ in the
/// preheader (recorded as an `add` action).
#[derive(Clone, Copy, Default, Debug)]
pub struct LoopSimplify;

impl Pass for LoopSimplify {
    fn name(&self) -> &'static str {
        "LC"
    }

    fn hook_sites(&self) -> usize {
        1 // add (merged φ in the new preheader)
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut changed = false;
        loop {
            let cfg = Cfg::compute(f);
            let dt = DomTree::compute(f, &cfg);
            let li = LoopInfo::compute(f, &cfg, &dt);
            let Some(l) = li.loops.iter().find(|l| l.preheader.is_none()) else {
                return changed;
            };
            let header = l.header;
            let outside: Vec<_> = cfg
                .preds_of(header)
                .iter()
                .copied()
                .filter(|p| !l.blocks.contains(p))
                .collect();
            let pre = f.create_block(&format!("{}.preheader", f.block(header).name));
            // Retarget every outside predecessor to the preheader.
            for &p in &outside {
                f.block_mut(p).term.retarget(header, pre);
            }
            f.block_mut(pre).term = Terminator::Br(header);
            // Rewrite header φs: outside incomings route through the
            // preheader (merged with a new φ if there are several).
            let header_insts = f.block(header).insts.clone();
            for i in header_insts {
                let InstKind::Phi(incs) = f.inst(i).kind.clone() else {
                    break;
                };
                let (out_incs, in_incs): (Vec<_>, Vec<_>) =
                    incs.into_iter().partition(|(p, _)| outside.contains(p));
                let mut new_incs = in_incs;
                match out_incs.as_slice() {
                    [] => {}
                    [(_, v)] => new_incs.push((pre, *v)),
                    many => {
                        let merged = f.create_inst(
                            InstKind::Phi(many.iter().map(|(p, v)| (*p, *v)).collect()),
                            None,
                        );
                        f.insert_inst(pre, 0, merged);
                        cm.add(merged);
                        let mv = f.result_of(merged).expect("φ has a result");
                        new_incs.push((pre, mv));
                    }
                }
                f.inst_mut(i).kind = InstKind::Phi(new_incs);
            }
            changed = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    /// A loop whose header is reachable from two outside blocks (no
    /// preheader) and from its latch.
    fn rotated_loop() -> Function {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64), ("n", Ty::I64)]);
        let c = b.param(0);
        let n = b.param(1);
        let zero = b.const_i64(0);
        let ten = b.const_i64(10);
        let one = b.const_i64(1);
        let left = b.create_block("left");
        let right = b.create_block("right");
        let header = b.create_block("header");
        let exit = b.create_block("exit");
        b.cond_br(c, left, right);
        b.switch_to(left);
        b.br(header);
        b.switch_to(right);
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(left, zero), (right, ten)]);
        let i2 = b.binop(BinOp::Add, i, one);
        let cmp = b.binop(BinOp::Lt, i2, n);
        b.cond_br(cmp, header, exit);
        b.switch_to(exit);
        b.ret(Some(i2));
        let mut f = b.finish();
        let phi = f.block(header).insts[0];
        f.inst_mut(phi).kind = InstKind::Phi(vec![(left, zero), (right, ten), (header, i2)]);
        f
    }

    #[test]
    fn inserts_preheader_and_merges_phis() {
        let f0 = rotated_loop();
        verify(&f0).unwrap();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(LoopSimplify.run(&mut f, &mut cm));
        verify(&f).unwrap();
        // A merged φ was added in the preheader.
        assert_eq!(cm.counts().add, 1);
        // Loop now has a preheader.
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dt);
        assert!(li.loops.iter().all(|l| l.preheader.is_some()));
        let m = Module::new();
        for (c, n) in [(0, 15), (1, 5), (1, 0), (0, 0)] {
            assert_eq!(
                run_function(&f, &[Val::Int(c), Val::Int(n)], &m, 100_000).unwrap(),
                run_function(&f0, &[Val::Int(c), Val::Int(n)], &m, 100_000).unwrap(),
                "c={c} n={n}"
            );
        }
    }

    #[test]
    fn canonical_loop_untouched() {
        let mut b = FunctionBuilder::new("f", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        let phi = f.block(header).insts[0];
        f.inst_mut(phi).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        let mut cm = SsaMapper::new();
        assert!(!LoopSimplify.run(&mut f, &mut cm));
        assert_eq!(cm.counts().total(), 0);
    }
}
