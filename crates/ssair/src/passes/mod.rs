//! OSR-aware optimization passes (§5.4).
//!
//! Each pass implements [`Pass`] and records every IR manipulation it
//! performs as one of the five primitive actions of §5.1 through the shared
//! [`SsaMapper`] — mirroring how the paper instruments the corresponding
//! LLVM passes (Table 1, Figure 6).  Transparent debug pseudo-instructions
//! ([`crate::InstKind::DbgValue`]) are maintained but never recorded as
//! actions, matching LLVM's treatment of `llvm.dbg.value`.
//!
//! [`Pipeline::standard`] reproduces the §5.4 pass mix: loop
//! canonicalization (LC), LCSSA construction, LICM, CSE, constant
//! propagation, SCCP, ADCE and code sinking.

mod adce;
mod constprop;
mod cse;
mod inline;
mod layout;
mod lcssa;
mod licm;
mod loopsimplify;
mod merge_blocks;
mod sccp;
mod seed;
mod simplify_jumps;
mod sink;

pub use adce::Adce;
pub use constprop::{const_value, ConstProp};
pub use cse::Cse;
pub use inline::{InlineCalls, InlineOutcome, InlineRegion, InlineSite};
pub use layout::{BlockFrequencies, LayoutBlocks};
pub use lcssa::Lcssa;
pub use licm::Licm;
pub use loopsimplify::LoopSimplify;
pub use merge_blocks::MergeBlocks;
pub use sccp::Sccp;
pub use seed::SeedValues;
pub use simplify_jumps::SimplifyJumps;
pub use sink::Sink;

use osr::ActionCounts;

use crate::ir::Function;
use crate::SsaMapper;

/// An OSR-aware transformation pass.
pub trait Pass {
    /// Pass name as it appears in evaluation tables.
    fn name(&self) -> &'static str;

    /// Runs the pass on `f`, recording primitive actions in `cm`.
    ///
    /// Returns `true` if the function changed.
    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool;

    /// Number of instrumentation sites (CodeMapper hook calls) in this
    /// pass's implementation — our analogue of the "actions" row of
    /// Table 1.
    fn hook_sites(&self) -> usize;
}

/// Per-pass statistics from a pipeline run.
#[derive(Clone, Debug)]
pub struct PassStats {
    /// Pass name.
    pub name: &'static str,
    /// Whether the pass changed the function.
    pub changed: bool,
    /// Actions recorded by this pass alone.
    pub actions: ActionCounts,
}

/// A stable, hashable name for each shipped pass — what a pipeline *spec*
/// (e.g. a tiered engine's cache key) stores instead of the trait objects
/// a built [`Pipeline`] holds.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PassId {
    /// Loop canonicalization (LC).
    LoopSimplify,
    /// LCSSA construction.
    Lcssa,
    /// Loop-invariant code motion (hoisting).
    Licm,
    /// Common-subexpression elimination.
    Cse,
    /// Constant propagation.
    ConstProp,
    /// Sparse conditional constant propagation.
    Sccp,
    /// Aggressive dead-code elimination.
    Adce,
    /// Code sinking.
    Sink,
    /// Straight-line block merging.
    MergeBlocks,
    /// Jump threading / degenerate-branch collapsing.
    SimplifyJumps,
}

impl PassId {
    /// Instantiates the pass this id names.
    pub fn build(self) -> Box<dyn Pass> {
        self.build_keeping(&Default::default())
    }

    /// Instantiates the pass with a §5.2 liveness-extension keep-set: the
    /// listed values survive dead-code elimination and sinking so that
    /// deoptimization can read them from the optimized frame.  Passes
    /// without a keep-set knob ignore it.
    pub fn build_keeping(self, keep: &std::collections::BTreeSet<crate::ValueId>) -> Box<dyn Pass> {
        match self {
            PassId::LoopSimplify => Box::new(LoopSimplify),
            PassId::Lcssa => Box::new(Lcssa),
            PassId::Licm => Box::new(Licm),
            PassId::Cse => Box::new(Cse),
            PassId::ConstProp => Box::new(ConstProp),
            PassId::Sccp => Box::new(Sccp),
            PassId::Adce => Box::new(Adce::keeping(keep.clone())),
            PassId::Sink => Box::new(Sink::keeping(keep.clone())),
            PassId::MergeBlocks => Box::new(MergeBlocks),
            PassId::SimplifyJumps => Box::new(SimplifyJumps),
        }
    }

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            PassId::LoopSimplify => "loop-simplify",
            PassId::Lcssa => "lcssa",
            PassId::Licm => "licm",
            PassId::Cse => "cse",
            PassId::ConstProp => "constprop",
            PassId::Sccp => "sccp",
            PassId::Adce => "adce",
            PassId::Sink => "sink",
            PassId::MergeBlocks => "merge-blocks",
            PassId::SimplifyJumps => "simplify-jumps",
        }
    }
}

/// A sequence of passes sharing one [`SsaMapper`].
pub struct Pipeline {
    passes: Vec<Box<dyn Pass>>,
    /// Verify the function after each pass (on by default; the cost is
    /// negligible at our scale and it catches pass bugs early).
    pub verify_between: bool,
}

impl Pipeline {
    /// Builds a pipeline from the given passes.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Self {
        Pipeline {
            passes,
            verify_between: true,
        }
    }

    /// The §5.4 pass mix.
    pub fn standard() -> Self {
        Pipeline::standard_keeping(Default::default())
    }

    /// The §5.4 pass mix with a liveness-extension keep-set: the listed
    /// values survive dead-code elimination so that deoptimization can
    /// read them from the optimized frame (§5.2).
    pub fn standard_keeping(keep: std::collections::BTreeSet<crate::ValueId>) -> Self {
        Pipeline::new(vec![
            Box::new(LoopSimplify),
            Box::new(Lcssa),
            Box::new(Licm),
            Box::new(Cse),
            Box::new(ConstProp),
            Box::new(Sccp),
            Box::new(Adce::keeping(keep.clone())),
            Box::new(Sink::keeping(keep)),
            Box::new(SimplifyJumps),
            Box::new(MergeBlocks),
        ])
    }

    /// The aggressive mix: the §5.4 standard passes followed by a second
    /// SCCP + sinking round over the already-hoisted, already-CSE'd code —
    /// the O3 rung of a tier ladder.  The extra round folds branches the
    /// first SCCP could not see until CSE/LICM rewrote their operands and
    /// sinks the survivors, so the artifact is strictly harder to OSR out
    /// of (more moved/deleted state) — exactly the trade a top rung makes.
    pub fn aggressive() -> Self {
        Pipeline::aggressive_keeping(&Default::default())
    }

    /// The aggressive mix with a §5.2 liveness-extension keep-set.
    pub fn aggressive_keeping(keep: &std::collections::BTreeSet<crate::ValueId>) -> Self {
        let mut p = Pipeline::standard_keeping(keep.clone());
        p.passes.push(Box::new(Sccp));
        p.passes.push(Box::new(Adce::keeping(keep.clone())));
        p.passes.push(Box::new(Sink::keeping(keep.clone())));
        // Re-run the layout cleanups over whatever the second fold round
        // exposed (folded branches leave degenerate jumps behind).
        p.passes.push(Box::new(SimplifyJumps));
        p.passes.push(Box::new(MergeBlocks));
        p
    }

    /// A light CSE + DCE-style mix (no loop restructuring): the O1 rung of
    /// a tier ladder, cheap to run and cheap to OSR out of.
    pub fn light() -> Self {
        Pipeline::light_keeping(&Default::default())
    }

    /// The light mix with a §5.2 liveness-extension keep-set.
    pub fn light_keeping(keep: &std::collections::BTreeSet<crate::ValueId>) -> Self {
        Pipeline::from_ids_keeping(&[PassId::Cse, PassId::ConstProp, PassId::Adce], keep)
    }

    /// Builds a pipeline from a list of pass ids (the custom-pass-list
    /// constructor pipeline specs use).
    pub fn from_ids(ids: &[PassId]) -> Self {
        Pipeline::from_ids_keeping(ids, &Default::default())
    }

    /// Like [`Pipeline::from_ids`], with a §5.2 liveness-extension
    /// keep-set threaded into every pass that honours one (ADCE, Sink):
    /// how a tiered engine recompiles an arbitrary pipeline spec when a
    /// deoptimization entry needs values the plain mix optimizes away.
    pub fn from_ids_keeping(
        ids: &[PassId],
        keep: &std::collections::BTreeSet<crate::ValueId>,
    ) -> Self {
        Pipeline::new(ids.iter().map(|id| id.build_keeping(keep)).collect())
    }

    /// The passes in execution order.
    pub fn passes(&self) -> &[Box<dyn Pass>] {
        &self.passes
    }

    /// Returns the pipeline with `pass` prepended — how a value-speculating
    /// engine runs [`SeedValues`] ahead of a rung's normal mix, so the
    /// seeded constants feed every downstream fold.
    #[must_use]
    pub fn prepended(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.insert(0, pass);
        self
    }

    /// Returns the pipeline with `pass` appended — how a profile-guided
    /// engine runs [`LayoutBlocks`] after a rung's normal mix, so the
    /// emission order is computed over the final CFG.
    #[must_use]
    pub fn appended(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Clones `base` (preserving every id) and optimizes the clone,
    /// returning the optimized function, the accumulated code mapper, and
    /// per-pass statistics — the `apply` of §4.2 at the SSA level.
    ///
    /// # Panics
    ///
    /// Panics if a pass breaks the IR invariants while `verify_between` is
    /// set (this indicates a pass bug, never a user error).
    pub fn optimize(&self, base: &Function) -> (Function, SsaMapper, Vec<PassStats>) {
        let mut f = base.clone();
        let mut cm = SsaMapper::new();
        let mut stats = Vec::new();
        for p in &self.passes {
            let before = cm.counts();
            let changed = p.run(&mut f, &mut cm);
            let after = cm.counts();
            stats.push(PassStats {
                name: p.name(),
                changed,
                actions: ActionCounts {
                    add: after.add - before.add,
                    delete: after.delete - before.delete,
                    hoist: after.hoist - before.hoist,
                    sink: after.sink - before.sink,
                    replace: after.replace - before.replace,
                },
            });
            if self.verify_between {
                if let Err(e) = crate::verify(&f) {
                    panic!("pass {} broke the IR: {e}\n{f}", p.name());
                }
            }
        }
        (f, cm, stats)
    }
}

/// Shared pass helper: delete a (non-dbg) instruction and record the
/// action; dbg pseudo-instructions are removed silently.
pub(crate) fn delete_inst(f: &mut Function, cm: &mut SsaMapper, i: crate::InstId) {
    if !f.inst(i).kind.is_dbg() {
        cm.delete(i);
    }
    f.remove_inst(i);
}

/// Shared pass helper: replace all uses of `old` with `new`, recording the
/// action (cf. `OSR_CM->replaceAllUsesWith` in Figure 6).
pub(crate) fn replace_all_uses(
    f: &mut Function,
    cm: &mut SsaMapper,
    old: crate::ValueId,
    new: crate::ValueId,
) {
    cm.replace(old, new);
    f.replace_all_uses(old, new);
}

/// Shared pass helper: materialize an integer constant at the top of the
/// entry block (constants dominate everything there), recording an `add`.
pub(crate) fn materialize_const(f: &mut Function, cm: &mut SsaMapper, n: i64) -> crate::ValueId {
    let entry = f.entry;
    let i = f.create_inst(crate::InstKind::Const(n), None);
    f.insert_inst(entry, 0, i);
    cm.add(i);
    f.result_of(i).expect("const has a result")
}
