//! Dominator-scoped common subexpression elimination (the `CSE` of
//! Table 1), modelled on LLVM's EarlyCSE — including the
//! available-load table with generation counters shown in Figure 6.

use std::collections::BTreeMap;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BinOp, Function, InstKind, ValueId};
use crate::passes::{delete_inst, replace_all_uses, Pass};
use crate::SsaMapper;

/// Value-numbering key for pure instructions.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Key {
    Const(i64),
    Binop(BinOp, ValueId, ValueId),
    Neg(ValueId),
    Not(ValueId),
    Select(ValueId, ValueId, ValueId),
    Gep(ValueId, ValueId),
}

fn key_of(kind: &InstKind) -> Option<Key> {
    Some(match kind {
        InstKind::Const(n) => Key::Const(*n),
        InstKind::Binop(op, a, b) => {
            let (a, b) = if op.is_commutative() && b < a {
                (*b, *a)
            } else {
                (*a, *b)
            };
            Key::Binop(*op, a, b)
        }
        InstKind::Neg(a) => Key::Neg(*a),
        InstKind::Not(a) => Key::Not(*a),
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => Key::Select(*cond, *then_v, *else_v),
        InstKind::Gep { base, index } => Key::Gep(*base, *index),
        _ => return None,
    })
}

/// Scoped CSE over the dominator tree with an available-load table.
///
/// Loads are reused only when produced in the same memory *generation*;
/// stores make the stored value available for their own address and bump
/// the generation (conservative no-alias-information behaviour); calls
/// invalidate everything.
#[derive(Clone, Copy, Default, Debug)]
pub struct Cse;

impl Pass for Cse {
    fn name(&self) -> &'static str {
        "CSE"
    }

    fn hook_sites(&self) -> usize {
        4 // expression replace+delete, load replace+delete (cf. Figure 6)
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let mut ctx = Ctx {
            changed: false,
            generation: 0,
        };
        let avail_values: BTreeMap<Key, ValueId> = BTreeMap::new();
        let avail_loads: BTreeMap<ValueId, (ValueId, u64)> = BTreeMap::new();
        walk(
            f,
            cm,
            &cfg,
            &dt,
            f.entry,
            avail_values,
            avail_loads,
            &mut ctx,
        );
        ctx.changed
    }
}

struct Ctx {
    changed: bool,
    generation: u64,
}

/// DFS over the dominator tree; the scoped tables are passed by value so
/// sibling subtrees do not see each other's entries.
#[allow(clippy::too_many_arguments)]
fn walk(
    f: &mut Function,
    cm: &mut SsaMapper,
    cfg: &Cfg,
    dt: &DomTree,
    block: crate::BlockId,
    mut avail_values: BTreeMap<Key, ValueId>,
    mut avail_loads: BTreeMap<ValueId, (ValueId, u64)>,
    ctx: &mut Ctx,
) {
    // A block with several CFG predecessors (a merge point or loop header)
    // can be reached through paths the dominator-tree walk has not visited
    // yet — e.g. the join of a diamond whose storing branch is a *sibling*
    // subtree, or a loop header re-entered after stores in the loop body.
    // Like LLVM's EarlyCSE, start a fresh memory generation so no load is
    // forwarded across those unseen paths (the SSA value table stays valid:
    // dominance guarantees its entries).
    if cfg.preds_of(block).len() >= 2 {
        ctx.generation += 1;
    }
    let insts = f.block(block).insts.clone();
    for i in insts {
        let kind = f.inst(i).kind.clone();
        match &kind {
            InstKind::Load { addr } => {
                // Check for an available load/store value from the right
                // generation (Figure 6).
                if let Some((v, generation)) = avail_loads.get(addr) {
                    if *generation == ctx.generation {
                        let old = f.result_of(i).expect("load has a result");
                        let v = *v;
                        replace_all_uses(f, cm, old, v);
                        delete_inst(f, cm, i);
                        ctx.changed = true;
                        continue;
                    }
                }
                let r = f.result_of(i).expect("load has a result");
                avail_loads.insert(*addr, (r, ctx.generation));
            }
            InstKind::Store { addr, value } => {
                // New generation: conservatively clobber other addresses,
                // but remember the stored value for this one.
                ctx.generation += 1;
                avail_loads.insert(*addr, (*value, ctx.generation));
            }
            InstKind::Call { .. } => {
                ctx.generation += 1;
                avail_loads.clear();
            }
            InstKind::Phi(_) | InstKind::DbgValue { .. } | InstKind::Alloca { .. } => {}
            pure => {
                if let Some(key) = key_of(pure) {
                    if let Some(&v) = avail_values.get(&key) {
                        let old = f.result_of(i).expect("pure insts have results");
                        replace_all_uses(f, cm, old, v);
                        delete_inst(f, cm, i);
                        ctx.changed = true;
                        continue;
                    }
                    if let Some(r) = f.result_of(i) {
                        avail_values.insert(key, r);
                    }
                }
            }
        }
    }
    let children = dt.children.get(&block).cloned().unwrap_or_default();
    for c in children {
        walk(
            f,
            cm,
            cfg,
            dt,
            c,
            avail_values.clone(),
            avail_loads.clone(),
            ctx,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, FunctionBuilder, Module, Ty};

    #[test]
    fn dedups_pure_expression() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let a = b.binop(BinOp::Mul, x, x);
        let c = b.binop(BinOp::Mul, x, x); // duplicate
        let r = b.binop(BinOp::Add, a, c);
        b.ret(Some(r));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(Cse.run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert_eq!(cm.counts().delete, 1);
        assert_eq!(cm.counts().replace, 1);
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(3)], &m, 100).unwrap(),
            Some(Val::Int(18))
        );
    }

    #[test]
    fn commutative_normalization() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64), ("y", Ty::I64)]);
        let x = b.param(0);
        let y = b.param(1);
        let a = b.binop(BinOp::Add, x, y);
        let c = b.binop(BinOp::Add, y, x); // same value, swapped operands
        let r = b.binop(BinOp::Mul, a, c);
        b.ret(Some(r));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(Cse.run(&mut f, &mut cm));
        assert_eq!(cm.counts().delete, 1);
    }

    #[test]
    fn load_forwarded_from_store_same_generation() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let buf = b.alloca(1);
        b.store(buf, x);
        let v = b.load(buf); // forwardable from the store
        b.ret(Some(v));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(Cse.run(&mut f, &mut cm));
        verify(&f).unwrap();
        // The load is gone; the returned value is x.
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(7)], &m, 100).unwrap(),
            Some(Val::Int(7))
        );
        assert_eq!(cm.counts().delete, 1);
    }

    #[test]
    fn intervening_store_blocks_load_reuse() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let buf = b.alloca(2);
        let one = b.const_i64(1);
        let p0 = b.gep(buf, one);
        let l1 = b.load(p0);
        b.store(buf, x); // different address, but no alias info → clobber
        let l2 = b.load(p0);
        let r = b.binop(BinOp::Add, l1, l2);
        b.ret(Some(r));
        let mut f = b.finish();
        let before = f.live_inst_count();
        let mut cm = SsaMapper::new();
        Cse.run(&mut f, &mut cm);
        // Neither load removed (store bumped the generation).
        let loads = f
            .inst_iter()
            .filter(|(_, i)| matches!(f.inst(*i).kind, InstKind::Load { .. }))
            .count();
        assert_eq!(loads, 2);
        assert!(f.live_inst_count() >= before - 1);
    }

    #[test]
    fn no_load_forwarding_into_merge_blocks() {
        // Regression test: the join of a diamond is a dominator-tree child
        // of the block before the branch, and may be walked before the
        // storing branch.  Forwarding the pre-branch load into the join
        // would read stale memory whenever the storing path runs.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64), ("x", Ty::I64)]);
        let c = b.param(0);
        let x = b.param(1);
        let buf = b.alloca(1);
        b.store(buf, x);
        let l1 = b.load(buf);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        let x1 = b.binop(BinOp::Add, l1, one);
        b.store(buf, x1);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let l2 = b.load(buf); // must NOT be forwarded from l1
        b.ret(Some(l2));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        Cse.run(&mut f, &mut cm);
        verify(&f).unwrap();
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(1), Val::Int(7)], &m, 100).unwrap(),
            Some(Val::Int(8)),
            "the taken store must be observed at the join"
        );
        assert_eq!(
            run_function(&f, &[Val::Int(0), Val::Int(7)], &m, 100).unwrap(),
            Some(Val::Int(7))
        );
    }

    #[test]
    fn no_cse_across_sibling_branches() {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64), ("x", Ty::I64)]);
        let c = b.param(0);
        let x = b.param(1);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.cond_br(c, t, e);
        b.switch_to(t);
        let a1 = b.binop(BinOp::Mul, x, x);
        b.br(j);
        b.switch_to(e);
        let a2 = b.binop(BinOp::Mul, x, x); // same expr, sibling branch
        b.br(j);
        b.switch_to(j);
        let ph = b.phi(&[(t, a1), (e, a2)]);
        b.ret(Some(ph));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        // Sibling scopes do not share tables: nothing to CSE.
        assert!(!Cse.run(&mut f, &mut cm));
    }
}
