//! Profile-guided block layout (the `FrequentBlock`-style frequency
//! classes of a layout-oriented backend, reduced to a hot-successor
//! relation).
//!
//! [`BlockFrequencies`] condenses raw per-edge execution counts — as
//! collected by a runtime profile table against *baseline* block ids,
//! which every optimized clone preserves — into "the successor this block
//! most often transfers to".  [`LayoutBlocks`] consumes the summary and
//! installs an explicit emission order on the function
//! ([`Function::set_layout`]): greedy traces from the entry that follow
//! hot successors, so machine lowering places each hot successor
//! immediately after its branch and the dispatch loop's jump becomes a
//! pc-increment.
//!
//! Layout is a pure code-placement property: no instruction is touched,
//! no §5.1 action recorded, and `LocationMap`s/entry tables are keyed by
//! instruction id, so OSR mappings are unaffected by construction.

use std::collections::{BTreeMap, BTreeSet};

use crate::ir::{BlockId, Function};
use crate::passes::Pass;
use crate::SsaMapper;

/// A per-function summary of observed edge frequencies: for each branch
/// block, the successor taken most often.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct BlockFrequencies {
    hot: BTreeMap<BlockId, BlockId>,
}

impl BlockFrequencies {
    /// Summarizes raw `from-block → [(successor, count)]` totals.
    ///
    /// A block contributes a hot successor only when its total count
    /// reaches `min_samples`; ties break to the lowest successor id (the
    /// profile-table convention).
    pub fn from_edge_counts(
        counts: &BTreeMap<BlockId, Vec<(BlockId, u64)>>,
        min_samples: u64,
    ) -> Self {
        let mut hot = BTreeMap::new();
        for (from, outs) in counts {
            let mut per_succ: BTreeMap<BlockId, u64> = BTreeMap::new();
            for (to, n) in outs {
                *per_succ.entry(*to).or_default() += n;
            }
            let total: u64 = per_succ.values().sum();
            if total < min_samples {
                continue;
            }
            // BTreeMap iteration is ascending, so `>` keeps the lowest id
            // on ties.
            let mut best: Option<(BlockId, u64)> = None;
            for (to, n) in per_succ {
                if best.map_or(true, |(_, m)| n > m) {
                    best = Some((to, n));
                }
            }
            if let Some((to, _)) = best {
                hot.insert(*from, to);
            }
        }
        BlockFrequencies { hot }
    }

    /// The hot successor of `b`, if the profile resolved one.
    pub fn hot_successor(&self, b: BlockId) -> Option<BlockId> {
        self.hot.get(&b).copied()
    }

    /// Whether the summary carries no information (layout is a no-op).
    pub fn is_empty(&self) -> bool {
        self.hot.is_empty()
    }

    /// A stable digest of the summary — what a compiled artifact records
    /// so "compiled under which layout profile?" is answerable.
    pub fn digest(&self) -> Vec<(BlockId, BlockId)> {
        self.hot.iter().map(|(a, b)| (*a, *b)).collect()
    }
}

/// Reorders blocks hot-fallthrough-first according to a
/// [`BlockFrequencies`] summary.
#[derive(Clone, Default, Debug)]
pub struct LayoutBlocks {
    freqs: BlockFrequencies,
}

impl LayoutBlocks {
    /// Builds the pass around a profile summary.
    pub fn new(freqs: BlockFrequencies) -> Self {
        LayoutBlocks { freqs }
    }
}

impl Pass for LayoutBlocks {
    fn name(&self) -> &'static str {
        "layout-blocks"
    }

    fn hook_sites(&self) -> usize {
        0 // pure code placement, never a §5.1 action
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let _ = cm;
        if self.freqs.is_empty() {
            return false;
        }
        let before = f.block_ids();
        let order = trace_order(f, &self.freqs);
        f.set_layout(order);
        f.block_ids() != before
    }
}

/// Greedy trace formation: start at the entry, repeatedly append the hot
/// successor (falling back to an unconditional successor to straighten
/// unprofiled chains); seed further traces from the remaining blocks in
/// creation order.
fn trace_order(f: &Function, freqs: &BlockFrequencies) -> Vec<BlockId> {
    let mut order: Vec<BlockId> = Vec::new();
    let mut placed: BTreeSet<BlockId> = BTreeSet::new();
    let seeds: Vec<BlockId> = std::iter::once(f.entry).chain(f.block_ids()).collect();
    for seed in seeds {
        let mut cur = seed;
        while !placed.contains(&cur) {
            order.push(cur);
            placed.insert(cur);
            let succs = f.block(cur).term.successors();
            let hot = freqs
                .hot_successor(cur)
                .filter(|h| succs.contains(h) && !placed.contains(h));
            let next = hot.or_else(|| succs.iter().copied().find(|s| !placed.contains(s)));
            match next {
                Some(n) => cur = n,
                None => break,
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, FunctionBuilder, Module, Ty};

    /// entry cond_br → cold / hot, both → join.
    fn diamond() -> (Function, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let cold = b.create_block("cold");
        let hot = b.create_block("hot");
        let join = b.create_block("join");
        b.cond_br(c, cold, hot);
        b.switch_to(cold);
        let v1 = b.const_i64(1);
        b.br(join);
        b.switch_to(hot);
        let v2 = b.const_i64(2);
        b.br(join);
        b.switch_to(join);
        let ph = b.phi(&[(cold, v1), (hot, v2)]);
        b.ret(Some(ph));
        (b.finish(), cold, hot, join)
    }

    #[test]
    fn hot_successor_comes_first() {
        let (mut f, cold, hot, join) = diamond();
        let entry = f.entry;
        let freqs = BlockFrequencies::from_edge_counts(
            &BTreeMap::from([(entry, vec![(hot, 95), (cold, 5)])]),
            16,
        );
        assert_eq!(freqs.hot_successor(entry), Some(hot));
        let f0 = f.clone();
        let mut cm = SsaMapper::new();
        assert!(LayoutBlocks::new(freqs).run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert_eq!(f.block_ids(), vec![entry, hot, join, cold]);
        let m = Module::new();
        for c in [0, 1] {
            assert_eq!(
                run_function(&f, &[Val::Int(c)], &m, 1000).unwrap(),
                run_function(&f0, &[Val::Int(c)], &m, 1000).unwrap(),
            );
        }
    }

    #[test]
    fn under_sampled_profiles_are_ignored() {
        let (mut f, cold, hot, _) = diamond();
        let entry = f.entry;
        let freqs = BlockFrequencies::from_edge_counts(
            &BTreeMap::from([(entry, vec![(hot, 3), (cold, 1)])]),
            16,
        );
        assert!(freqs.is_empty());
        let mut cm = SsaMapper::new();
        assert!(!LayoutBlocks::new(freqs).run(&mut f, &mut cm));
        assert!(!f.has_custom_layout());
    }

    #[test]
    fn digest_is_stable_and_sorted() {
        let freqs = BlockFrequencies::from_edge_counts(
            &BTreeMap::from([
                (BlockId(7), vec![(BlockId(9), 50)]),
                (BlockId(2), vec![(BlockId(3), 40), (BlockId(4), 40)]),
            ]),
            16,
        );
        // The tie at bb2 resolves to the lowest successor id.
        assert_eq!(
            freqs.digest(),
            vec![(BlockId(2), BlockId(3)), (BlockId(7), BlockId(9))]
        );
    }
}
