//! Aggressive dead code elimination (the `ADCE` of Table 1).

use std::collections::BTreeSet;

use crate::ir::{Function, InstId, InstKind, ValueDef, ValueId};
use crate::passes::{delete_inst, Pass};
use crate::SsaMapper;

/// Deletes every instruction not transitively needed by a side effect, a
/// terminator, or the return value.  Works liveness-first (everything is
/// presumed dead), like LLVM's ADCE.
///
/// The `keep` set implements the §5.2 liveness extension: values a
/// deoptimization mapping needs are treated as roots, so the optimizer
/// keeps them materialized even though the program never reads them again
/// ("a code optimizer might decide to keep a variable alive to support
/// deoptimization at some location").
#[derive(Clone, Default, Debug)]
pub struct Adce {
    /// Values whose definitions must survive even if dead.
    pub keep: BTreeSet<ValueId>,
}

impl Adce {
    /// ADCE protecting the given values from deletion.
    pub fn keeping(keep: BTreeSet<ValueId>) -> Self {
        Adce { keep }
    }
}

impl Pass for Adce {
    fn name(&self) -> &'static str {
        "ADCE"
    }

    fn hook_sites(&self) -> usize {
        1 // delete_inst
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut live: BTreeSet<InstId> = BTreeSet::new();
        let mut work: Vec<InstId> = Vec::new();

        let mark_value = |v, work: &mut Vec<InstId>, live: &mut BTreeSet<InstId>| {
            if let ValueDef::Inst(i) = f.value_def(v) {
                if live.insert(i) {
                    work.push(i);
                }
            }
        };

        // Roots: side-effecting instructions, terminator operands, and the
        // externally requested keep-set (§5.2 liveness extension).
        for (_, i) in f.inst_iter() {
            if f.inst(i).kind.has_side_effects() {
                live.insert(i);
                work.push(i);
            }
        }
        for &v in &self.keep {
            if (v.0 as usize) < f.value_count() {
                mark_value(v, &mut work, &mut live);
            }
        }
        for b in f.block_ids() {
            for v in f.block(b).term.operands() {
                mark_value(v, &mut work, &mut live);
            }
        }
        // Propagate through operands.
        while let Some(i) = work.pop() {
            for v in f.inst(i).kind.operands() {
                mark_value(v, &mut work, &mut live);
            }
        }
        let _ = &mark_value;

        // Delete everything else (plus debug bindings whose value died).
        let mut changed = false;
        let all: Vec<InstId> = f.inst_iter().map(|(_, i)| i).collect();
        for i in all {
            let kind = &f.inst(i).kind;
            let dead = match kind {
                InstKind::DbgValue { value, .. } => match f.value_def(*value) {
                    ValueDef::Inst(d) => !live.contains(&d),
                    ValueDef::Param(_) => false,
                },
                k if k.has_side_effects() => false,
                _ => !live.contains(&i),
            };
            if dead {
                delete_inst(f, cm, i);
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    #[test]
    fn removes_dead_chain_keeps_live() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let d1 = b.binop(BinOp::Mul, x, x); // dead
        let _d2 = b.binop(BinOp::Add, d1, x); // dead
        let one = b.const_i64(1);
        let r = b.binop(BinOp::Add, x, one); // live (returned)
        b.ret(Some(r));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(Adce::default().run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert_eq!(cm.counts().delete, 2);
        assert_eq!(f.live_inst_count(), 2);
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(3)], &m, 100).unwrap(),
            Some(Val::Int(4))
        );
    }

    #[test]
    fn stores_and_calls_are_roots() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let buf = b.alloca(1);
        b.store(buf, x);
        let v = b.load(buf);
        b.ret(Some(v));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        // Nothing deletable: alloca feeds store (root) and load (returned).
        assert!(!Adce::default().run(&mut f, &mut cm));
    }

    #[test]
    fn dbg_binding_of_dead_value_is_dropped_silently() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let dead = b.binop(BinOp::Mul, x, x);
        b.dbg_value("t", dead);
        b.ret(Some(x));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(Adce::default().run(&mut f, &mut cm));
        // The dbg pseudo-instruction is not counted as a primitive action.
        assert_eq!(cm.counts().delete, 1);
        assert_eq!(
            f.inst_iter()
                .filter(|(_, i)| f.inst(*i).kind.is_dbg())
                .count(),
            0
        );
    }
}
