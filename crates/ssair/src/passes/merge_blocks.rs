//! Block merging: fuse straight-line `Br` chains into their predecessor
//! (the `block_merging` cleanup of a layout-oriented backend), OSR-aware.
//!
//! A block `B` is merged into its unique predecessor `A` only when doing
//! so cannot disturb the landing-site machinery or the edge profiles that
//! drive speculation:
//!
//! * `A` ends in `Br(B)` and is `B`'s *only* predecessor — the fusion is a
//!   pure concatenation, no φ adjustment anywhere;
//! * `B` ends in `Br(C)` — never a conditional branch (a conditional's
//!   block id keys the edge profiles and guard statistics; moving it into
//!   `A` would fragment them) and never a return;
//! * `C` carries no φ-nodes, so the successor edge needs no incoming
//!   rewrite and baseline φ-resolution chains stay intact.
//!
//! Every moved instruction is recorded as a `hoist` with its own id
//! (LICM's convention), so [`crate::feasibility`]'s anchor logic knows the
//! instruction is no longer control-equivalent to its baseline location
//! and lands transitions at the surviving downstream anchors instead.

use std::collections::BTreeMap;

use crate::ir::{BlockId, Function, InstKind, Terminator};
use crate::passes::Pass;
use crate::SsaMapper;

/// Fuses single-predecessor/single-successor `Br` chains.
#[derive(Clone, Copy, Default, Debug)]
pub struct MergeBlocks;

impl Pass for MergeBlocks {
    fn name(&self) -> &'static str {
        "merge-blocks"
    }

    fn hook_sites(&self) -> usize {
        1 // hoist of each fused instruction
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut changed = false;
        while let Some((a, b)) = find_candidate(f) {
            let insts = f.block(b).insts.clone();
            for i in insts {
                // Constants are immediates (rematerialized freely) and dbg
                // pseudo-instructions are transparent; neither move is a
                // recorded action — matching LICM.
                if !matches!(f.inst(i).kind, InstKind::Const(_)) && !f.inst(i).kind.is_dbg() {
                    cm.hoist(i, i);
                }
                let pos = f.block(a).insts.len();
                f.move_inst(i, a, pos);
            }
            let term = f.block(b).term.clone();
            f.block_mut(a).term = term;
            f.remove_block(b);
            changed = true;
        }
        changed
    }
}

/// The next fusable `(pred, block)` pair, if any.
fn find_candidate(f: &Function) -> Option<(BlockId, BlockId)> {
    let mut pred_count: BTreeMap<BlockId, usize> = BTreeMap::new();
    for a in f.block_ids() {
        for s in f.block(a).term.successors() {
            *pred_count.entry(s).or_default() += 1;
        }
    }
    for a in f.block_ids() {
        let Terminator::Br(b) = f.block(a).term else {
            continue;
        };
        if b == a || b == f.entry || pred_count.get(&b) != Some(&1) {
            continue;
        }
        if f.block(b).insts.iter().any(|i| f.inst(*i).kind.is_phi()) {
            continue;
        }
        let Terminator::Br(c) = f.block(b).term else {
            continue;
        };
        if c == a || c == b {
            continue;
        }
        if f.block(c).insts.iter().any(|i| f.inst(*i).kind.is_phi()) {
            continue;
        }
        return Some((a, b));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    /// entry → m1 → m2 → exit, a pure `Br` chain with work in every link.
    fn chain_fn() -> Function {
        let mut b = FunctionBuilder::new("chain", &[("x", Ty::I64)]);
        let x = b.param(0);
        let one = b.const_i64(1);
        let m1 = b.create_block("m1");
        let m2 = b.create_block("m2");
        let exit = b.create_block("exit");
        let t0 = b.binop(BinOp::Add, x, one);
        b.br(m1);
        b.switch_to(m1);
        let t1 = b.binop(BinOp::Mul, t0, x);
        b.br(m2);
        b.switch_to(m2);
        let t2 = b.binop(BinOp::Sub, t1, one);
        b.br(exit);
        b.switch_to(exit);
        b.ret(Some(t2));
        b.finish()
    }

    #[test]
    fn fuses_the_whole_chain() {
        let f0 = chain_fn();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(MergeBlocks.run(&mut f, &mut cm));
        verify(&f).unwrap();
        // entry absorbs m1 and m2; exit (Ret-terminated) stays separate.
        assert_eq!(f.block_ids().len(), 2, "the Br chain collapses");
        assert!(cm.counts().hoist >= 2, "moved insts are recorded");
        let m = Module::new();
        for x in [-3, 0, 7] {
            assert_eq!(
                run_function(&f, &[Val::Int(x)], &m, 1000).unwrap(),
                run_function(&f0, &[Val::Int(x)], &m, 1000).unwrap(),
            );
        }
    }

    #[test]
    fn leaves_conditional_blocks_alone() {
        // entry → head; head ends in a conditional — head's body may fuse
        // into entry, but the branch block itself must keep its identity…
        // except the merge would move the CondBr into entry, which the
        // candidate filter forbids.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let head = b.create_block("head");
        let t = b.create_block("t");
        let e = b.create_block("e");
        b.br(head);
        b.switch_to(head);
        let one = b.const_i64(1);
        let cc = b.binop(BinOp::Gt, c, one);
        b.cond_br(cc, t, e);
        b.switch_to(t);
        let r1 = b.const_i64(10);
        b.ret(Some(r1));
        b.switch_to(e);
        let r2 = b.const_i64(20);
        b.ret(Some(r2));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(!MergeBlocks.run(&mut f, &mut cm), "no Br→Br link exists");
        assert_eq!(f, f0);
    }

    #[test]
    fn phi_successors_block_the_merge() {
        // entry cond_br → a / b, both Br → join(φ): a and b are single-pred
        // but their successor carries φs, so nothing merges.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let a = b.create_block("a");
        let bb = b.create_block("b");
        let join = b.create_block("join");
        b.cond_br(c, a, bb);
        b.switch_to(a);
        let va = b.const_i64(1);
        b.br(join);
        b.switch_to(bb);
        let vb = b.const_i64(2);
        b.br(join);
        b.switch_to(join);
        let ph = b.phi(&[(a, va), (bb, vb)]);
        b.ret(Some(ph));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(!MergeBlocks.run(&mut f, &mut cm));
    }
}
