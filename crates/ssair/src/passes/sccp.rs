//! Sparse conditional constant propagation (the `SCCP` of Table 1),
//! including constant-branch folding and unreachable-block elimination.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::ir::{BlockId, Function, InstKind, Terminator, ValueDef, ValueId};
use crate::passes::{delete_inst, materialize_const, replace_all_uses, Pass};
use crate::SsaMapper;

/// The SCCP lattice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Lattice {
    /// Not yet known (⊤).
    Unknown,
    /// Known constant.
    Const(i64),
    /// Over-defined (⊥).
    Over,
}

impl Lattice {
    fn meet(self, other: Lattice) -> Lattice {
        match (self, other) {
            (Lattice::Unknown, x) | (x, Lattice::Unknown) => x,
            (Lattice::Const(a), Lattice::Const(b)) if a == b => Lattice::Const(a),
            _ => Lattice::Over,
        }
    }
}

/// Wegman–Zadeck sparse conditional constant propagation over the SSA
/// graph and CFG simultaneously, followed by rewriting: constant values are
/// replaced, always-taken conditional branches folded, and blocks proven
/// unreachable removed (every deletion recorded, cf. the ffmpeg row of
/// Table 2).
#[derive(Clone, Copy, Default, Debug)]
pub struct Sccp;

impl Pass for Sccp {
    fn name(&self) -> &'static str {
        "SCCP"
    }

    fn hook_sites(&self) -> usize {
        4 // const add, RAUW, inst delete, unreachable-block inst delete
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let (values, executable) = analyze(f);
        let mut changed = false;

        // 1. Replace instructions proven constant.
        let all: Vec<_> = f.inst_iter().collect();
        for (b, i) in all {
            if !executable.contains(&b) {
                continue;
            }
            let Some(r) = f.inst(i).result else { continue };
            if matches!(f.inst(i).kind, InstKind::Const(_)) {
                continue;
            }
            if f.inst(i).kind.has_side_effects() || f.inst(i).kind.reads_memory() {
                continue;
            }
            if matches!(
                f.inst(i).kind,
                InstKind::Alloca { .. } | InstKind::Gep { .. }
            ) {
                continue;
            }
            if let Some(Lattice::Const(n)) = values.get(&r) {
                let new = materialize_const(f, cm, *n);
                replace_all_uses(f, cm, r, new);
                delete_inst(f, cm, i);
                changed = true;
            }
        }

        // 2. Fold conditional branches with known conditions.
        for b in f.block_ids() {
            if !executable.contains(&b) {
                continue;
            }
            if let Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } = f.block(b).term.clone()
            {
                let taken = match values.get(&cond) {
                    Some(Lattice::Const(n)) => Some(if *n != 0 { then_bb } else { else_bb }),
                    _ => {
                        // The condition may itself now be a folded constant
                        // instruction; look through the def.
                        const_of(f, cond).map(|n| if n != 0 { then_bb } else { else_bb })
                    }
                };
                if let Some(t) = taken {
                    let dead = if t == then_bb { else_bb } else { then_bb };
                    f.block_mut(b).term = Terminator::Br(t);
                    remove_phi_incoming(f, cm, dead, b);
                    changed = true;
                }
            }
        }

        // 3. Remove blocks unreachable from the entry.
        let reachable: BTreeSet<BlockId> =
            crate::cfg::Cfg::compute(f).rpo.iter().copied().collect();
        for b in f.block_ids() {
            if reachable.contains(&b) {
                continue;
            }
            // Remove φ incomings in reachable successors first.
            for s in f.block(b).term.successors() {
                if reachable.contains(&s) {
                    remove_phi_incoming(f, cm, s, b);
                }
            }
            let insts = f.block(b).insts.clone();
            for i in insts {
                delete_inst(f, cm, i);
            }
            f.remove_block(b);
            changed = true;
        }

        // 4. Simplify trivial φs ((single incoming) → forward the value).
        loop {
            let mut simplified = false;
            let all: Vec<_> = f.inst_iter().collect();
            for (_, i) in all {
                if let InstKind::Phi(incs) = f.inst(i).kind.clone() {
                    let distinct: BTreeSet<ValueId> = incs.iter().map(|(_, v)| *v).collect();
                    let r = f.inst(i).result.expect("φ has a result");
                    if incs.len() == 1 || (distinct.len() == 1 && !distinct.contains(&r)) {
                        let v = incs[0].1;
                        replace_all_uses(f, cm, r, v);
                        delete_inst(f, cm, i);
                        simplified = true;
                        changed = true;
                    }
                }
            }
            if !simplified {
                break;
            }
        }
        changed
    }
}

fn const_of(f: &Function, v: ValueId) -> Option<i64> {
    match f.value_def(v) {
        ValueDef::Param(_) => None,
        ValueDef::Inst(i) => match f.inst(i).kind {
            InstKind::Const(n) => Some(n),
            _ => None,
        },
    }
}

/// The sparse fix-point: returns the value lattice and the executable
/// block set.
fn analyze(f: &Function) -> (BTreeMap<ValueId, Lattice>, BTreeSet<BlockId>) {
    let mut values: BTreeMap<ValueId, Lattice> = BTreeMap::new();
    let mut executable: BTreeSet<BlockId> = BTreeSet::new();
    let mut edge_executable: BTreeSet<(BlockId, BlockId)> = BTreeSet::new();
    let mut block_work: VecDeque<BlockId> = VecDeque::from([f.entry]);
    executable.insert(f.entry);

    // Parameters are over-defined.
    for (i, _) in f.params.iter().enumerate() {
        values.insert(ValueId(i as u32), Lattice::Over);
    }

    let lookup = |values: &BTreeMap<ValueId, Lattice>, v: ValueId| -> Lattice {
        values.get(&v).copied().unwrap_or(Lattice::Unknown)
    };

    // Iterate until stable: re-evaluate every executable block.
    let mut iterations = 0;
    loop {
        iterations += 1;
        if iterations > 10_000 {
            break; // defensive bound; lattice height ensures termination
        }
        let mut changed = false;
        while let Some(b) = block_work.pop_front() {
            executable.insert(b);
            changed = true;
        }
        for &b in executable.clone().iter() {
            for &i in &f.block(b).insts {
                let data = f.inst(i);
                let Some(r) = data.result else { continue };
                let old = lookup(&values, r);
                let new = match &data.kind {
                    InstKind::Const(n) => Lattice::Const(*n),
                    InstKind::Binop(op, a, bb) => {
                        match (lookup(&values, *a), lookup(&values, *bb)) {
                            (Lattice::Const(x), Lattice::Const(y)) => {
                                Lattice::Const(op.apply(x, y))
                            }
                            (Lattice::Over, _) | (_, Lattice::Over) => Lattice::Over,
                            _ => Lattice::Unknown,
                        }
                    }
                    InstKind::Neg(a) => match lookup(&values, *a) {
                        Lattice::Const(x) => Lattice::Const(x.wrapping_neg()),
                        x => x,
                    },
                    InstKind::Not(a) => match lookup(&values, *a) {
                        Lattice::Const(x) => Lattice::Const(i64::from(x == 0)),
                        x => x,
                    },
                    InstKind::Select {
                        cond,
                        then_v,
                        else_v,
                    } => match lookup(&values, *cond) {
                        Lattice::Const(c) => {
                            lookup(&values, if c != 0 { *then_v } else { *else_v })
                        }
                        Lattice::Over => lookup(&values, *then_v).meet(lookup(&values, *else_v)),
                        Lattice::Unknown => Lattice::Unknown,
                    },
                    InstKind::Phi(incs) => {
                        let mut acc = Lattice::Unknown;
                        for (p, v) in incs {
                            if edge_executable.contains(&(*p, b)) {
                                acc = acc.meet(lookup(&values, *v));
                            }
                        }
                        acc
                    }
                    // Memory, calls, pointers: over-defined.
                    _ => Lattice::Over,
                };
                let merged = old.meet(new);
                // meet() can only go downhill; but for phis/selects new may
                // be more precise than old=Unknown: take new when old is
                // Unknown.
                let final_v = if old == Lattice::Unknown { new } else { merged };
                if final_v != old {
                    values.insert(r, final_v);
                    changed = true;
                }
            }
            // Propagate through the terminator.
            match &f.block(b).term {
                Terminator::Br(t) => {
                    if edge_executable.insert((b, *t)) {
                        changed = true;
                    }
                    if !executable.contains(t) {
                        block_work.push_back(*t);
                        changed = true;
                    }
                }
                Terminator::CondBr {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let targets: Vec<BlockId> = match lookup(&values, *cond) {
                        Lattice::Const(n) => {
                            vec![if n != 0 { *then_bb } else { *else_bb }]
                        }
                        Lattice::Over => vec![*then_bb, *else_bb],
                        Lattice::Unknown => vec![],
                    };
                    for t in targets {
                        if edge_executable.insert((b, t)) {
                            changed = true;
                        }
                        if !executable.contains(&t) {
                            block_work.push_back(t);
                            changed = true;
                        }
                    }
                }
                Terminator::Ret(_) => {}
            }
        }
        if !changed && block_work.is_empty() {
            break;
        }
    }
    (values, executable)
}

/// Drops the `(pred → block)` incoming entry from every φ in `block`.
fn remove_phi_incoming(f: &mut Function, _cm: &mut SsaMapper, block: BlockId, pred: BlockId) {
    if !f.block_exists(block) {
        return;
    }
    let insts = f.block(block).insts.clone();
    for i in insts {
        if let InstKind::Phi(incs) = f.inst(i).kind.clone() {
            let filtered: Vec<_> = incs.into_iter().filter(|(p, _)| *p != pred).collect();
            f.inst_mut(i).kind = InstKind::Phi(filtered);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    #[test]
    fn folds_branch_and_removes_dead_block() {
        // if (1 < 2) r = x + 1 else r = x * 1000; return r
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let one = b.const_i64(1);
        let two = b.const_i64(2);
        let cond = b.binop(BinOp::Lt, one, two);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.cond_br(cond, t, e);
        b.switch_to(t);
        let r1 = b.binop(BinOp::Add, x, one);
        b.br(j);
        b.switch_to(e);
        let k = b.const_i64(1000);
        let r2 = b.binop(BinOp::Mul, x, k);
        b.br(j);
        b.switch_to(j);
        let ph = b.phi(&[(t, r1), (e, r2)]);
        b.ret(Some(ph));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(Sccp.run(&mut f, &mut cm));
        verify(&f).unwrap();
        // The else block is gone.
        assert!(!f.block_exists(e) || !crate::cfg::Cfg::compute(&f).is_reachable(e));
        // Deletions were recorded for its instructions.
        assert!(cm.counts().delete >= 2, "{:?}", cm.counts());
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(5)], &m, 1000).unwrap(),
            Some(Val::Int(6))
        );
    }

    #[test]
    fn constant_phi_through_executable_edges_only() {
        // Both arms assign 7 → φ is constant 7.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let seven = b.const_i64(7);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let ph = b.phi(&[(t, seven), (e, seven)]);
        let one = b.const_i64(1);
        let r = b.binop(BinOp::Add, ph, one);
        b.ret(Some(r));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(Sccp.run(&mut f, &mut cm));
        verify(&f).unwrap();
        let m = Module::new();
        for c in [0, 1] {
            assert_eq!(
                run_function(&f, &[Val::Int(c)], &m, 1000).unwrap(),
                Some(Val::Int(8))
            );
        }
    }

    #[test]
    fn dynamic_branch_untouched() {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let e = b.create_block("e");
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.ret(Some(one));
        b.switch_to(e);
        let two = b.const_i64(2);
        b.ret(Some(two));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        Sccp.run(&mut f, &mut cm);
        verify(&f).unwrap();
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(0)], &m, 1000).unwrap(),
            Some(Val::Int(2))
        );
        assert_eq!(
            run_function(&f, &[Val::Int(9)], &m, 1000).unwrap(),
            Some(Val::Int(1))
        );
    }
}
