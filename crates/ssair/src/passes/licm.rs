//! Loop-invariant code motion (the `LICM` of Table 1).

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{Function, InstId, InstKind, ValueDef, ValueId};
use crate::loops::LoopInfo;
use crate::passes::Pass;
use crate::SsaMapper;

/// Hoists loop-invariant pure instructions into the loop preheader.
///
/// Loads are hoisted only out of loops containing no stores or calls (no
/// alias information — the conservative reading of the §5.3 store
/// invariant).  Requires canonical loops; run
/// [`crate::passes::LoopSimplify`] first.
///
/// Every instruction in our IR is total (division by zero yields 0), so
/// speculative hoisting out of conditionally executed paths is safe.
#[derive(Clone, Copy, Default, Debug)]
pub struct Licm;

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "LICM"
    }

    fn hook_sites(&self) -> usize {
        1 // hoist
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let li = LoopInfo::compute(f, &cfg, &dt);
        let mut changed = false;
        for l in &li.loops {
            let Some(preheader) = l.preheader else {
                continue;
            };
            let loop_has_memory_writes = l.blocks.iter().any(|b| {
                f.block(*b)
                    .insts
                    .iter()
                    .any(|i| f.inst(*i).kind.has_side_effects())
            });
            // Values defined inside the loop.
            let mut defined_in_loop: BTreeSet<ValueId> = BTreeSet::new();
            for &b in &l.blocks {
                for &i in &f.block(b).insts {
                    if let Some(r) = f.inst(i).result {
                        defined_in_loop.insert(r);
                    }
                }
            }
            // Iterate to a fix-point inside this loop.
            loop {
                let mut hoisted_one = false;
                let blocks: Vec<_> = l.blocks.iter().copied().collect();
                'scan: for b in blocks {
                    let insts = f.block(b).insts.clone();
                    for i in insts {
                        if !is_hoistable(f, i, &defined_in_loop, loop_has_memory_writes) {
                            continue;
                        }
                        hoist(f, cm, i, preheader);
                        if let Some(r) = f.inst(i).result {
                            defined_in_loop.remove(&r);
                        }
                        hoisted_one = true;
                        changed = true;
                        break 'scan;
                    }
                }
                if !hoisted_one {
                    break;
                }
            }
        }
        changed
    }
}

fn is_hoistable(
    f: &Function,
    i: InstId,
    defined_in_loop: &BTreeSet<ValueId>,
    loop_has_memory_writes: bool,
) -> bool {
    let data = f.inst(i);
    let movable = match &data.kind {
        InstKind::Phi(_) | InstKind::DbgValue { .. } | InstKind::Alloca { .. } => false,
        InstKind::Store { .. } | InstKind::Call { .. } => false,
        // Constants are immediates in LLVM: they move freely (so their
        // users can be hoisted) but the move is not a recorded action.
        InstKind::Const(_) => true,
        InstKind::Load { .. } => !loop_has_memory_writes,
        _ => true,
    };
    movable
        && data
            .kind
            .operands()
            .iter()
            .all(|op| !defined_in_loop.contains(op))
}

fn hoist(f: &mut Function, cm: &mut SsaMapper, i: InstId, preheader: crate::BlockId) {
    let pos = f.block(preheader).insts.len();
    // Record the action with the instruction's own id as the location; the
    // Δ mapping is id-based, so moves keep the location identity (§5.1).
    // Constant moves are free rematerializations and not recorded.
    if !matches!(f.inst(i).kind, InstKind::Const(_)) {
        cm.hoist(i, i);
    }
    f.move_inst(i, preheader, pos);
    let _ = ValueDef::Param(0);
    let _ = pos;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::passes::LoopSimplify;
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    /// while (i < n) { t = x*x; s += t; i += 1 }
    fn loop_with_invariant() -> Function {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64), ("n", Ty::I64)]);
        let x = b.param(0);
        let n = b.param(1);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let s = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let t = b.binop(BinOp::Mul, x, x); // invariant
        let s2 = b.binop(BinOp::Add, s, t);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        let phi_i = f.block(header).insts[0];
        let phi_s = f.block(header).insts[1];
        f.inst_mut(phi_i).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        f.inst_mut(phi_s).kind = InstKind::Phi(vec![(entry, zero), (body, s2)]);
        f
    }

    #[test]
    fn hoists_invariant_multiplication() {
        let f0 = loop_with_invariant();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        LoopSimplify.run(&mut f, &mut cm);
        assert!(Licm.run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert!(cm.counts().hoist >= 1);
        let m = Module::new();
        for (x, n) in [(3, 4), (2, 0), (-1, 3)] {
            assert_eq!(
                run_function(&f, &[Val::Int(x), Val::Int(n)], &m, 100_000).unwrap(),
                run_function(&f0, &[Val::Int(x), Val::Int(n)], &m, 100_000).unwrap(),
            );
        }
    }

    #[test]
    fn variant_instructions_stay() {
        let f0 = loop_with_invariant();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        LoopSimplify.run(&mut f, &mut cm);
        Licm.run(&mut f, &mut cm);
        // s2 = s + t depends on the φ s → must stay in the loop body.
        // Count: only the x*x should have been hoisted.
        assert_eq!(cm.counts().hoist, 1);
    }
}
