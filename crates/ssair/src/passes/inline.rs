//! Profile-guided call inlining — the cross-function extension of the
//! framework's §5 composition story.
//!
//! [`InlineCalls`] splices a hot callee's body into the caller ahead of the
//! aggressive mixes: arguments substitute for parameters, each cloned
//! instruction is recorded as an ordinary §5.1 `add`, returns branch to a
//! continuation block where a φ joins the return values, and the retired
//! `Call` is an ordinary `replace` + `delete`.  Because the splice speaks
//! only the five primitive actions, [`crate::feasibility`] keeps producing
//! exact entry tables over the spliced function with no special cases —
//! the cloned pcs are "added" instructions exactly like a seed guard or a
//! materialized constant.
//!
//! What the table machinery *cannot* reconstruct on its own is the frame
//! of the function that no longer gets called.  For that, every splice
//! also records an [`InlineRegion`]: the cloned-pc → callee-pc map, the
//! callee-value → spliced-value map, and the call's continuation
//! coordinates.  A runtime that deoptimizes at a pc inside the region
//! lands in the spliced base via the normal backward table, then uses the
//! region to rebuild the *callee's* frame (running it to its return) and
//! resume the caller at the continuation — cross-function OSR as the
//! composition of two ordinary mappings.
//!
//! The pass is deliberately conservative about what it splices: only leaf
//! callees (no nested calls) built from pure scalar instructions, whose
//! every `ret` carries a value.  Memory state never needs to be
//! reconstructed across the boundary, and a region entered is a region
//! that provably reaches the continuation or deoptimizes inside it.
//!
//! In the engine above, each splice is an `InlinedCallee` assumption in
//! the artifact's version key (callee identity + inline epoch); a fired
//! region guard deopts as an inline-kind assumption violation
//! (`tinyvm::profile::AssumptionKind::Inline`), and a callee republish
//! invalidates the artifact through the cache's dependency registry.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use crate::ir::{BlockId, Function, InstId, InstKind, Terminator, ValueId};
use crate::passes::{delete_inst, replace_all_uses, Pass};
use crate::SsaMapper;

/// One call site chosen for inlining by the profile-driven policy.
#[derive(Clone, Debug)]
pub struct InlineSite {
    /// The `Call` instruction in the caller's base version.
    pub at: InstId,
    /// Snapshot of the callee taken when the compile was requested; the
    /// splice clones this body, so a republished callee leaves spliced
    /// versions stale (the cache evicts them by epoch).
    pub callee: Arc<Function>,
    /// Biased conditional edges of the *callee* (`branch block → hot
    /// successor`), translated into cloned-block ids so the runtime can
    /// guard the speculation after optimization.
    pub bias: Vec<(BlockId, BlockId)>,
}

/// The record of one performed splice: everything a runtime needs to
/// rebuild the callee's frame from spliced-function state.
#[derive(Clone, Debug)]
pub struct InlineRegion {
    /// Callee name (module key for re-entry and for epoch invalidation).
    pub callee: String,
    /// The retired `Call` instruction's id in the caller base.
    pub call_inst: InstId,
    /// Block that held the call (now branches into the region).
    pub call_block: BlockId,
    /// Index the call occupied in [`InlineRegion::call_block`]; the
    /// caller resumes at `call_index` in the continuation's coordinates —
    /// i.e. the first former tail instruction.
    pub call_index: usize,
    /// The call's result value in the caller base (replaced by `join`).
    pub result: ValueId,
    /// The value standing for the callee's return in the spliced function
    /// (a φ at the continuation, or the lone return's value).
    pub join: ValueId,
    /// Cloned pc → callee pc.  A deopt landing on a key of this map is
    /// *inside* the region and reconstructs the callee frame.
    pub pc_map: BTreeMap<InstId, InstId>,
    /// Callee value → spliced value (parameters map to the caller's
    /// argument values, instruction results to their clones).
    pub val_map: BTreeMap<ValueId, ValueId>,
    /// The cloned blocks, in callee layout order.
    pub blocks: BTreeSet<BlockId>,
    /// Biased callee edges translated to cloned-block ids.
    pub hot_arms: Vec<(BlockId, BlockId)>,
}

/// What [`InlineCalls`] learned while running inside a pipeline: the
/// function as it stood immediately after splicing, the regions, and how
/// many mapper actions the log held at that point.  Replaying the log
/// *suffix* into a fresh mapper (see `osr::CodeMapper::replay`) yields the
/// spliced-base → optimized correspondence the deopt tables need.
#[derive(Clone, Debug)]
pub struct InlineOutcome {
    /// Clone of the function right after every splice was applied.
    pub spliced: Function,
    /// One record per splice actually performed (skipped sites are
    /// absent).
    pub regions: Vec<InlineRegion>,
    /// `cm.log().len()` when the pass returned — the prefix of the full
    /// pipeline log that belongs to splicing (plus any earlier pass).
    pub prefix_actions: usize,
}

/// The OSR-aware inlining pass.  Runs ahead of the §5.4 mixes so that
/// CP/CSE/LICM/layout optimize across the former call boundary.
pub struct InlineCalls {
    sites: Vec<InlineSite>,
    outcome: Arc<Mutex<Option<InlineOutcome>>>,
}

impl InlineCalls {
    /// A pass that will splice the given sites (in order).
    pub fn new(sites: Vec<InlineSite>) -> Self {
        InlineCalls {
            sites,
            outcome: Arc::new(Mutex::new(None)),
        }
    }

    /// Shared slot the pass deposits its [`InlineOutcome`] into when run
    /// (the `Pass` trait hands out `&self`, so the compile driver keeps a
    /// clone of this handle).
    pub fn outcome_slot(&self) -> Arc<Mutex<Option<InlineOutcome>>> {
        self.outcome.clone()
    }

    /// Structural inlinability: a leaf callee of pure scalar instructions
    /// whose every (reachable) `ret` returns a value.  (The *policy*
    /// question — hot enough, small enough — is the profile layer's.)
    pub fn can_inline(callee: &Function) -> bool {
        let mut returns = 0usize;
        for b in reachable_blocks(callee) {
            for &i in &callee.block(b).insts {
                match callee.inst(i).kind {
                    InstKind::Const(_)
                    | InstKind::Binop(..)
                    | InstKind::Neg(_)
                    | InstKind::Not(_)
                    | InstKind::Select { .. }
                    | InstKind::Phi(_)
                    | InstKind::DbgValue { .. } => {}
                    // Nested calls and memory state stay call-boundary
                    // territory: reconstruction is scalar-only.
                    _ => return false,
                }
            }
            if let Terminator::Ret(v) = &callee.block(b).term {
                if v.is_none() {
                    return false;
                }
                returns += 1;
            }
        }
        returns > 0
    }
}

impl Pass for InlineCalls {
    fn name(&self) -> &'static str {
        "inline-calls"
    }

    fn hook_sites(&self) -> usize {
        4 // add (clones, join φ), hoist (tail), replace (result), delete (call)
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut regions = Vec::new();
        for site in &self.sites {
            if let Some(r) = splice_site(f, cm, site) {
                regions.push(r);
            }
        }
        let changed = !regions.is_empty();
        *self.outcome.lock().unwrap() = Some(InlineOutcome {
            spliced: f.clone(),
            regions,
            prefix_actions: cm.log().len(),
        });
        changed
    }
}

/// The callee's blocks reachable from its entry, in layout order.  Only
/// these are cloned: unreachable trailing blocks (a front end's
/// `after.return` remnants) would otherwise donate predecessor-less
/// φ-incomings to the continuation.
fn reachable_blocks(callee: &Function) -> Vec<BlockId> {
    let mut seen: BTreeSet<BlockId> = BTreeSet::from([callee.entry]);
    let mut work = vec![callee.entry];
    while let Some(b) = work.pop() {
        for s in callee.block(b).term.successors() {
            if seen.insert(s) {
                work.push(s);
            }
        }
    }
    callee
        .block_ids()
        .into_iter()
        .filter(|b| seen.contains(b))
        .collect()
}

/// Performs one splice.  Returns `None` (leaving `f` untouched) when the
/// site no longer matches — the call was optimized away, the arity drifted
/// from the snapshot, or the callee is structurally uninlinable.
fn splice_site(f: &mut Function, cm: &mut SsaMapper, site: &InlineSite) -> Option<InlineRegion> {
    let callee = &*site.callee;
    if !InlineCalls::can_inline(callee)
        || (site.at.0 as usize) >= f.inst_id_count()
        || !f.inst_is_live(site.at)
    {
        return None;
    }
    let at = site.at;
    let args = match &f.inst(at).kind {
        InstKind::Call { callee: n, args } if *n == callee.name => args.clone(),
        _ => return None,
    };
    if args.len() != callee.params.len() {
        return None;
    }
    let result = f.inst(at).result?;
    let cb = f.block_of(at)?;
    let idx = f.block(cb).insts.iter().position(|&i| i == at)?;

    // 1. Split: a continuation block takes the call's tail and the block's
    //    terminator.  Moved instructions keep their ids and are recorded
    //    as self-hoists (MergeBlocks' convention), so the anchor logic
    //    knows they are no longer control-equivalent to their base spots.
    let cont = f.create_block(&format!("inl.cont.{}", callee.name));
    let tail: Vec<InstId> = f.block(cb).insts[idx + 1..].to_vec();
    for (k, &i) in tail.iter().enumerate() {
        if !matches!(f.inst(i).kind, InstKind::Const(_)) && !f.inst(i).kind.is_dbg() {
            cm.hoist(i, i);
        }
        f.move_inst(i, cont, k);
    }
    let old_term = std::mem::replace(&mut f.block_mut(cb).term, Terminator::Br(cont));
    f.block_mut(cont).term = old_term.clone();
    // The old successors' φs now receive their value from `cont`.
    for s in old_term.successors() {
        let insts = f.block(s).insts.clone();
        for i in insts {
            if let InstKind::Phi(incs) = &mut f.inst_mut(i).kind {
                for (b, _) in incs.iter_mut() {
                    if *b == cb {
                        *b = cont;
                    }
                }
            }
        }
    }

    // 2. Clone the callee's (reachable) blocks and instructions; every
    //    clone is an ordinary §5.1 `add`.  Parameters substitute for
    //    arguments.
    let reachable = reachable_blocks(callee);
    let mut block_map: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    for &b in &reachable {
        let nb = f.create_block(&format!("inl.{}.{}", callee.name, callee.block(b).name));
        block_map.insert(b, nb);
    }
    let mut val_map: BTreeMap<ValueId, ValueId> = BTreeMap::new();
    for (i, &arg) in args.iter().enumerate() {
        val_map.insert(callee.param_value(i), arg);
    }
    let mut pc_map: BTreeMap<InstId, InstId> = BTreeMap::new();
    let mut clones: Vec<InstId> = Vec::new();
    for &b in &reachable {
        let nb = block_map[&b];
        for &i in &callee.block(b).insts {
            let data = callee.inst(i);
            let ci = f.create_inst(data.kind.clone(), data.line);
            f.push_inst(nb, ci);
            cm.add(ci);
            if let (Some(cv), Some(v)) = (f.result_of(ci), data.result) {
                val_map.insert(v, cv);
            }
            pc_map.insert(ci, i);
            clones.push(ci);
        }
    }
    // Rewrite cloned operands into caller space.  The rewrite must be
    // simultaneous (`map_operands`): callee ids and caller ids overlap.
    for &ci in &clones {
        let kind = &mut f.inst_mut(ci).kind;
        if let InstKind::Phi(incs) = kind {
            for (b, _) in incs.iter_mut() {
                *b = block_map[b];
            }
        }
        kind.map_operands(|v| val_map[&v]);
    }

    // 3. Terminators: branches stay branches; every `ret v` becomes a
    //    branch to the continuation carrying `v` for the join.
    let mut rets: Vec<(BlockId, ValueId)> = Vec::new();
    for &b in &reachable {
        let nb = block_map[&b];
        let term = match callee.block(b).term.clone() {
            Terminator::Br(t) => Terminator::Br(block_map[&t]),
            Terminator::CondBr {
                cond,
                then_bb,
                else_bb,
            } => Terminator::CondBr {
                cond: val_map[&cond],
                then_bb: block_map[&then_bb],
                else_bb: block_map[&else_bb],
            },
            Terminator::Ret(v) => {
                let v = v.expect("can_inline admits value-returning rets only");
                rets.push((nb, val_map[&v]));
                Terminator::Br(cont)
            }
        };
        f.block_mut(nb).term = term;
    }

    // 4. The join: the lone return's value, or a φ over all of them.
    let join = if rets.len() == 1 {
        rets[0].1
    } else {
        let phi = f.create_inst(InstKind::Phi(rets.clone()), None);
        f.insert_inst(cont, 0, phi);
        cm.add(phi);
        f.result_of(phi).expect("φ has a result")
    };

    // 5. Route the caller through the region and retire the call.
    f.block_mut(cb).term = Terminator::Br(block_map[&callee.entry]);
    replace_all_uses(f, cm, result, join);
    delete_inst(f, cm, at);

    let hot_arms = site
        .bias
        .iter()
        .filter_map(|(b, s)| Some((*block_map.get(b)?, *block_map.get(s)?)))
        .collect();
    Some(InlineRegion {
        callee: callee.name.clone(),
        call_inst: at,
        call_block: cb,
        call_index: idx,
        result,
        join,
        pc_map,
        val_map,
        blocks: block_map.values().copied().collect(),
        hot_arms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::passes::Pipeline;
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty, ValueDef};

    fn helper_double_plus() -> Function {
        // helper(a, b) = a * 2 + b — single block, single ret.
        let mut b = FunctionBuilder::new("helper", &[("a", Ty::I64), ("b", Ty::I64)]);
        let a = b.param(0);
        let c2 = b.const_i64(2);
        let t = b.binop(BinOp::Mul, a, c2);
        let r = b.binop(BinOp::Add, t, b.param(1));
        b.ret(Some(r));
        b.finish()
    }

    fn abs_callee() -> Function {
        // abs(a): two rets, joined by a φ after splicing.
        let mut b = FunctionBuilder::new("abs", &[("a", Ty::I64)]);
        let a = b.param(0);
        let zero = b.const_i64(0);
        let neg = b.binop(BinOp::Lt, a, zero);
        let bn = b.create_block("neg");
        let bp = b.create_block("pos");
        b.cond_br(neg, bn, bp);
        b.switch_to(bn);
        let flipped = b.binop(BinOp::Sub, zero, a);
        b.ret(Some(flipped));
        b.switch_to(bp);
        b.ret(Some(a));
        b.finish()
    }

    fn find_call(f: &Function, callee: &str) -> InstId {
        for b in f.block_ids() {
            for &i in &f.block(b).insts {
                if matches!(&f.inst(i).kind, InstKind::Call { callee: n, .. } if n == callee) {
                    return i;
                }
            }
        }
        panic!("no call to {callee}");
    }

    fn has_calls(f: &Function) -> bool {
        f.block_ids().iter().any(|&b| {
            f.block(b)
                .insts
                .iter()
                .any(|&i| matches!(f.inst(i).kind, InstKind::Call { .. }))
        })
    }

    #[test]
    fn splices_single_ret_leaf_and_matches_call_semantics() {
        let helper = Arc::new(helper_double_plus());
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let c3 = b.const_i64(3);
        let y = b.call("helper", &[x, c3]);
        let z = b.binop(BinOp::Add, y, x);
        b.ret(Some(z));
        let f0 = b.finish();

        let mut m = Module::new();
        m.add((*helper).clone());

        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        let site = InlineSite {
            at: find_call(&f0, "helper"),
            callee: helper.clone(),
            bias: Vec::new(),
        };
        let pass = InlineCalls::new(vec![site]);
        assert!(pass.run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert!(!has_calls(&f), "the call dissolved into the region");

        let outcome = pass.outcome_slot().lock().unwrap().take().unwrap();
        assert_eq!(outcome.regions.len(), 1);
        let r = &outcome.regions[0];
        assert_eq!(r.callee, "helper");
        assert!(!f.inst_is_live(r.call_inst), "the Call was retired");
        assert_eq!(cm.resolve_value(r.result), r.join);
        // Every cloned pc is an added instruction mapping to a callee pc.
        for (&clone, &orig) in &r.pc_map {
            assert!(cm.is_added(clone));
            assert!(helper.inst_is_live(orig));
        }
        // Parameters map to the caller's argument values.
        assert_eq!(r.val_map[&helper.param_value(0)], x);

        for n in [-4i64, 0, 9] {
            assert_eq!(
                run_function(&f, &[Val::Int(n)], &m, 10_000).unwrap(),
                run_function(&f0, &[Val::Int(n)], &m, 10_000).unwrap(),
            );
        }
    }

    #[test]
    fn multi_ret_callee_joins_through_a_phi() {
        let callee = Arc::new(abs_callee());
        let mut b = FunctionBuilder::new("g", &[("x", Ty::I64)]);
        let x = b.param(0);
        let y = b.call("abs", &[x]);
        let one = b.const_i64(1);
        let r = b.binop(BinOp::Add, y, one);
        b.ret(Some(r));
        let f0 = b.finish();
        let mut m = Module::new();
        m.add((*callee).clone());

        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        let pass = InlineCalls::new(vec![InlineSite {
            at: find_call(&f0, "abs"),
            callee: callee.clone(),
            bias: Vec::new(),
        }]);
        assert!(pass.run(&mut f, &mut cm));
        verify(&f).unwrap();
        let outcome = pass.outcome_slot().lock().unwrap().take().unwrap();
        let region = &outcome.regions[0];
        match f.value_def(region.join) {
            ValueDef::Inst(i) => {
                assert!(
                    matches!(f.inst(i).kind, InstKind::Phi(_)),
                    "rets join in a φ"
                )
            }
            d => panic!("join defined by {d:?}"),
        }
        for n in [-5i64, 0, 7] {
            assert_eq!(
                run_function(&f, &[Val::Int(n)], &m, 10_000).unwrap(),
                run_function(&f0, &[Val::Int(n)], &m, 10_000).unwrap(),
            );
        }
    }

    #[test]
    fn continuation_takes_over_phi_incomings_of_old_successors() {
        // entry cond_br → p / q; p holds the call then joins q at t's φ.
        let helper = Arc::new(helper_double_plus());
        let mut b = FunctionBuilder::new("h", &[("x", Ty::I64)]);
        let x = b.param(0);
        let p = b.create_block("p");
        let q = b.create_block("q");
        let t = b.create_block("t");
        b.cond_br(x, p, q);
        b.switch_to(p);
        let c1 = b.const_i64(1);
        let y = b.call("helper", &[x, c1]);
        b.br(t);
        b.switch_to(q);
        let c9 = b.const_i64(9);
        b.br(t);
        b.switch_to(t);
        let ph = b.phi(&[(p, y), (q, c9)]);
        b.ret(Some(ph));
        let f0 = b.finish();
        let mut m = Module::new();
        m.add((*helper).clone());

        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        let pass = InlineCalls::new(vec![InlineSite {
            at: find_call(&f0, "helper"),
            callee: helper.clone(),
            bias: Vec::new(),
        }]);
        assert!(pass.run(&mut f, &mut cm));
        verify(&f).unwrap();
        let outcome = pass.outcome_slot().lock().unwrap().take().unwrap();
        let region = &outcome.regions[0];
        // t's φ no longer names p as a predecessor; the region's join value
        // arrives from the continuation instead.
        let phi_incs = match &f.inst(f.block(t).insts[0]).kind {
            InstKind::Phi(incs) => incs.clone(),
            k => panic!("expected φ, got {k:?}"),
        };
        assert!(phi_incs.iter().all(|(blk, _)| *blk != p));
        assert!(phi_incs.iter().any(|(_, v)| *v == region.join));
        for n in [0i64, 2, -3] {
            assert_eq!(
                run_function(&f, &[Val::Int(n)], &m, 10_000).unwrap(),
                run_function(&f0, &[Val::Int(n)], &m, 10_000).unwrap(),
            );
        }
    }

    #[test]
    fn declines_non_leaf_memory_and_mismatched_sites() {
        // A callee that itself calls is not a leaf.
        let mut b = FunctionBuilder::new("wrapper", &[("a", Ty::I64)]);
        let a = b.param(0);
        let r = b.call("deeper", &[a]);
        b.ret(Some(r));
        let non_leaf = Arc::new(b.finish());
        assert!(!InlineCalls::can_inline(&non_leaf));

        let helper = Arc::new(helper_double_plus());
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let y = b.call("wrapper", &[x]);
        b.ret(Some(y));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        // Site 1: uninlinable callee.  Site 2: callee snapshot whose name
        // does not match the instruction.  Site 3: dead pc.
        let pass = InlineCalls::new(vec![
            InlineSite {
                at: find_call(&f0, "wrapper"),
                callee: non_leaf,
                bias: Vec::new(),
            },
            InlineSite {
                at: find_call(&f0, "wrapper"),
                callee: helper.clone(),
                bias: Vec::new(),
            },
            InlineSite {
                at: InstId(10_000),
                callee: helper,
                bias: Vec::new(),
            },
        ]);
        assert!(!pass.run(&mut f, &mut cm), "nothing spliced");
        assert!(cm.log().is_empty());
        assert!(has_calls(&f), "the call survives");
        let outcome = pass.outcome_slot().lock().unwrap().take().unwrap();
        assert!(outcome.regions.is_empty());
    }

    #[test]
    fn two_sites_in_one_block_splice_sequentially() {
        let helper = Arc::new(helper_double_plus());
        let mut b = FunctionBuilder::new("f2", &[("x", Ty::I64)]);
        let x = b.param(0);
        let c1 = b.const_i64(1);
        let y = b.call("helper", &[x, c1]);
        let z = b.call("helper", &[y, x]);
        let s = b.binop(BinOp::Add, y, z);
        b.ret(Some(s));
        let f0 = b.finish();
        let mut m = Module::new();
        m.add((*helper).clone());

        let sites: Vec<InlineSite> = f0
            .block(f0.entry)
            .insts
            .iter()
            .filter(|&&i| matches!(f0.inst(i).kind, InstKind::Call { .. }))
            .map(|&i| InlineSite {
                at: i,
                callee: helper.clone(),
                bias: Vec::new(),
            })
            .collect();
        assert_eq!(sites.len(), 2);
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        let pass = InlineCalls::new(sites);
        assert!(pass.run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert!(!has_calls(&f));
        let outcome = pass.outcome_slot().lock().unwrap().take().unwrap();
        assert_eq!(outcome.regions.len(), 2);
        for n in [-2i64, 0, 5] {
            assert_eq!(
                run_function(&f, &[Val::Int(n)], &m, 10_000).unwrap(),
                run_function(&f0, &[Val::Int(n)], &m, 10_000).unwrap(),
            );
        }
    }

    #[test]
    fn survives_the_aggressive_mix_and_the_log_suffix_replays() {
        // Prepend the splice to the full aggressive pipeline: the former
        // call boundary constant-folds away, and replaying the log suffix
        // into a fresh mapper yields the spliced-base → optimized record.
        let helper = Arc::new(helper_double_plus());
        let mut b = FunctionBuilder::new("f3", &[("x", Ty::I64)]);
        let x = b.param(0);
        let c3 = b.const_i64(3);
        let y = b.call("helper", &[x, c3]);
        let z = b.binop(BinOp::Add, y, x);
        b.ret(Some(z));
        let f0 = b.finish();
        let mut m = Module::new();
        m.add((*helper).clone());

        let pass = InlineCalls::new(vec![InlineSite {
            at: find_call(&f0, "helper"),
            callee: helper.clone(),
            bias: Vec::new(),
        }]);
        let slot = pass.outcome_slot();
        let pipeline = Pipeline::aggressive().prepended(Box::new(pass));
        let (opt, cm, _stats) = pipeline.optimize(&f0);
        verify(&opt).unwrap();
        assert!(!has_calls(&opt));

        let outcome = slot.lock().unwrap().take().unwrap();
        assert!(outcome.prefix_actions <= cm.log().len());
        verify(&outcome.spliced).unwrap();
        let mut suffix = SsaMapper::new();
        suffix.replay(&cm.log()[outcome.prefix_actions..]);
        // The suffix mapper never deletes anything the spliced snapshot
        // does not have.
        for loc in suffix.deleted_locations() {
            assert!(
                outcome.spliced.inst_is_live(loc),
                "suffix deletion {loc:?} must exist in the snapshot"
            );
        }
        for n in [-1i64, 4, 11] {
            assert_eq!(
                run_function(&opt, &[Val::Int(n)], &m, 10_000).unwrap(),
                run_function(&f0, &[Val::Int(n)], &m, 10_000).unwrap(),
            );
        }
    }
}
