//! Code sinking (the `Sink` of Table 1).

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, InstId, InstKind, ValueId};
use crate::loops::LoopInfo;
use crate::passes::Pass;
use crate::SsaMapper;

/// Moves pure, memory-silent instructions down into the single block that
/// contains all their uses, when that block is dominated by the current one
/// and not at a deeper loop level.  Shrinks live ranges and removes work
/// from paths that do not need the value.
///
/// The `keep` set implements the §5.2 liveness extension for sinking:
/// protected values stay put so a deoptimization can read them where the
/// mapping expects them.
#[derive(Clone, Default, Debug)]
pub struct Sink {
    /// Values whose definitions must not move.
    pub keep: std::collections::BTreeSet<ValueId>,
}

impl Sink {
    /// Sink protecting the given values.
    pub fn keeping(keep: std::collections::BTreeSet<ValueId>) -> Self {
        Sink { keep }
    }
}

impl Pass for Sink {
    fn name(&self) -> &'static str {
        "Sink"
    }

    fn hook_sites(&self) -> usize {
        1 // sink
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut changed = false;
        loop {
            let cfg = Cfg::compute(f);
            let dt = DomTree::compute(f, &cfg);
            let li = LoopInfo::compute(f, &cfg, &dt);
            let mut moved = false;
            'scan: for b in f.block_ids() {
                if !dt.is_reachable(b) {
                    continue;
                }
                let insts = f.block(b).insts.clone();
                for i in insts.into_iter().rev() {
                    if f.inst(i).result.is_some_and(|r| self.keep.contains(&r)) {
                        continue;
                    }
                    if let Some(target) = sink_target(f, &dt, &li, b, i) {
                        // Insert after target's φs, before the first use.
                        let pos = first_use_position(f, target, i);
                        cm.sink(i, i);
                        f.move_inst(i, target, pos);
                        moved = true;
                        changed = true;
                        break 'scan;
                    }
                }
            }
            if !moved {
                return changed;
            }
        }
    }
}

fn loop_depth(li: &LoopInfo, b: BlockId) -> usize {
    li.loops.iter().filter(|l| l.blocks.contains(&b)).count()
}

fn sink_target(
    f: &Function,
    dt: &DomTree,
    li: &LoopInfo,
    b: BlockId,
    i: InstId,
) -> Option<BlockId> {
    let data = f.inst(i);
    match data.kind {
        InstKind::Phi(_)
        | InstKind::DbgValue { .. }
        | InstKind::Alloca { .. }
        | InstKind::Store { .. }
        | InstKind::Call { .. }
        | InstKind::Load { .. }
        | InstKind::Const(_) => return None,
        _ => {}
    }
    let r = data.result?;
    // All uses must be non-φ instruction uses in one block ≠ b; terminator
    // uses pin the value to its block.
    let mut use_blocks: BTreeSet<BlockId> = BTreeSet::new();
    for (ub, ui) in f.inst_iter() {
        let ud = f.inst(ui);
        if ud.kind.is_dbg() {
            continue; // debug bindings never pin a value (llvm.dbg.value)
        }
        if ud.kind.operands().contains(&r) {
            if ud.kind.is_phi() {
                return None;
            }
            use_blocks.insert(ub);
        }
    }
    for tb in f.block_ids() {
        if f.block(tb).term.operands().contains(&r) {
            use_blocks.insert(tb);
        }
    }
    let target = match use_blocks.iter().collect::<Vec<_>>().as_slice() {
        [single] => **single,
        _ => return None,
    };
    if target == b || !dt.is_reachable(target) || !dt.dominates(b, target) {
        return None;
    }
    // Never sink INTO a deeper loop (would re-execute per iteration).
    if loop_depth(li, target) > loop_depth(li, b) {
        return None;
    }
    Some(target)
}

fn first_use_position(f: &Function, block: BlockId, inst: InstId) -> usize {
    let r: Option<ValueId> = f.inst(inst).result;
    let insts = &f.block(block).insts;
    let mut pos = insts
        .iter()
        .take_while(|i| f.inst(**i).kind.is_phi())
        .count();
    if let Some(r) = r {
        for (idx, &i) in insts.iter().enumerate() {
            if f.inst(i).kind.operands().contains(&r) {
                return idx.max(pos);
            }
        }
        pos = pos.max(insts.len().min(pos));
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    #[test]
    fn sinks_into_use_branch() {
        // v = x*x computed unconditionally, used only in the then-branch.
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64), ("x", Ty::I64)]);
        let c = b.param(0);
        let x = b.param(1);
        let v = b.binop(BinOp::Mul, x, x);
        let t = b.create_block("t");
        let e = b.create_block("e");
        b.cond_br(c, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        let r = b.binop(BinOp::Add, v, one);
        b.ret(Some(r));
        b.switch_to(e);
        let zero = b.const_i64(0);
        b.ret(Some(zero));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(Sink::default().run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert!(cm.counts().sink >= 1);
        // v now lives in block t.
        let v_inst = match f.value_def(v) {
            crate::ValueDef::Inst(i) => i,
            _ => unreachable!(),
        };
        assert_eq!(f.block_of(v_inst), Some(t));
        let m = Module::new();
        for (c, x) in [(0, 5), (1, 5)] {
            assert_eq!(
                run_function(&f, &[Val::Int(c), Val::Int(x)], &m, 1000).unwrap(),
                run_function(&f0, &[Val::Int(c), Val::Int(x)], &m, 1000).unwrap(),
            );
        }
    }

    #[test]
    fn does_not_sink_into_loop() {
        // v = x+1 used only inside a loop body: sinking would re-execute it.
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64), ("n", Ty::I64)]);
        let x = b.param(0);
        let n = b.param(1);
        let one = b.const_i64(1);
        let zero = b.const_i64(0);
        let v = b.binop(BinOp::Add, x, one);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let s = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let s2 = b.binop(BinOp::Add, s, v); // only use of v
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        let phi_i = f.block(header).insts[0];
        let phi_s = f.block(header).insts[1];
        f.inst_mut(phi_i).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        f.inst_mut(phi_s).kind = InstKind::Phi(vec![(entry, zero), (body, s2)]);
        verify(&f).unwrap();
        let mut cm = SsaMapper::new();
        let v_inst = match f.value_def(v) {
            crate::ValueDef::Inst(i) => i,
            _ => unreachable!(),
        };
        Sink::default().run(&mut f, &mut cm);
        assert_eq!(f.block_of(v_inst), Some(entry), "must not sink into loop");
    }

    #[test]
    fn phi_uses_block_sinking() {
        let mut b = FunctionBuilder::new("f", &[("c", Ty::I64), ("x", Ty::I64)]);
        let c = b.param(0);
        let x = b.param(1);
        let v = b.binop(BinOp::Mul, x, x);
        let t = b.create_block("t");
        let j = b.create_block("j");
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        let entry = BlockId(0);
        let ph = b.phi(&[(t, v), (entry, x)]);
        b.ret(Some(ph));
        let mut f = b.finish();
        verify(&f).unwrap();
        let mut cm = SsaMapper::new();
        assert!(
            !Sink::default().run(&mut f, &mut cm),
            "φ uses must block sinking"
        );
    }
}
