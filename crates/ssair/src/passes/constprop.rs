//! Simple constant propagation/folding (the `CP` of Table 1).

use std::collections::BTreeMap;

use crate::ir::{Function, InstKind, ValueDef, ValueId};
use crate::passes::{delete_inst, materialize_const, replace_all_uses, Pass};
use crate::SsaMapper;

/// Folds instructions whose operands are all constants, iterating to a
/// fix-point.  Branch folding and unreachable-code removal are left to
/// [`crate::passes::Sccp`].
#[derive(Clone, Copy, Default, Debug)]
pub struct ConstProp;

impl Pass for ConstProp {
    fn name(&self) -> &'static str {
        "CP"
    }

    fn hook_sites(&self) -> usize {
        3 // materialize_const (add), replace_all_uses, delete_inst
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut changed = false;
        loop {
            let consts = known_constants(f);
            let mut folded = None;
            'search: for (_, i) in f.inst_iter() {
                let data = f.inst(i);
                if data.kind.is_phi() || data.kind.is_dbg() {
                    continue;
                }
                if let Some(n) = fold(&data.kind, &consts) {
                    // Skip if the instruction is already the canonical
                    // constant (avoid infinite re-folding).
                    if matches!(data.kind, InstKind::Const(_)) {
                        continue;
                    }
                    folded = Some((i, n));
                    break 'search;
                }
            }
            match folded {
                Some((i, n)) => {
                    let old = f.result_of(i).expect("foldable insts have results");
                    let new = materialize_const(f, cm, n);
                    replace_all_uses(f, cm, old, new);
                    delete_inst(f, cm, i);
                    changed = true;
                }
                None => return changed,
            }
        }
    }
}

fn known_constants(f: &Function) -> BTreeMap<ValueId, i64> {
    let mut out = BTreeMap::new();
    for (_, i) in f.inst_iter() {
        if let InstKind::Const(n) = f.inst(i).kind {
            if let Some(r) = f.inst(i).result {
                out.insert(r, n);
            }
        }
    }
    out
}

fn fold(kind: &InstKind, consts: &BTreeMap<ValueId, i64>) -> Option<i64> {
    let c = |v: &ValueId| consts.get(v).copied();
    match kind {
        InstKind::Binop(op, a, b) => Some(op.apply(c(a)?, c(b)?)),
        InstKind::Neg(a) => Some(c(a)?.wrapping_neg()),
        InstKind::Not(a) => Some(i64::from(c(a)? == 0)),
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => {
            let cv = c(cond)?;
            if cv != 0 {
                c(then_v)
            } else {
                c(else_v)
            }
        }
        _ => None,
    }
}

/// Exposes constant-value lookup for other passes and for reconstruction:
/// the constant a value is known to hold, if its defining chain folds.
pub fn const_value(f: &Function, v: ValueId) -> Option<i64> {
    match f.value_def(v) {
        ValueDef::Param(_) => None,
        ValueDef::Inst(i) => match &f.inst(i).kind {
            InstKind::Const(n) => Some(*n),
            _ => None,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    #[test]
    fn folds_chain() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let two = b.const_i64(2);
        let three = b.const_i64(3);
        let six = b.binop(BinOp::Mul, two, three);
        let one = b.const_i64(1);
        let seven = b.binop(BinOp::Add, six, one);
        let r = b.binop(BinOp::Add, x, seven);
        b.ret(Some(r));
        let f0 = b.finish();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        assert!(ConstProp.run(&mut f, &mut cm));
        verify(&f).unwrap();
        // Both binops on constants must be gone.
        assert!(cm.counts().delete >= 2);
        let m = Module::new();
        assert_eq!(
            run_function(&f, &[Val::Int(5)], &m, 100).unwrap(),
            run_function(&f0, &[Val::Int(5)], &m, 100).unwrap(),
        );
    }

    #[test]
    fn select_with_const_cond_folds() {
        let mut b = FunctionBuilder::new("s", &[]);
        let one = b.const_i64(1);
        let ten = b.const_i64(10);
        let twenty = b.const_i64(20);
        let sel = b.select(one, ten, twenty);
        b.ret(Some(sel));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(ConstProp.run(&mut f, &mut cm));
        let m = Module::new();
        assert_eq!(run_function(&f, &[], &m, 100).unwrap(), Some(Val::Int(10)));
    }

    #[test]
    fn no_change_on_dynamic_code() {
        let mut b = FunctionBuilder::new("d", &[("x", Ty::I64)]);
        let x = b.param(0);
        let y = b.binop(BinOp::Add, x, x);
        b.ret(Some(y));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(!ConstProp.run(&mut f, &mut cm));
        assert_eq!(cm.counts().total(), 0);
    }
}
