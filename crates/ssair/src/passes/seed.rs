//! Constant seeding for value-speculative compilation.
//!
//! A tiered engine that profiles *values* (not just branch edges) may find
//! that a function's argument or memory cell is stable across requests.
//! [`SeedValues`] turns that observation into optimization fuel: each
//! speculated value is materialized as an entry-block constant and every
//! use is rewritten to read the constant — recorded as the same `add` +
//! `replace` primitive actions any folding pass records, so the OSR
//! mapping between the unspecialized and specialized versions stays exact.
//! Running the normal pass mix afterwards then folds arithmetic over the
//! seeded constant (CP/SCCP), deletes branches the constant decides, and
//! DCEs whole arms — wins no value-agnostic pipeline can reach.
//!
//! The pass is purely mechanical and makes *no* correctness claim by
//! itself: the specialized version computes the right answer only for
//! frames whose speculated values actually hold.  Guarding entries into
//! the specialized code — and deoptimizing frames out of it when the
//! speculation is violated — is the engine's job: each seed becomes a
//! `ValueStable` assumption in the artifact's version key, and a
//! violated seed deopts as a value-kind assumption violation
//! (`tinyvm::profile::AssumptionKind::Value` in the engine's unified
//! taxonomy).

use crate::ir::{Function, ValueId};
use crate::passes::{materialize_const, replace_all_uses, Pass};
use crate::SsaMapper;

/// Seeds speculated values as entry-block constants (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct SeedValues {
    seeds: Vec<(ValueId, i64)>,
}

impl SeedValues {
    /// A pass seeding each `(value, constant)` pair.  Values outside the
    /// function's value space are ignored (a profile may outlive a
    /// version).
    pub fn new(seeds: Vec<(ValueId, i64)>) -> Self {
        SeedValues { seeds }
    }

    /// The seeds this pass applies.
    pub fn seeds(&self) -> &[(ValueId, i64)] {
        &self.seeds
    }
}

impl Pass for SeedValues {
    fn name(&self) -> &'static str {
        "Seed"
    }

    fn hook_sites(&self) -> usize {
        2 // materialize_const (add), replace_all_uses
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let mut changed = false;
        for (v, n) in &self.seeds {
            if (v.0 as usize) >= f.value_count() {
                continue;
            }
            let c = materialize_const(f, cm, *n);
            replace_all_uses(f, cm, *v, c);
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::passes::Pipeline;
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    /// `f(mode, x) = mode > 6 ? x * 11 : x + mode` — a dispatch branch a
    /// seeded `mode` decides statically.
    fn dispatch() -> crate::Function {
        let mut b = FunctionBuilder::new("f", &[("mode", Ty::I64), ("x", Ty::I64)]);
        let mode = b.param(0);
        let x = b.param(1);
        let six = b.const_i64(6);
        let cmp = b.binop(BinOp::Gt, mode, six);
        let then_bb = b.create_block("then");
        let else_bb = b.create_block("else");
        let join = b.create_block("join");
        b.cond_br(cmp, then_bb, else_bb);
        b.switch_to(then_bb);
        let eleven = b.const_i64(11);
        let t = b.binop(BinOp::Mul, x, eleven);
        b.br(join);
        b.switch_to(else_bb);
        let e = b.binop(BinOp::Add, x, mode);
        b.br(join);
        b.switch_to(join);
        let r = b.phi(&[(then_bb, t), (else_bb, e)]);
        b.ret(Some(r));
        b.finish()
    }

    #[test]
    fn seeding_a_param_unlocks_branch_folding() {
        let base = dispatch();
        let seed = base.param_value(0);
        let pipeline = Pipeline::standard().prepended(Box::new(SeedValues::new(vec![(seed, 3)])));
        let (spec, _cm, _) = pipeline.optimize(&base);
        verify(&spec).unwrap();
        let (plain, _, _) = Pipeline::standard().optimize(&base);
        assert!(
            spec.live_inst_count() < plain.live_inst_count(),
            "seeding mode=3 folds the dispatch branch away: {} !< {}",
            spec.live_inst_count(),
            plain.live_inst_count()
        );
        // The specialized version is equivalent *under the speculation*.
        let module = Module::new();
        for x in [0i64, 5, 23] {
            assert_eq!(
                run_function(&spec, &[Val::Int(3), Val::Int(x)], &module, 100_000).unwrap(),
                run_function(&base, &[Val::Int(3), Val::Int(x)], &module, 100_000).unwrap(),
            );
        }
    }

    #[test]
    fn out_of_range_seeds_are_ignored() {
        let mut f = dispatch();
        let mut cm = SsaMapper::new();
        let bogus = ValueId(10_000);
        assert!(!SeedValues::new(vec![(bogus, 7)]).run(&mut f, &mut cm));
        assert_eq!(cm.counts().total(), 0);
    }
}
