//! Loop-closed SSA construction (the `LCSSA` of Table 1).
//!
//! For every value defined inside a loop and used outside it, a φ-node is
//! inserted at each dedicated exit block and the outside uses are rewritten
//! to go through it.  These φs usually have a single incoming value — the
//! "φ-nodes that always evaluate to the same value" that §5.4's
//! `reconstruct` learns to see through.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, InstId, InstKind, ValueId};
use crate::loops::LoopInfo;
use crate::passes::Pass;
use crate::SsaMapper;

/// Rewrites the function into loop-closed SSA form.
///
/// Exit blocks with predecessors outside the loop are skipped (run
/// [`crate::passes::LoopSimplify`] first for canonical loops; fully
/// dedicated exits are not enforced by this simplified implementation).
#[derive(Clone, Copy, Default, Debug)]
pub struct Lcssa;

impl Pass for Lcssa {
    fn name(&self) -> &'static str {
        "LCSSA"
    }

    fn hook_sites(&self) -> usize {
        2 // add (exit φ), replace (outside uses)
    }

    fn run(&self, f: &mut Function, cm: &mut SsaMapper) -> bool {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let li = LoopInfo::compute(f, &cfg, &dt);
        let mut changed = false;
        for l in &li.loops {
            // Values defined in the loop.
            let mut defs: Vec<(InstId, ValueId)> = Vec::new();
            for &b in &l.blocks {
                for &i in &f.block(b).insts {
                    if let Some(r) = f.inst(i).result {
                        defs.push((i, r));
                    }
                }
            }
            for (_, v) in defs {
                // Uses outside the loop (instructions and terminators).
                let outside_users = collect_outside_users(f, v, &l.blocks);
                if outside_users.is_empty() {
                    continue;
                }
                for &exit in &l.exits {
                    if !cfg.is_reachable(exit) {
                        continue;
                    }
                    let preds = cfg.preds_of(exit);
                    if !preds.iter().all(|p| l.blocks.contains(p)) {
                        continue; // not a dedicated exit; skip
                    }
                    // Only create the φ if v dominates the exit (otherwise
                    // the value does not flow out this way).
                    let Some(def_block) = def_block_of(f, v) else {
                        continue;
                    };
                    if !dt.dominates(def_block, exit) {
                        continue;
                    }
                    let phi =
                        f.create_inst(InstKind::Phi(preds.iter().map(|p| (*p, v)).collect()), None);
                    f.insert_inst(exit, 0, phi);
                    cm.add(phi);
                    let pv = f.result_of(phi).expect("φ has a result");
                    // Rewrite uses outside the loop dominated by the exit.
                    rewrite_dominated_uses(f, cm, &dt, v, pv, exit, phi, &l.blocks);
                    changed = true;
                }
            }
        }
        changed
    }
}

fn def_block_of(f: &Function, v: ValueId) -> Option<BlockId> {
    match f.value_def(v) {
        crate::ir::ValueDef::Param(_) => Some(f.entry),
        crate::ir::ValueDef::Inst(i) => f.block_of(i),
    }
}

fn collect_outside_users(f: &Function, v: ValueId, loop_blocks: &BTreeSet<BlockId>) -> Vec<InstId> {
    let mut out = Vec::new();
    for (b, i) in f.inst_iter() {
        if !loop_blocks.contains(&b) && f.inst(i).kind.operands().contains(&v) {
            out.push(i);
        }
    }
    for b in f.block_ids() {
        if !loop_blocks.contains(&b) && f.block(b).term.operands().contains(&v) {
            out.push(InstId(u32::MAX)); // sentinel: a terminator use exists
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn rewrite_dominated_uses(
    f: &mut Function,
    cm: &mut SsaMapper,
    dt: &DomTree,
    old: ValueId,
    new: ValueId,
    exit: BlockId,
    phi: InstId,
    loop_blocks: &BTreeSet<BlockId>,
) {
    let mut replaced_any = false;
    for b in f.block_ids() {
        if loop_blocks.contains(&b) || !dt.is_reachable(b) {
            continue;
        }
        if !dt.dominates(exit, b) {
            continue;
        }
        let insts = f.block(b).insts.clone();
        for i in insts {
            if i == phi {
                continue;
            }
            // φ uses are attributed to the incoming edge; only rewrite if
            // that edge's source is dominated by the exit as well.
            if let InstKind::Phi(incs) = &f.inst(i).kind {
                let mut incs = incs.clone();
                let mut touched = false;
                for (p, v) in &mut incs {
                    if *v == old && !loop_blocks.contains(p) && dt.dominates(exit, *p) {
                        *v = new;
                        touched = true;
                    }
                }
                if touched {
                    f.inst_mut(i).kind = InstKind::Phi(incs);
                    replaced_any = true;
                }
            } else if f.inst(i).kind.operands().contains(&old) {
                f.inst_mut(i).kind.replace_operand(old, new);
                replaced_any = true;
            }
        }
        let term = &mut f.block_mut(b).term;
        if term.operands().contains(&old) {
            term.replace_operand(old, new);
            replaced_any = true;
        }
    }
    if replaced_any {
        cm.replace_scoped(old, new);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::passes::LoopSimplify;
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    fn loop_value_used_outside() -> Function {
        let mut b = FunctionBuilder::new("f", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        // i used outside the loop.
        let r = b.binop(BinOp::Mul, i, i);
        b.ret(Some(r));
        let mut f = b.finish();
        let phi = f.block(header).insts[0];
        f.inst_mut(phi).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        f
    }

    #[test]
    fn inserts_exit_phi_and_rewrites_uses() {
        let f0 = loop_value_used_outside();
        let mut f = f0.clone();
        let mut cm = SsaMapper::new();
        LoopSimplify.run(&mut f, &mut cm);
        assert!(Lcssa.run(&mut f, &mut cm));
        verify(&f).unwrap();
        assert!(cm.counts().add >= 1);
        assert!(cm.counts().replace >= 1);
        // φ count grew (the LCSSA φ).
        assert!(f.phi_count() > f0.phi_count());
        let m = Module::new();
        for n in [0, 1, 5] {
            assert_eq!(
                run_function(&f, &[Val::Int(n)], &m, 100_000).unwrap(),
                run_function(&f0, &[Val::Int(n)], &m, 100_000).unwrap(),
            );
        }
    }

    #[test]
    fn idempotent_when_no_outside_uses() {
        let mut b = FunctionBuilder::new("f", &[("n", Ty::I64)]);
        let n = b.param(0);
        b.ret(Some(n));
        let mut f = b.finish();
        let mut cm = SsaMapper::new();
        assert!(!Lcssa.run(&mut f, &mut cm));
    }
}
