//! Promotion of stack slots to SSA registers (`mem2reg`).
//!
//! Front-ends place every source variable in an `alloca` and access it with
//! loads and stores (§5.4); this pass promotes the promotable slots to SSA
//! form with φ-nodes at iterated dominance frontiers, and materializes a
//! [`crate::InstKind::DbgValue`] binding after every promoted store so the
//! §7 debugging study can map source variables to SSA values.

use std::collections::BTreeMap;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, InstId, InstKind, ValueId};

/// Runs mem2reg on `f`, returning the number of promoted allocas.
pub fn mem2reg(f: &mut Function) -> usize {
    let promotable = find_promotable(f);
    if promotable.is_empty() {
        return 0;
    }
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);

    // Per alloca: blocks containing stores.
    let mut store_blocks: BTreeMap<ValueId, Vec<BlockId>> = BTreeMap::new();
    for (b, i) in f.inst_iter().collect::<Vec<_>>() {
        if let InstKind::Store { addr, .. } = &f.inst(i).kind {
            if promotable.contains_key(addr) {
                store_blocks.entry(*addr).or_default().push(b);
            }
        }
    }

    // Insert φs at iterated dominance frontiers.
    // phi_for[(block, alloca)] = inst id of the φ.
    let mut phi_for: BTreeMap<(BlockId, ValueId), InstId> = BTreeMap::new();
    for (&alloca, blocks) in &store_blocks {
        for b in dt.iterated_frontier(blocks) {
            if !cfg.is_reachable(b) {
                continue;
            }
            phi_for.entry((b, alloca)).or_insert_with(|| {
                let i = f.create_inst(InstKind::Phi(Vec::new()), None);
                f.insert_inst(b, 0, i);
                i
            });
        }
    }

    // Rename along the dominator tree.
    let mut stacks: BTreeMap<ValueId, Vec<ValueId>> = BTreeMap::new();
    let mut zero_cache: Option<ValueId> = None;
    rename(
        f,
        &cfg,
        &dt,
        f.entry,
        &promotable,
        &phi_for,
        &mut stacks,
        &mut zero_cache,
    );

    // Remove the allocas themselves.
    for (&alloca, &inst) in &promotable {
        let _ = alloca;
        f.remove_inst(inst);
    }
    promotable.len()
}

/// An alloca is promotable if every use is a direct `load`/`store` address
/// (no GEPs, no stores *of* the pointer, no calls receiving it).
fn find_promotable(f: &Function) -> BTreeMap<ValueId, InstId> {
    let mut candidates: BTreeMap<ValueId, InstId> = BTreeMap::new();
    for (_, i) in f.inst_iter() {
        if let InstKind::Alloca { size: 1, .. } = f.inst(i).kind {
            if let Some(r) = f.inst(i).result {
                candidates.insert(r, i);
            }
        }
    }
    for (_, i) in f.inst_iter() {
        match &f.inst(i).kind {
            InstKind::Load { .. } => {}
            InstKind::Store { addr: _, value } => {
                candidates.remove(value); // storing the pointer itself
            }
            other => {
                for op in other.operands() {
                    candidates.remove(&op);
                }
            }
        }
    }
    candidates
}

#[allow(clippy::too_many_arguments)]
fn rename(
    f: &mut Function,
    cfg: &Cfg,
    dt: &DomTree,
    block: BlockId,
    promotable: &BTreeMap<ValueId, InstId>,
    phi_for: &BTreeMap<(BlockId, ValueId), InstId>,
    stacks: &mut BTreeMap<ValueId, Vec<ValueId>>,
    zero_cache: &mut Option<ValueId>,
) {
    let mut pushed: Vec<ValueId> = Vec::new();

    // φs of this block define new values.
    for ((b, alloca), &phi) in phi_for {
        if *b == block {
            let v = f.result_of(phi).expect("φ has a result");
            stacks.entry(*alloca).or_default().push(v);
            pushed.push(*alloca);
        }
    }

    // Walk instructions: replace loads, record stores, drop both.
    let insts = f.block(block).insts.clone();
    for i in insts {
        match f.inst(i).kind.clone() {
            InstKind::Load { addr } if promotable.contains_key(&addr) => {
                let current = current_value(f, block, &addr, stacks, zero_cache);
                let r = f.result_of(i).expect("load has a result");
                f.replace_all_uses(r, current);
                f.remove_inst(i);
            }
            InstKind::Store { addr, value } if promotable.contains_key(&addr) => {
                stacks.entry(addr).or_default().push(value);
                pushed.push(addr);
                // Materialize the debug binding for the source variable.
                let name = promoted_name(f, promotable[&addr]);
                let line = f.inst(i).line;
                let pos = f.block(block).insts.iter().position(|x| *x == i).unwrap();
                f.remove_inst(i);
                if let Some(var) = name {
                    let dbg = f.create_inst(InstKind::DbgValue { var, value }, line);
                    f.insert_inst(block, pos, dbg);
                }
            }
            _ => {}
        }
    }

    // Fill φ operands of successors.
    for &s in cfg.succs_of(block) {
        for ((b, alloca), &phi) in phi_for {
            if *b == s {
                let v = current_value(f, block, alloca, stacks, zero_cache);
                if let InstKind::Phi(incs) = &mut f.inst_mut(phi).kind {
                    if !incs.iter().any(|(p, _)| *p == block) {
                        incs.push((block, v));
                    }
                }
            }
        }
    }

    // Recurse into dominator-tree children.
    let children = dt.children.get(&block).cloned().unwrap_or_default();
    for c in children {
        rename(f, cfg, dt, c, promotable, phi_for, stacks, zero_cache);
    }

    for alloca in pushed {
        stacks.get_mut(&alloca).map(Vec::pop);
    }
}

/// The current SSA value of the promoted variable, or a zero constant for
/// use-before-store (LLVM would use `undef`).
fn current_value(
    f: &mut Function,
    _block: BlockId,
    alloca: &ValueId,
    stacks: &BTreeMap<ValueId, Vec<ValueId>>,
    zero_cache: &mut Option<ValueId>,
) -> ValueId {
    if let Some(v) = stacks.get(alloca).and_then(|s| s.last()) {
        return *v;
    }
    if let Some(z) = zero_cache {
        return *z;
    }
    let entry = f.entry;
    let i = f.create_inst(InstKind::Const(0), None);
    f.insert_inst(entry, 0, i);
    let v = f.result_of(i).expect("const has a result");
    *zero_cache = Some(v);
    v
}

fn promoted_name(f: &Function, alloca_inst: InstId) -> Option<String> {
    match &f.inst(alloca_inst).kind {
        InstKind::Alloca { name, .. } => name.clone(),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{run_function, Val};
    use crate::{verify, BinOp, FunctionBuilder, Module, Ty};

    /// abs-like function written with allocas, as a front-end would emit.
    fn alloca_style() -> Function {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let slot = b.alloca_named(1, "y");
        let zero = b.const_i64(0);
        b.store(slot, zero);
        let neg_bb = b.create_block("neg");
        let join = b.create_block("join");
        let cmp = b.binop(BinOp::Lt, x, zero);
        b.cond_br(cmp, neg_bb, join);
        b.switch_to(neg_bb);
        let nx = b.neg(x);
        b.store(slot, nx);
        b.br(join);
        b.switch_to(join);
        let v = b.load(slot);
        let r = b.binop(BinOp::Add, v, x);
        b.ret(Some(r));
        b.finish()
    }

    #[test]
    fn promotes_and_preserves_semantics() {
        let f0 = alloca_style();
        let mut f = f0.clone();
        let promoted = mem2reg(&mut f);
        assert_eq!(promoted, 1);
        verify(&f).unwrap();
        let m = Module::new();
        for x in [-5i64, -1, 0, 3] {
            assert_eq!(
                run_function(&f0, &[Val::Int(x)], &m, 1000).unwrap(),
                run_function(&f, &[Val::Int(x)], &m, 1000).unwrap(),
                "x = {x}"
            );
        }
        // No loads/stores/allocas remain.
        for (_, i) in f.inst_iter() {
            assert!(!matches!(
                f.inst(i).kind,
                InstKind::Load { .. } | InstKind::Store { .. } | InstKind::Alloca { .. }
            ));
        }
        // φ inserted at the join.
        assert!(f.phi_count() >= 1);
        // Debug bindings for y were materialized.
        let dbg_count = f
            .inst_iter()
            .filter(|(_, i)| f.inst(*i).kind.is_dbg())
            .count();
        assert_eq!(dbg_count, 2);
    }

    #[test]
    fn array_alloca_not_promoted() {
        let mut b = FunctionBuilder::new("arr", &[("x", Ty::I64)]);
        let x = b.param(0);
        let buf = b.alloca(4);
        let idx = b.const_i64(1);
        let p = b.gep(buf, idx);
        b.store(p, x);
        let v = b.load(p);
        b.ret(Some(v));
        let mut f = b.finish();
        assert_eq!(mem2reg(&mut f), 0);
        verify(&f).unwrap();
    }

    #[test]
    fn loop_variable_promotion() {
        // i := 0; while (i < n) i := i + 1; return i
        let mut b = FunctionBuilder::new("loop", &[("n", Ty::I64)]);
        let n = b.param(0);
        let slot = b.alloca_named(1, "i");
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        b.store(slot, zero);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        b.br(header);
        b.switch_to(header);
        let iv = b.load(slot);
        let cmp = b.binop(BinOp::Lt, iv, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let iv2 = b.load(slot);
        let inc = b.binop(BinOp::Add, iv2, one);
        b.store(slot, inc);
        b.br(header);
        b.switch_to(exit);
        let out = b.load(slot);
        b.ret(Some(out));
        let f0 = b.finish();
        let mut f = f0.clone();
        assert_eq!(mem2reg(&mut f), 1);
        verify(&f).unwrap();
        let m = Module::new();
        for n in 0..6 {
            assert_eq!(
                run_function(&f0, &[Val::Int(n)], &m, 10_000).unwrap(),
                run_function(&f, &[Val::Int(n)], &m, 10_000).unwrap(),
            );
        }
        assert!(f.phi_count() >= 1, "loop variable needs a φ:\n{f}");
    }
}
