//! SSA value liveness.
//!
//! A value is *live* at a location if it will be read on some path ahead;
//! it is *available* if its definition dominates the location (its register
//! would still hold it if kept).  The distinction drives the `live` vs
//! `avail` variants of the reconstruction algorithm (§5.2).

use std::collections::{BTreeMap, BTreeSet};

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, InstId, InstKind, ValueDef, ValueId};

/// Per-block liveness sets plus per-location query support.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: BTreeMap<BlockId, BTreeSet<ValueId>>,
    live_out: BTreeMap<BlockId, BTreeSet<ValueId>>,
}

impl Liveness {
    /// Computes block-level liveness for `f`.
    pub fn compute(f: &Function, cfg: &Cfg) -> Liveness {
        let mut live_in: BTreeMap<BlockId, BTreeSet<ValueId>> = BTreeMap::new();
        let mut live_out: BTreeMap<BlockId, BTreeSet<ValueId>> = BTreeMap::new();
        let blocks = f.block_ids();
        for &b in &blocks {
            live_in.insert(b, BTreeSet::new());
            live_out.insert(b, BTreeSet::new());
        }
        // use[b]: upward-exposed uses; def[b]: values defined in b.
        // φ operands count as live-out of the corresponding predecessor.
        let mut uses: BTreeMap<BlockId, BTreeSet<ValueId>> = BTreeMap::new();
        let mut defs: BTreeMap<BlockId, BTreeSet<ValueId>> = BTreeMap::new();
        let mut phi_out: BTreeMap<BlockId, BTreeSet<ValueId>> = BTreeMap::new();
        for &b in &blocks {
            let mut u = BTreeSet::new();
            let mut d = BTreeSet::new();
            for &i in &f.block(b).insts {
                let data = f.inst(i);
                if let InstKind::Phi(incs) = &data.kind {
                    for (p, v) in incs {
                        phi_out.entry(*p).or_default().insert(*v);
                    }
                } else if !data.kind.is_dbg() {
                    // Debug bindings are transparent: they must never keep
                    // a value alive (mirroring llvm.dbg.value).
                    for op in data.kind.operands() {
                        if !d.contains(&op) {
                            u.insert(op);
                        }
                    }
                }
                if let Some(r) = data.result {
                    d.insert(r);
                }
            }
            for op in f.block(b).term.operands() {
                if !d.contains(&op) {
                    u.insert(op);
                }
            }
            uses.insert(b, u);
            defs.insert(b, d);
        }
        loop {
            let mut changed = false;
            for &b in blocks.iter().rev() {
                let mut out: BTreeSet<ValueId> = phi_out.get(&b).cloned().unwrap_or_default();
                for &s in cfg.succs_of(b) {
                    // live_in(s) never contains s's own φ results (they are
                    // block defs, and uses are upward-exposed only), so the
                    // union cannot smuggle them in.  Crucially, a φ result
                    // of s that is *also* a φ operand over this edge (a
                    // φ-swap) stays live-out of b via phi_out — its old
                    // value is read on the edge.
                    out.extend(live_in[&s].iter().copied());
                }
                let mut inn = uses[&b].clone();
                inn.extend(out.difference(&defs[&b]).copied());
                // φ results are defined at the top of the block; they are
                // not upward-exposed into predecessors.
                if inn != live_in[&b] || out != live_out[&b] {
                    live_in.insert(b, inn);
                    live_out.insert(b, out);
                    changed = true;
                }
            }
            if !changed {
                return Liveness { live_in, live_out };
            }
        }
    }

    /// Values live at the start of block `b`.
    pub fn live_in(&self, b: BlockId) -> &BTreeSet<ValueId> {
        &self.live_in[&b]
    }

    /// Values live at the end of block `b`.
    pub fn live_out(&self, b: BlockId) -> &BTreeSet<ValueId> {
        &self.live_out[&b]
    }

    /// Values live just **before** instruction `at` executes — the OSR
    /// transfer set for that location.
    ///
    /// φ results of the containing block count as live at its non-φ
    /// locations (they were computed on block entry).
    ///
    /// # Panics
    ///
    /// Panics if `at` has been removed from the function.
    pub fn live_before(&self, f: &Function, at: InstId) -> BTreeSet<ValueId> {
        let b = f.block_of(at).expect("live instruction");
        let insts = &f.block(b).insts;
        let pos = insts.iter().position(|i| *i == at).expect("in block");
        // Walk backward from block end to `pos`.
        let mut live = self.live_out[&b].clone();
        for op in f.block(b).term.operands() {
            live.insert(op);
        }
        for &i in insts[pos..].iter().rev() {
            let data = f.inst(i);
            if let Some(r) = data.result {
                live.remove(&r);
            }
            if !data.kind.is_phi() && !data.kind.is_dbg() {
                for op in data.kind.operands() {
                    live.insert(op);
                }
            }
        }
        // Do not report φ results of instructions at or after `pos` — those
        // are re-evaluated... φs only sit at the top, so if `at` is a non-φ
        // location every φ of the block is before `pos` and its result may
        // be live; if `at` IS a φ location, resuming there re-enters the
        // block mid-φ-group, which the runtime forbids (OSR points are
        // non-φ locations).
        live
    }
}

/// Availability: which values' definitions dominate a given location.
#[derive(Clone, Debug)]
pub struct Availability<'f> {
    f: &'f Function,
    dt: &'f DomTree,
}

impl<'f> Availability<'f> {
    /// Creates the availability oracle.
    pub fn new(f: &'f Function, dt: &'f DomTree) -> Self {
        Availability { f, dt }
    }

    /// Whether `v`'s definition strictly precedes (dominates) location
    /// `at`, i.e. the value has certainly been computed when execution sits
    /// at `at`.
    pub fn available_before(&self, v: ValueId, at: InstId) -> bool {
        let use_block = match self.f.block_of(at) {
            Some(b) => b,
            None => return false,
        };
        match self.f.value_def(v) {
            ValueDef::Param(_) => true,
            ValueDef::Inst(d) => {
                let Some(def_block) = self.f.block_of(d) else {
                    return false;
                };
                if def_block == use_block {
                    let insts = &self.f.block(def_block).insts;
                    let dpos = insts.iter().position(|i| *i == d);
                    let upos = insts.iter().position(|i| *i == at);
                    match (dpos, upos) {
                        (Some(dp), Some(up)) => dp < up,
                        _ => false,
                    }
                } else {
                    self.dt.dominates(def_block, use_block)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, FunctionBuilder, Ty};

    #[test]
    fn straight_line_liveness() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let one = b.const_i64(1);
        let y = b.binop(BinOp::Add, x, one);
        let z = b.binop(BinOp::Mul, y, y);
        b.ret(Some(z));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        let entry = f.entry;
        let insts = f.block(entry).insts.clone();
        // Before `y = x + 1`: x and 1 live, y not yet.
        let at_y = lv.live_before(&f, insts[1]);
        assert!(at_y.contains(&x));
        assert!(!at_y.contains(&y));
        // Before `z = y * y`: y live, x dead.
        let at_z = lv.live_before(&f, insts[2]);
        assert!(at_z.contains(&y));
        assert!(!at_z.contains(&x));
    }

    #[test]
    fn loop_phi_liveness() {
        // i = φ(entry: 0, body: i+1); live across the loop.
        let mut b = FunctionBuilder::new("l", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        let phi_inst = f.block(header).insts[0];
        f.inst_mut(phi_inst).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        crate::verify(&f).unwrap();
        let cfg = Cfg::compute(&f);
        let lv = Liveness::compute(&f, &cfg);
        // i2 is live-out of body (φ operand), i live-in of header’s body
        // path.
        assert!(lv.live_out(body).contains(&i2));
        // n stays live inside the loop.
        assert!(lv.live_in(body).contains(&n) || lv.live_out(body).contains(&n));
        // i is live at the exit block (returned).
        assert!(lv.live_in(exit).contains(&i));
    }

    #[test]
    fn availability_follows_dominance() {
        let mut b = FunctionBuilder::new("a", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let j = b.create_block("j");
        b.cond_br(c, t, j);
        b.switch_to(t);
        let v = b.const_i64(9);
        b.br(j);
        b.switch_to(j);
        let w = b.binop(BinOp::Add, c, c);
        b.ret(Some(w));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let avail = Availability::new(&f, &dt);
        let w_inst = f.block(j).insts[0];
        // v (defined in t) is NOT available at j (t does not dominate j).
        assert!(!avail.available_before(v, w_inst));
        // The parameter is always available.
        assert!(avail.available_before(c, w_inst));
        let _ = ValueDef::Param(0);
    }
}
