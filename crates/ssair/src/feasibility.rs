//! OSR feasibility classification over whole functions — the analysis
//! behind Figures 7–8 and Tables 2–3 of the evaluation.

use osr::FeasibilitySummary;

use crate::ir::{Function, InstId, Terminator};
use crate::reconstruct::{Direction, OsrPair, Variant};
use crate::SsaMapper;

/// How an OSR point can be served (the bar categories of Figures 7–8).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum PointClass {
    /// `c = ⟨⟩`: live-state transfer only, no generated instructions.
    EmptyComp,
    /// Served by the `live` variant with `|c|` generated instructions.
    Live {
        /// Number of generated compensation instructions.
        comp_size: usize,
    },
    /// Served only by the `avail` variant.
    Avail {
        /// Number of generated compensation instructions.
        comp_size: usize,
        /// Size of the keep-set `K_avail`.
        keep: usize,
    },
    /// Not served by either variant.
    Infeasible,
}

/// The OSR program points of a function version: every non-φ, non-debug
/// instruction location.
pub fn osr_points(f: &Function) -> Vec<InstId> {
    f.inst_iter()
        .map(|(_, i)| i)
        .filter(|i| {
            let k = &f.inst(*i).kind;
            !k.is_phi() && !k.is_dbg()
        })
        .collect()
}

/// A resolved OSR landing site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Landing {
    /// The landing instruction in the target version.
    pub loc: InstId,
    /// When the anchor walk crossed into the landing block via an
    /// unconditional-branch chain, the corresponding predecessor block in
    /// the **target** function — the φ-nodes of the landing block must be
    /// bound along this edge.
    pub entry_edge: Option<crate::BlockId>,
}

/// Resolves the landing location in the target version for a point of the
/// source version.
///
/// The anchor is the first instruction at or after `from` (in source block
/// order, following unconditional branches) that exists in the target and
/// was **not moved** by the optimizer — moved instructions keep their id
/// but their location is no longer control-equivalent.
///
/// Returns `None` when the walk ends at a conditional branch or return
/// before an anchor is found, or when the landing block has φ-nodes and the
/// entry edge cannot be translated into the target CFG (no unambiguous
/// landing state — such points count as OSR-infeasible, as in the paper).
pub fn landing_site(
    points_fn: &Function,
    target_fn: &Function,
    cm: &SsaMapper,
    from: InstId,
) -> Option<Landing> {
    let anchor_ok = |i: InstId| {
        (i.0 as usize) < target_fn.inst_id_count()
            && target_fn.inst_is_live(i)
            && !cm.is_moved(i)
            // Belt and braces over the recorded actions: a constant hoisted
            // by LICM is a free rematerialization and deliberately *not*
            // recorded as a move (§5.1), but its location is still not
            // control-equivalent — anchoring on it would land the frame in
            // the preheader and restart the loop.  Block identity is
            // preserved by every pass, so an unmoved anchor must sit in
            // the same block in both versions.
            && target_fn.block_of(i) == points_fn.block_of(i)
    };
    let start_block = points_fn.block_of(from)?;
    let mut block = start_block;
    let mut start = points_fn
        .block(block)
        .insts
        .iter()
        .position(|i| *i == from)?;
    let mut chain: Vec<crate::BlockId> = vec![block];
    let mut hops = 0;
    loop {
        let insts = &points_fn.block(block).insts;
        for &i in &insts[start..] {
            let k = &points_fn.inst(i).kind;
            if !k.is_phi() && !k.is_dbg() && anchor_ok(i) {
                if block == start_block {
                    return Some(Landing {
                        loc: i,
                        entry_edge: None,
                    });
                }
                // Crossed at least one block boundary: if the landing block
                // has φs in the target, translate the entry edge.
                let landing_block = target_fn.block_of(i)?;
                let has_phis = target_fn
                    .block(landing_block)
                    .insts
                    .first()
                    .is_some_and(|fi| target_fn.inst(*fi).kind.is_phi());
                if !has_phis {
                    return Some(Landing {
                        loc: i,
                        entry_edge: None,
                    });
                }
                // The nearest chain block (before the landing block) that
                // exists in the target and appears among the φ incomings.
                let phi_preds: Vec<crate::BlockId> =
                    match &target_fn.inst(target_fn.block(landing_block).insts[0]).kind {
                        crate::InstKind::Phi(incs) => incs.iter().map(|(p, _)| *p).collect(),
                        _ => unreachable!("has_phis"),
                    };
                let edge = chain
                    .iter()
                    .rev()
                    .skip(1) // skip the landing block itself
                    .find(|b| phi_preds.contains(b))
                    .copied();
                return edge.map(|e| Landing {
                    loc: i,
                    entry_edge: Some(e),
                });
            }
        }
        match points_fn.block(block).term {
            Terminator::Br(next) => {
                block = next;
                start = 0;
                chain.push(block);
                hops += 1;
                if hops > points_fn.block_ids().len() {
                    return None; // cycle of emptied blocks
                }
            }
            _ => return None,
        }
    }
}

/// Classifies one OSR point pair, trying `live` first and falling back to
/// `avail` (the cumulative bars of Figures 7–8).
pub fn classify_point(
    pair: &OsrPair<'_>,
    dir: Direction,
    src_loc: InstId,
    landing: Landing,
) -> PointClass {
    match pair.build_entry_with_edge(dir, src_loc, landing.loc, Variant::Live, landing.entry_edge) {
        Ok(entry) => {
            let size = entry.comp.emit_count();
            if size == 0 {
                PointClass::EmptyComp
            } else {
                PointClass::Live { comp_size: size }
            }
        }
        Err(_) => match pair.build_entry_with_edge(
            dir,
            src_loc,
            landing.loc,
            Variant::Avail,
            landing.entry_edge,
        ) {
            Ok(entry) => PointClass::Avail {
                comp_size: entry.comp.emit_count(),
                keep: entry.keep.len(),
            },
            Err(_) => PointClass::Infeasible,
        },
    }
}

/// Classifies every OSR point of the source version in direction `dir`,
/// producing the aggregate statistics of Figures 7–8 / Table 3.
pub fn classify_function(pair: &OsrPair<'_>, dir: Direction) -> FeasibilitySummary {
    let (src_fn, dst_fn) = match dir {
        Direction::Forward => (pair.base.f, pair.opt.f),
        Direction::Backward => (pair.opt.f, pair.base.f),
    };
    let mut s = FeasibilitySummary::default();
    for p in osr_points(src_fn) {
        s.total_points += 1;
        // The source location is `p` in src_fn; the landing site lives in
        // dst_fn.
        let Some(landing) = landing_site(src_fn, dst_fn, pair.cm, p) else {
            s.infeasible += 1;
            continue;
        };
        match classify_point(pair, dir, p, landing) {
            PointClass::EmptyComp => {
                s.empty += 1;
                s.live_comp_sizes.push(0);
            }
            PointClass::Live { comp_size } => {
                s.live += 1;
                s.live_comp_sizes.push(comp_size);
            }
            PointClass::Avail { comp_size, keep } => {
                s.avail += 1;
                s.avail_comp_sizes.push(comp_size);
                s.keep_sizes.push(keep);
            }
            PointClass::Infeasible => s.infeasible += 1,
        }
    }
    s
}

/// Classifies every OSR point with the §5.2 liveness extension: when the
/// `avail` variant fails at a point because a needed value was optimized
/// away entirely, the function is *re-optimized* with those values kept
/// alive (ADCE treats them as roots) and the failed points are retried —
/// the "recompile the function when the user inserts a breakpoint,
/// extending the liveness range for available values" strategy of §7.4.
///
/// Up to `max_rounds` recompilations are performed; each round adds the
/// values whose absence blocked reconstruction to the keep-set.  The
/// summary of the final round is returned.
pub fn classify_function_with_extension(
    base: &Function,
    dir: Direction,
    max_rounds: usize,
) -> FeasibilitySummary {
    use crate::passes::Pipeline;
    use crate::ValueId;
    use std::collections::BTreeSet;

    let mut keep: BTreeSet<ValueId> = BTreeSet::new();
    let mut last = FeasibilitySummary::default();
    for _round in 0..=max_rounds {
        let (opt, cm, _) = Pipeline::standard_keeping(keep.clone()).optimize(base);
        let pair = OsrPair::new(base, &opt, &cm);
        let (summary, wanted) = classify_collecting(&pair, dir);
        let new_values: BTreeSet<ValueId> = extension_candidates(base, wanted, &keep);
        last = summary;
        if new_values.is_empty() {
            break;
        }
        keep.extend(new_values);
    }
    last
}

/// Like [`classify_function`], additionally returning the values whose
/// absence made `avail` reconstruction fail (liveness-extension
/// candidates).
fn classify_collecting(
    pair: &OsrPair<'_>,
    dir: Direction,
) -> (FeasibilitySummary, Vec<crate::ValueId>) {
    use crate::reconstruct::SsaReconstructError;
    let (src_fn, dst_fn) = match dir {
        Direction::Forward => (pair.base.f, pair.opt.f),
        Direction::Backward => (pair.opt.f, pair.base.f),
    };
    let mut s = FeasibilitySummary::default();
    let mut wanted = Vec::new();
    for p in osr_points(src_fn) {
        s.total_points += 1;
        let Some(landing) = landing_site(src_fn, dst_fn, pair.cm, p) else {
            s.infeasible += 1;
            continue;
        };
        match pair.build_entry_with_edge(dir, p, landing.loc, Variant::Live, landing.entry_edge) {
            Ok(entry) if entry.comp.emit_count() == 0 => {
                s.empty += 1;
                s.live_comp_sizes.push(0);
            }
            Ok(entry) => {
                s.live += 1;
                s.live_comp_sizes.push(entry.comp.emit_count());
            }
            Err(_) => {
                match pair.build_entry_with_edge(
                    dir,
                    p,
                    landing.loc,
                    Variant::Avail,
                    landing.entry_edge,
                ) {
                    Ok(entry) => {
                        s.avail += 1;
                        s.avail_comp_sizes.push(entry.comp.emit_count());
                        s.keep_sizes.push(entry.keep.len());
                    }
                    Err(e) => {
                        s.infeasible += 1;
                        match e {
                            SsaReconstructError::PhiMultipleDefs(v)
                            | SsaReconstructError::NotAvailable(v)
                            | SsaReconstructError::CallResult(v)
                            | SsaReconstructError::MemoryUnsafe(v) => wanted.push(v),
                        }
                    }
                }
            }
        }
    }
    (s, wanted)
}

/// A precomputed OSR-entry table: the landing site and compensation code
/// for every feasible OSR point of the source version, built once so a
/// runtime transition becomes a table lookup instead of an on-demand
/// reconstruction — what a shared code cache stores next to each compiled
/// function version.
#[derive(Clone, Debug)]
pub struct EntryTable {
    /// Transfer direction the table serves.
    pub direction: Direction,
    /// Reconstruction variant used.
    pub variant: Variant,
    /// Feasible points: source location → (landing, compensation entry).
    pub entries: std::collections::BTreeMap<InstId, (Landing, crate::reconstruct::SsaEntry)>,
    /// OSR points of the source version that admit no transition.
    pub infeasible: usize,
}

impl EntryTable {
    /// The precomputed entry for source location `at`, if feasible.
    pub fn get(&self, at: InstId) -> Option<&(Landing, crate::reconstruct::SsaEntry)> {
        self.entries.get(&at)
    }

    /// Fraction of OSR points served by the table.
    pub fn coverage(&self) -> f64 {
        let total = self.entries.len() + self.infeasible;
        if total == 0 {
            return 1.0;
        }
        self.entries.len() as f64 / total as f64
    }
}

/// Precomputes the OSR mapping for every point of the source version in
/// direction `dir` — the mapping-precomputation entry point the tiered
/// engine calls at compile time, producing exactly the entries
/// [`classify_function`] classifies (validated the same way).
pub fn precompute_entries(pair: &OsrPair<'_>, dir: Direction, variant: Variant) -> EntryTable {
    precompute_entries_collecting(pair, dir, variant).0
}

/// Like [`precompute_entries`], additionally returning, per infeasible
/// point, the value whose absence made reconstruction fail there — the
/// §5.2 liveness-extension candidates a keep-set recompile loop feeds
/// back into the optimizer
/// ([`crate::passes::Pipeline::from_ids_keeping`]).  Carrying the point
/// alongside each blocker lets the caller extend the keep-set only for
/// the points it actually needs served (e.g. the backward loop-header
/// entries a deopt requires) instead of keeping every blocked point's
/// values alive.  This is the table-precompute analogue of
/// [`classify_function_with_extension`]'s collecting pass.
pub fn precompute_entries_collecting(
    pair: &OsrPair<'_>,
    dir: Direction,
    variant: Variant,
) -> (EntryTable, Vec<(InstId, crate::ValueId)>) {
    use crate::reconstruct::SsaReconstructError;
    let (src_fn, dst_fn) = match dir {
        Direction::Forward => (pair.base.f, pair.opt.f),
        Direction::Backward => (pair.opt.f, pair.base.f),
    };
    let mut entries = std::collections::BTreeMap::new();
    let mut infeasible = 0;
    let mut wanted = Vec::new();
    for p in osr_points(src_fn) {
        let Some(landing) = landing_site(src_fn, dst_fn, pair.cm, p) else {
            infeasible += 1;
            continue;
        };
        match pair.build_entry_with_edge(dir, p, landing.loc, variant, landing.entry_edge) {
            Ok(entry) => {
                entries.insert(p, (landing, entry));
            }
            Err(e) => {
                infeasible += 1;
                match e {
                    SsaReconstructError::PhiMultipleDefs(v)
                    | SsaReconstructError::NotAvailable(v)
                    | SsaReconstructError::CallResult(v)
                    | SsaReconstructError::MemoryUnsafe(v) => wanted.push((p, v)),
                }
            }
        }
    }
    (
        EntryTable {
            direction: dir,
            variant,
            entries,
            infeasible,
        },
        wanted,
    )
}

/// Filters liveness-extension candidates to the ones a keep-set recompile
/// of `base` can actually honour: values `base` defines (parameters or
/// live instructions) that are not already kept.  Shared by
/// [`classify_function_with_extension`] and engine-side recompile loops.
pub fn extension_candidates(
    base: &Function,
    wanted: impl IntoIterator<Item = crate::ValueId>,
    keep: &std::collections::BTreeSet<crate::ValueId>,
) -> std::collections::BTreeSet<crate::ValueId> {
    wanted
        .into_iter()
        .filter(|v| {
            (v.0 as usize) < base.value_count()
                && match base.value_def(*v) {
                    crate::ValueDef::Param(_) => true,
                    crate::ValueDef::Inst(i) => base.inst_is_live(i),
                }
                && !keep.contains(v)
        })
        .collect()
}

/// Composes OSR mappings through a shared intermediate program version —
/// the SSA analogue of the `osr` crate's Theorem 3.4 mapping composition
/// (`OsrMapping::compose`).
///
/// `first` is the analysis pair relating some version `A` to the
/// intermediate version `I` (`first_dir` names the `A → I` direction
/// within the pair), and `second` is a precomputed entry table mapping
/// `I`'s points into some version `B`.  The result maps `A`'s points
/// straight into `B`, so a frame running `A` transitions to `B` without
/// ever executing `I` — e.g. a version-to-version `fopt → fopt'` tier-up
/// routed through the common baseline.
///
/// Composition is *demand-driven*, which realizes Theorem 3.4's `avail`
/// refinement (`e2.keep ⊆ e1.provides()`) constructively: instead of
/// requiring a full first-stage entry (which may be infeasible because
/// dead intermediate state is formally live there), only the values the
/// second stage's compensation code actually *reads* are reconstructed
/// from the live `A` frame, one [`OsrPair::reconstruct_value`] query each
/// (the same per-variable Algorithm 1 query a symbolic debugger issues).
/// Points where any needed value cannot be reconstructed are dropped,
/// keeping the table partial-but-correct.
///
/// Step composition works on the value environment: the reconstruction
/// steps run against the live `A` frame and produce the intermediate
/// state the second stage reads; the second entry's `Transfer`s become
/// [`crate::reconstruct::CompStep::CopyDst`] reads of that state, and first-stage
/// re-emissions are captured as [`crate::reconstruct::CompStep::Inline`] (their instructions
/// live in `I`, which the composed table's consumers never see).
pub fn compose_entries(
    first: &OsrPair<'_>,
    first_dir: Direction,
    second: &EntryTable,
) -> EntryTable {
    use crate::reconstruct::{CompCode, CompStep, SsaEntry};
    use crate::ValueId;
    use std::collections::BTreeSet;

    let (src_fn, mid_fn) = match first_dir {
        Direction::Forward => (first.base.f, first.opt.f),
        Direction::Backward => (first.opt.f, first.base.f),
    };
    let mut entries = std::collections::BTreeMap::new();
    let mut infeasible = 0;
    'points: for p in osr_points(src_fn) {
        let Some(land1) = landing_site(src_fn, mid_fn, first.cm, p) else {
            infeasible += 1;
            continue;
        };
        let Some((land2, e2)) = second.get(land1.loc) else {
            infeasible += 1;
            continue;
        };
        // The intermediate values the second stage reads from "its" frame.
        let reads: Vec<ValueId> = e2
            .comp
            .steps
            .iter()
            .filter_map(|s| match s {
                CompStep::Transfer { src, .. } => Some(*src),
                _ => None,
            })
            .collect();
        let mut produced: BTreeSet<ValueId> = BTreeSet::new();
        let mut steps: Vec<CompStep> = Vec::new();
        let mut keep: BTreeSet<ValueId> = BTreeSet::new();
        for v in reads {
            if produced.contains(&v) {
                continue;
            }
            let Ok(mini) = first.reconstruct_value(first_dir, p, land1.loc, second.variant, v)
            else {
                infeasible += 1;
                continue 'points;
            };
            keep.extend(mini.keep.iter().copied());
            append_inlined(&mini, mid_fn, &mut produced, &mut steps);
        }
        // Replay the second stage over the reconstructed intermediate
        // state: its frame reads become environment copies; its emissions
        // already reference `B` and carry over unchanged.
        if !replay_second_stage(e2, &mut produced, &mut steps) {
            infeasible += 1;
            continue 'points;
        }
        entries.insert(
            p,
            (
                *land2,
                SsaEntry {
                    target: land2.loc,
                    comp: CompCode { steps },
                    keep,
                },
            ),
        );
    }
    EntryTable {
        direction: second.direction,
        variant: second.variant,
        entries,
        infeasible,
    }
}

/// Replays a second-stage entry's compensation over a composed
/// environment (the shared tail of [`compose_entries`] and
/// [`compose_table_pair`]): frame reads (`Transfer`) become environment
/// copies and must have been produced by the first stage; every other
/// step — emissions already reference the final target version — carries
/// over unchanged.  Returns `false` when a read is unproduced (the point
/// is infeasible and must be dropped).
fn replay_second_stage(
    e2: &crate::reconstruct::SsaEntry,
    produced: &mut std::collections::BTreeSet<crate::ValueId>,
    steps: &mut Vec<crate::reconstruct::CompStep>,
) -> bool {
    use crate::reconstruct::CompStep;
    for step in &e2.comp.steps {
        match step {
            CompStep::Transfer { src, dst } => {
                if !produced.contains(src) {
                    return false;
                }
                produced.insert(*dst);
                steps.push(CompStep::CopyDst {
                    from: *src,
                    to: *dst,
                });
            }
            other => {
                if let CompStep::CopyDst { to, .. } = other {
                    produced.insert(*to);
                }
                steps.push(other.clone());
            }
        }
    }
    true
}

/// Composes two *precomputed* entry tables — the table-level Theorem 3.4:
/// `first` maps version `A`'s points into an intermediate version `M`
/// (its landings are `M` locations), `second` maps `M`'s points into some
/// version `B`.  The result maps `A`'s points straight into `B`.
///
/// Unlike [`compose_entries`] (which reconstructs intermediate values on
/// demand from the recorded actions), this works purely on the two
/// compensation programs: the first entry's steps run against the live
/// `A` frame and produce the `M` state the second entry reads, so the
/// second entry's `Transfer`s become environment copies
/// ([`crate::reconstruct::CompStep::CopyDst`]) and its emissions (which
/// already reference `B`) carry over unchanged.  First-stage emissions
/// reference `M` — whose instructions the composed table's consumers
/// never see — and are captured inline, which is why the `M` function
/// `mid` is needed.  Points whose second stage reads an `M` value the
/// first stage does not produce are dropped (partial-but-correct, as in
/// [`compose_entries`]).
pub fn compose_table_pair(first: &EntryTable, mid: &Function, second: &EntryTable) -> EntryTable {
    use crate::reconstruct::{CompCode, CompStep, SsaEntry};

    let mut entries = std::collections::BTreeMap::new();
    let mut infeasible = first.infeasible;
    'points: for (p, (land1, e1)) in &first.entries {
        let Some((land2, e2)) = second.get(land1.loc) else {
            infeasible += 1;
            continue;
        };
        let mut produced: std::collections::BTreeSet<crate::ValueId> = Default::default();
        let mut steps: Vec<CompStep> = Vec::new();
        // The composed entry's keep names *A*-version values (its
        // compensation reads only the `A` frame): carry the first
        // stage's keep and drop `e2.keep`, whose ids live in `M`'s value
        // space and would alias unrelated `A` values.
        let keep = e1.keep.clone();
        append_inlined(e1, mid, &mut produced, &mut steps);
        if !replay_second_stage(e2, &mut produced, &mut steps) {
            infeasible += 1;
            continue 'points;
        }
        entries.insert(
            *p,
            (
                *land2,
                SsaEntry {
                    target: land2.loc,
                    comp: CompCode { steps },
                    keep,
                },
            ),
        );
    }
    EntryTable {
        direction: second.direction,
        variant: second.variant,
        entries,
        infeasible,
    }
}

/// Folds Theorem 3.4 over a whole chain of program versions instead of a
/// single pair: `first`/`first_dir` relate version `A` to the shared
/// intermediate (as in [`compose_entries`]), and each `stages[k]` is
/// `(source version of the stage table, the stage table)` — stage `0`'s
/// table maps the intermediate's points into `V1`, stage `1`'s maps
/// `V1`'s points into `V2`, and so on.
///
/// Returns every *prefix* of the fold: element `k` maps `A`'s points
/// straight into `V(k+1)`.  Callers memoize the prefixes (a tiered
/// engine caches each as the composed table for the corresponding rung
/// pair), so extending a chain by one rung costs exactly one more
/// [`compose_table_pair`] fold, never a recomposition from scratch.
///
/// The first fold step is the demand-driven [`compose_entries`] (best
/// coverage: it reconstructs only what stage 0 reads); the remaining
/// steps are table-level [`compose_table_pair`] folds.
pub fn compose_entries_chain(
    first: &OsrPair<'_>,
    first_dir: Direction,
    stages: &[(&Function, &EntryTable)],
) -> Vec<EntryTable> {
    let mut prefixes: Vec<EntryTable> = Vec::with_capacity(stages.len());
    for (stage_src, table) in stages {
        let next = match prefixes.last() {
            None => compose_entries(first, first_dir, table),
            Some(prev) => compose_table_pair(prev, stage_src, table),
        };
        prefixes.push(next);
    }
    prefixes
}

/// Appends one reconstruction entry's steps to a composed step list,
/// skipping values already produced (reconstruction is deterministic, so
/// a duplicate step would redefine the same value with the same content)
/// and capturing intermediate-function emissions inline.
fn append_inlined(
    entry: &crate::reconstruct::SsaEntry,
    intermediate: &Function,
    produced: &mut std::collections::BTreeSet<crate::ValueId>,
    steps: &mut Vec<crate::reconstruct::CompStep>,
) {
    use crate::reconstruct::CompStep;
    for step in &entry.comp.steps {
        match step {
            CompStep::Transfer { dst, .. } => {
                if produced.insert(*dst) {
                    steps.push(step.clone());
                }
            }
            CompStep::CopyDst { to, .. } => {
                if produced.insert(*to) {
                    steps.push(step.clone());
                }
            }
            CompStep::Emit { inst } | CompStep::Materialize { inst } => {
                let data = intermediate.inst(*inst);
                let fresh = data.result.is_none_or(|r| produced.insert(r));
                if fresh {
                    steps.push(CompStep::Inline {
                        kind: data.kind.clone(),
                        result: data.result,
                    });
                }
            }
            CompStep::Inline { result, .. } => {
                let fresh = result.is_none_or(|r| produced.insert(r));
                if fresh {
                    steps.push(step.clone());
                }
            }
        }
    }
}

/// The Table 2 row for one benchmark: IR sizes and recorded action counts.
#[derive(Clone, Debug)]
pub struct IrFeatures {
    /// `|f_base|`.
    pub base_insts: usize,
    /// `|φ_base|`.
    pub base_phis: usize,
    /// `|f_opt|`.
    pub opt_insts: usize,
    /// `|φ_opt|`.
    pub opt_phis: usize,
    /// Primitive actions recorded during optimization.
    pub actions: osr::ActionCounts,
}

/// Collects the Table 2 metrics for a `(base, opt, mapper)` triple.
pub fn ir_features(base: &Function, opt: &Function, cm: &SsaMapper) -> IrFeatures {
    IrFeatures {
        base_insts: base.live_inst_count(),
        base_phis: base.phi_count(),
        opt_insts: opt.live_inst_count(),
        opt_phis: opt.phi_count(),
        actions: cm.counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(super) fn sample_for_debug() -> Function {
        sample()
    }
    use crate::passes::Pipeline;
    use crate::{BinOp, FunctionBuilder, InstKind, Ty};

    fn sample() -> Function {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64), ("n", Ty::I64)]);
        let x = b.param(0);
        let n = b.param(1);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let s = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let t = b.binop(BinOp::Mul, x, x);
        let dup = b.binop(BinOp::Mul, x, x); // CSE fodder
        let t2 = b.binop(BinOp::Add, t, dup);
        let s2 = b.binop(BinOp::Add, s, t2);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        let phi_i = f.block(header).insts[0];
        let phi_s = f.block(header).insts[1];
        f.inst_mut(phi_i).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        f.inst_mut(phi_s).kind = InstKind::Phi(vec![(entry, zero), (body, s2)]);
        crate::verify(&f).unwrap();
        f
    }

    #[test]
    fn classify_both_directions() {
        let base = sample();
        let (opt, cm, _) = Pipeline::standard().optimize(&base);
        let pair = OsrPair::new(&base, &opt, &cm);
        let fwd = classify_function(&pair, Direction::Forward);
        let bwd = classify_function(&pair, Direction::Backward);
        assert_eq!(fwd.total_points, osr_points(&base).len());
        assert_eq!(bwd.total_points, osr_points(&opt).len());
        // The paper's headline: avail brings feasibility close to 100%.
        assert!(
            fwd.frac_avail() > 0.8,
            "forward: {:?} (of {})",
            (fwd.empty, fwd.live, fwd.avail, fwd.infeasible),
            fwd.total_points
        );
        assert!(
            bwd.frac_avail() > 0.8,
            "backward: {:?} (of {})",
            (bwd.empty, bwd.live, bwd.avail, bwd.infeasible),
            bwd.total_points
        );
    }

    #[test]
    fn landing_site_skips_deleted_and_moved() {
        let base = sample();
        let (opt, cm, _) = Pipeline::standard().optimize(&base);
        // Find a base instruction deleted in opt (the CSE duplicate).
        let deleted = osr_points(&base)
            .into_iter()
            .find(|i| !opt.inst_is_live(*i));
        if let Some(d) = deleted {
            let l = landing_site(&base, &opt, &cm, d);
            assert!(l.is_some(), "deleted point must find a later landing site");
            assert_ne!(l.unwrap().loc, d);
        }
        // A moved instruction never anchors itself.
        let moved = osr_points(&base).into_iter().find(|i| cm.is_moved(*i));
        if let Some(mv) = moved {
            if let Some(l) = landing_site(&base, &opt, &cm, mv) {
                assert_ne!(l.loc, mv);
            }
        }
    }

    #[test]
    fn precomputed_entries_match_classification() {
        let base = sample();
        let (opt, cm, _) = Pipeline::standard().optimize(&base);
        let pair = OsrPair::new(&base, &opt, &cm);
        for dir in [Direction::Forward, Direction::Backward] {
            let table = precompute_entries(&pair, dir, Variant::Avail);
            let summary = classify_function(&pair, dir);
            assert_eq!(
                table.entries.len() + table.infeasible,
                summary.total_points,
                "{dir:?}: table covers every OSR point"
            );
            assert!(table.coverage() > 0.8, "{dir:?}: avail serves most points");
            // Each precomputed entry must match an on-demand reconstruction.
            for (at, (landing, entry)) in &table.entries {
                let fresh = pair
                    .build_entry_with_edge(
                        dir,
                        *at,
                        landing.loc,
                        Variant::Avail,
                        landing.entry_edge,
                    )
                    .expect("feasible point rebuilds");
                assert_eq!(&fresh, entry, "{dir:?} entry at {at} is stable");
            }
        }
    }

    #[test]
    fn collecting_precompute_matches_and_names_blockers() {
        let base = sample();
        let (opt, cm, _) = Pipeline::standard().optimize(&base);
        let pair = OsrPair::new(&base, &opt, &cm);
        for dir in [Direction::Forward, Direction::Backward] {
            let plain = precompute_entries(&pair, dir, Variant::Avail);
            let (collected, wanted) = precompute_entries_collecting(&pair, dir, Variant::Avail);
            assert_eq!(plain.entries.len(), collected.entries.len(), "{dir:?}");
            assert_eq!(plain.infeasible, collected.infeasible, "{dir:?}");
            // Every named blocker is attached to an infeasible point;
            // candidates filter to the values a keep-set recompile can
            // honour.
            for (p, _) in &wanted {
                assert!(collected.get(*p).is_none(), "{dir:?}: blocker at {p}");
            }
            let candidates =
                extension_candidates(&base, wanted.iter().map(|(_, v)| *v), &Default::default());
            assert!(candidates.len() <= wanted.len());
            for v in &candidates {
                assert!((v.0 as usize) < base.value_count());
            }
        }
    }

    #[test]
    fn aggressive_pipeline_optimizes_and_stays_feasible() {
        let base = sample();
        let (opt, cm, _) = Pipeline::aggressive().optimize(&base);
        crate::verify(&opt).expect("aggressive output verifies");
        let pair = OsrPair::new(&base, &opt, &cm);
        for dir in [Direction::Forward, Direction::Backward] {
            let table = precompute_entries(&pair, dir, Variant::Avail);
            assert!(
                table.coverage() > 0.7,
                "{dir:?}: the extra SCCP+sink round keeps most points feasible"
            );
        }
        assert!(
            opt.live_inst_count() <= Pipeline::standard().optimize(&base).0.live_inst_count(),
            "the second round never grows the artifact"
        );
    }

    /// Runs `src_fn` until `at` is visited a second (else first) time,
    /// applies `entry`'s compensation to the live frame, finishes in
    /// `dst_fn` from the landing, and compares against a pure `src_fn`
    /// run — a one-point differential replay.
    fn replay_point(
        src_fn: &Function,
        dst_fn: &Function,
        at: InstId,
        landing: &Landing,
        entry: &crate::reconstruct::SsaEntry,
    ) -> Option<bool> {
        use crate::interp::{run_frame, run_function, Frame, Machine, StepOutcome, Val};
        use crate::reconstruct::apply_comp;
        let module = crate::ir::Module::default();
        let args: Vec<Val> = (0..src_fn.params.len())
            .map(|i| Val::Int(3 + i as i64))
            .collect();
        for visit_target in [2usize, 1] {
            let mut machine = Machine::new(1_000_000);
            let mut frame = Frame::enter(src_fn, &args);
            let seen = std::cell::Cell::new(0usize);
            let outcome = run_frame(
                src_fn,
                &mut frame,
                &mut machine,
                &module,
                Some(&|_f, _fr, i| {
                    if i == at {
                        seen.set(seen.get() + 1);
                        seen.get() == visit_target
                    } else {
                        false
                    }
                }),
            );
            let Ok(StepOutcome::Paused { .. }) = outcome else {
                continue;
            };
            let expected = run_function(src_fn, &args, &module, 1_000_000).ok()?;
            let env = apply_comp(entry, dst_fn, &frame.values, &mut machine).ok()?;
            let block = dst_fn.block_of(landing.loc)?;
            let index = dst_fn
                .block(block)
                .insts
                .iter()
                .position(|i| *i == landing.loc)?;
            let mut dframe = Frame {
                values: env,
                block,
                index,
                came_from: None,
            };
            let got = match run_frame(dst_fn, &mut dframe, &mut machine, &module, None) {
                Ok(StepOutcome::Returned(v)) => v,
                _ => return Some(false),
            };
            return Some(got == expected);
        }
        None
    }

    #[test]
    fn chain_composition_folds_theorem_3_4_over_three_rungs() {
        let base = sample();
        let (o1, cm1, _) = Pipeline::light().optimize(&base);
        let (o2, cm2, _) = Pipeline::standard().optimize(&base);
        let (o3, cm3, _) = Pipeline::aggressive().optimize(&base);
        let pair1 = OsrPair::new(&base, &o1, &cm1);
        let pair2 = OsrPair::new(&base, &o2, &cm2);
        let pair3 = OsrPair::new(&base, &o3, &cm3);
        let up2 = precompute_entries(&pair2, Direction::Forward, Variant::Avail);
        let up3 = precompute_entries(&pair3, Direction::Forward, Variant::Avail);
        // Adjacent composed hop O2 → O3 (through the shared baseline).
        let o2_to_o3 = compose_entries(&pair2, Direction::Backward, &up3);
        assert!(!o2_to_o3.entries.is_empty(), "adjacent composition serves");

        // The chain O1 → O2 → O3, every prefix returned.
        let prefixes = compose_entries_chain(
            &pair1,
            Direction::Backward,
            &[(&base, &up2), (&o2, &o2_to_o3)],
        );
        assert_eq!(prefixes.len(), 2, "one prefix per stage");
        // Prefix 0 is exactly the single-pair composition.
        let direct = compose_entries(&pair1, Direction::Backward, &up2);
        assert_eq!(
            prefixes[0].entries.keys().collect::<Vec<_>>(),
            direct.entries.keys().collect::<Vec<_>>(),
            "a one-stage chain is the plain composition"
        );
        // Prefix 1 maps O1's points straight into O3.
        let chained = &prefixes[1];
        assert!(
            !chained.entries.is_empty(),
            "the chained O1→O3 table serves points"
        );
        let mut replayed = 0;
        for (at, (landing, entry)) in &chained.entries {
            if let Some(ok) = replay_point(&o1, &o3, *at, landing, entry) {
                assert!(ok, "chained entry at {at} diverged");
                replayed += 1;
            }
        }
        assert!(
            replayed > 0,
            "at least one chained entry replays concretely"
        );
    }

    #[test]
    fn ir_features_counts() {
        let base = sample();
        let (opt, cm, stats) = Pipeline::standard().optimize(&base);
        let feat = ir_features(&base, &opt, &cm);
        assert!(feat.base_insts > feat.opt_insts, "CSE/hoisting shrink f");
        assert_eq!(feat.base_phis, 2);
        assert!(feat.actions.total() > 0);
        assert!(stats.iter().any(|s| s.changed));
    }
}

#[cfg(test)]
mod debug_tests {
    use super::*;
    use crate::passes::Pipeline;
    use crate::reconstruct::Variant;
    use crate::{BinOp, FunctionBuilder, InstKind, Ty};

    #[test]
    fn dump_backward_classification() {
        let base = super::tests::sample_for_debug();
        let (opt, cm, _) = Pipeline::standard().optimize(&base);
        println!("BASE:\n{base}\nOPT:\n{opt}");
        let pair = OsrPair::new(&base, &opt, &cm);
        for p in osr_points(&opt) {
            let dst = landing_site(&opt, &base, &cm, p);
            match dst {
                None => println!("{p}: no landing"),
                Some(d) => {
                    let live = pair.build_entry_with_edge(
                        Direction::Backward,
                        p,
                        d.loc,
                        Variant::Live,
                        d.entry_edge,
                    );
                    let avail = pair.build_entry_with_edge(
                        Direction::Backward,
                        p,
                        d.loc,
                        Variant::Avail,
                        d.entry_edge,
                    );
                    println!(
                        "{p} -> {d:?}: live={:?} avail={:?}",
                        live.as_ref()
                            .map(|e| e.comp.emit_count())
                            .map_err(|e| e.to_string()),
                        avail
                            .as_ref()
                            .map(|e| e.comp.emit_count())
                            .map_err(|e| e.to_string())
                    );
                }
            }
        }
        let _ = (BinOp::Add, InstKind::Const(0), Ty::I64);
        let _ = FunctionBuilder::new("x", &[]);
    }
}
