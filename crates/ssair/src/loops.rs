//! Natural-loop detection.

use std::collections::BTreeSet;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, Terminator};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header.
    pub header: BlockId,
    /// All blocks of the loop (header included).
    pub blocks: BTreeSet<BlockId>,
    /// Blocks with a back edge to the header.
    pub latches: Vec<BlockId>,
    /// The unique preheader, if the loop is in canonical form.
    pub preheader: Option<BlockId>,
    /// Blocks outside the loop that are targets of edges leaving it.
    pub exits: Vec<BlockId>,
}

/// All natural loops of a function.
#[derive(Clone, Debug, Default)]
pub struct LoopInfo {
    /// Loops, outermost-first by header RPO position.
    pub loops: Vec<Loop>,
}

impl LoopInfo {
    /// Detects natural loops via back edges (`u → h` with `h` dominating
    /// `u`), merging loops that share a header.
    pub fn compute(f: &Function, cfg: &Cfg, dt: &DomTree) -> LoopInfo {
        let mut loops: Vec<Loop> = Vec::new();
        for &u in &cfg.rpo {
            for &h in cfg.succs_of(u) {
                if dt.is_reachable(h) && dt.dominates(h, u) {
                    // Back edge u → h; collect the natural loop.
                    let mut blocks = BTreeSet::from([h]);
                    let mut work = vec![u];
                    while let Some(b) = work.pop() {
                        if blocks.insert(b) {
                            for &p in cfg.preds_of(b) {
                                if dt.is_reachable(p) {
                                    work.push(p);
                                }
                            }
                        }
                    }
                    match loops.iter_mut().find(|l| l.header == h) {
                        Some(l) => {
                            l.blocks.extend(blocks);
                            l.latches.push(u);
                        }
                        None => loops.push(Loop {
                            header: h,
                            blocks,
                            latches: vec![u],
                            preheader: None,
                            exits: Vec::new(),
                        }),
                    }
                }
            }
        }
        for l in &mut loops {
            l.preheader = find_preheader(f, cfg, l);
            l.exits = l
                .blocks
                .iter()
                .flat_map(|b| cfg.succs_of(*b).to_vec())
                .filter(|s| !l.blocks.contains(s))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
        }
        // Outermost loops first: sort by block count descending.
        loops.sort_by_key(|l| std::cmp::Reverse(l.blocks.len()));
        LoopInfo { loops }
    }

    /// The innermost loop containing block `b`, if any.
    pub fn innermost_containing(&self, b: BlockId) -> Option<&Loop> {
        self.loops
            .iter()
            .filter(|l| l.blocks.contains(&b))
            .min_by_key(|l| l.blocks.len())
    }

    /// The loop headed at `h`, if any.
    pub fn loop_with_header(&self, h: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == h)
    }
}

/// A preheader is the unique out-of-loop predecessor of the header, valid
/// only if it branches unconditionally to the header.
fn find_preheader(f: &Function, cfg: &Cfg, l: &Loop) -> Option<BlockId> {
    let outside: Vec<BlockId> = cfg
        .preds_of(l.header)
        .iter()
        .copied()
        .filter(|p| !l.blocks.contains(p))
        .collect();
    match outside.as_slice() {
        [p] => match f.block(*p).term {
            Terminator::Br(t) if t == l.header => Some(*p),
            _ => None,
        },
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, FunctionBuilder, InstKind, Ty};

    fn loop_fn() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("l", &[("n", Ty::I64)]);
        let n = b.param(0);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let mut f = b.finish();
        let phi_inst = f.block(header).insts[0];
        f.inst_mut(phi_inst).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        (f, entry, header, body, exit)
    }

    #[test]
    fn detects_simple_loop() {
        let (f, entry, header, body, exit) = loop_fn();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dt);
        assert_eq!(li.loops.len(), 1);
        let l = &li.loops[0];
        assert_eq!(l.header, header);
        assert_eq!(l.blocks, BTreeSet::from([header, body]));
        assert_eq!(l.latches, vec![body]);
        assert_eq!(l.preheader, Some(entry));
        assert_eq!(l.exits, vec![exit]);
        assert!(li.innermost_containing(body).is_some());
        assert!(li.innermost_containing(exit).is_none());
    }

    #[test]
    fn no_loops_in_dag() {
        let mut b = FunctionBuilder::new("dag", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let j = b.create_block("j");
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        let li = LoopInfo::compute(&f, &cfg, &dt);
        assert!(li.loops.is_empty());
    }
}
