//! Control-flow-graph utilities: successors, predecessors, reverse
//! post-order, and reachability.

use std::collections::BTreeMap;

use crate::ir::{BlockId, Function};

/// Precomputed CFG relations for one function.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successor lists.
    pub succs: BTreeMap<BlockId, Vec<BlockId>>,
    /// Predecessor lists.
    pub preds: BTreeMap<BlockId, Vec<BlockId>>,
    /// Blocks in reverse post-order from the entry (unreachable blocks are
    /// absent).
    pub rpo: Vec<BlockId>,
}

impl Cfg {
    /// Computes the CFG of `f`.
    pub fn compute(f: &Function) -> Cfg {
        let mut succs: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        let mut preds: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for b in f.block_ids() {
            preds.entry(b).or_default();
        }
        for b in f.block_ids() {
            let ss = f.block(b).term.successors();
            for s in &ss {
                preds.entry(*s).or_default().push(b);
            }
            succs.insert(b, ss);
        }
        // Post-order DFS from entry.
        let mut post = Vec::new();
        let mut state: BTreeMap<BlockId, u8> = BTreeMap::new(); // 0 unseen, 1 visiting, 2 done
        let mut stack = vec![(f.entry, 0usize)];
        state.insert(f.entry, 1);
        while let Some((b, child)) = stack.pop() {
            let ss = &succs[&b];
            if child < ss.len() {
                stack.push((b, child + 1));
                let s = ss[child];
                if state.get(&s).copied().unwrap_or(0) == 0 {
                    state.insert(s, 1);
                    stack.push((s, 0));
                }
            } else {
                state.insert(b, 2);
                post.push(b);
            }
        }
        post.reverse();
        Cfg {
            succs,
            preds,
            rpo: post,
        }
    }

    /// Predecessors of `b` (empty for unknown blocks).
    pub fn preds_of(&self, b: BlockId) -> &[BlockId] {
        self.preds.get(&b).map_or(&[], Vec::as_slice)
    }

    /// Successors of `b`.
    pub fn succs_of(&self, b: BlockId) -> &[BlockId] {
        self.succs.get(&b).map_or(&[], Vec::as_slice)
    }

    /// Whether `b` is reachable from the entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo.contains(&b)
    }

    /// The set of blocks on some path from `from` to `to` (inclusive),
    /// i.e. reachable from `from` and co-reachable from `to`.
    pub fn blocks_between(&self, from: BlockId, to: BlockId) -> Vec<BlockId> {
        let fwd = self.reachable_from(from);
        let bwd = self.co_reachable(to);
        fwd.into_iter().filter(|b| bwd.contains(b)).collect()
    }

    /// Blocks reachable from `b` (including `b`).
    pub fn reachable_from(&self, b: BlockId) -> Vec<BlockId> {
        let mut seen = vec![b];
        let mut work = vec![b];
        while let Some(x) = work.pop() {
            for &s in self.succs_of(x) {
                if !seen.contains(&s) {
                    seen.push(s);
                    work.push(s);
                }
            }
        }
        seen
    }

    /// Blocks from which `b` is reachable (including `b`).
    pub fn co_reachable(&self, b: BlockId) -> Vec<BlockId> {
        let mut seen = vec![b];
        let mut work = vec![b];
        while let Some(x) = work.pop() {
            for &p in self.preds_of(x) {
                if !seen.contains(&p) {
                    seen.push(p);
                    work.push(p);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Ty};

    fn diamond() -> (Function, [BlockId; 4]) {
        let mut b = FunctionBuilder::new("d", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        let entry = b.current_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        (b.finish(), [entry, t, e, j])
    }

    #[test]
    fn diamond_relations() {
        let (f, [entry, t, e, j]) = diamond();
        let cfg = Cfg::compute(&f);
        assert_eq!(cfg.succs_of(entry), &[t, e]);
        assert_eq!(cfg.preds_of(j), &[t, e]);
        assert_eq!(cfg.rpo[0], entry);
        assert_eq!(*cfg.rpo.last().unwrap(), j);
        assert_eq!(cfg.rpo.len(), 4);
    }

    #[test]
    fn blocks_between_diamond() {
        let (f, [entry, t, _e, j]) = diamond();
        let cfg = Cfg::compute(&f);
        let mut between = cfg.blocks_between(entry, j);
        between.sort();
        assert_eq!(between.len(), 4);
        let mut tt = cfg.blocks_between(t, j);
        tt.sort();
        assert_eq!(tt, vec![t, j]);
    }

    #[test]
    fn unreachable_excluded_from_rpo() {
        let mut b = FunctionBuilder::new("u", &[]);
        let dead = b.create_block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo.len(), 1);
    }
}
