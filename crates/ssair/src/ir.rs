//! The SSA intermediate representation: functions, blocks, instructions,
//! and values.
//!
//! Identifiers are stable: cloning a function for optimization preserves
//! every id, and deleting an instruction removes it from its block but
//! keeps its id meaningful (tombstoned), so the `CodeMapper` can express
//! correspondences between the base and optimized versions by id.

use std::collections::BTreeMap;
use std::fmt;

/// An SSA value: a parameter or an instruction result.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ValueId(pub u32);

/// An instruction identity — also the OSR notion of *program location*
/// (the point just before the instruction executes).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InstId(pub u32);

/// A basic block.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockId(pub u32);

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

impl fmt::Display for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Debug for InstId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "i{}", self.0)
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

impl fmt::Debug for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb{}", self.0)
    }
}

/// Value types: 64-bit integers and opaque pointers (alloca addresses).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Ty {
    /// 64-bit signed integer.
    I64,
    /// Pointer into an alloca.
    Ptr,
}

/// Binary operators (arithmetic and comparison; comparisons yield 0/1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division (division by zero yields 0).
    Div,
    /// Remainder (modulo zero yields 0).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (by low 6 bits).
    Shl,
    /// Arithmetic right shift (by low 6 bits).
    Shr,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Disequality comparison.
    Ne,
}

impl BinOp {
    /// Applies the operator to two integers.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a / b
                }
            }
            BinOp::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a % b
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => a.wrapping_shl((b & 63) as u32),
            BinOp::Shr => a.wrapping_shr((b & 63) as u32),
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
        }
    }

    /// Whether the operator is commutative (used by CSE value numbering).
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Eq | BinOp::Ne
        )
    }

    /// Surface syntax.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Lt => "lt",
            BinOp::Le => "le",
            BinOp::Gt => "gt",
            BinOp::Ge => "ge",
            BinOp::Eq => "eq",
            BinOp::Ne => "ne",
        }
    }
}

/// Instruction opcodes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum InstKind {
    /// Integer constant.
    Const(i64),
    /// Binary operation.
    Binop(BinOp, ValueId, ValueId),
    /// Arithmetic negation.
    Neg(ValueId),
    /// Logical negation (0 → 1, non-zero → 0).
    Not(ValueId),
    /// `select cond, a, b` — `a` if `cond ≠ 0` else `b`.
    Select {
        /// Condition value.
        cond: ValueId,
        /// Value when the condition is non-zero.
        then_v: ValueId,
        /// Value when the condition is zero.
        else_v: ValueId,
    },
    /// SSA φ-node: one incoming value per predecessor block.
    Phi(Vec<(BlockId, ValueId)>),
    /// Stack allocation of `size` 64-bit cells; `name` carries the source
    /// variable for debug metadata.
    Alloca {
        /// Number of 64-bit cells.
        size: u32,
        /// Source-variable name, if this slot backs a named variable.
        name: Option<String>,
    },
    /// Load a cell through a pointer.
    Load {
        /// Address to load from.
        addr: ValueId,
    },
    /// Store a value through a pointer (no result).
    Store {
        /// Address to store to.
        addr: ValueId,
        /// Value stored.
        value: ValueId,
    },
    /// Pointer arithmetic: `base + index` cells.
    Gep {
        /// Base pointer.
        base: ValueId,
        /// Cell index.
        index: ValueId,
    },
    /// Call a module function (returns an i64).
    Call {
        /// Callee name.
        callee: String,
        /// Argument values.
        args: Vec<ValueId>,
    },
    /// Transparent debug binding: "source variable `var` currently holds
    /// `value`" (the `llvm.dbg.value` analogue, §7.2).  No result; ignored
    /// by optimizations except for operand rewriting.
    DbgValue {
        /// Source-variable name.
        var: String,
        /// Current SSA value of the variable.
        value: ValueId,
    },
}

impl InstKind {
    /// Whether the instruction produces a result value.
    pub fn has_result(&self) -> bool {
        !matches!(self, InstKind::Store { .. } | InstKind::DbgValue { .. })
    }

    /// Whether the instruction may write memory or have externally visible
    /// effects (and therefore anchors ADCE and blocks reordering).
    pub fn has_side_effects(&self) -> bool {
        matches!(self, InstKind::Store { .. } | InstKind::Call { .. })
    }

    /// Whether the instruction reads memory.
    pub fn reads_memory(&self) -> bool {
        matches!(self, InstKind::Load { .. } | InstKind::Call { .. })
    }

    /// Whether this is a φ-node.
    pub fn is_phi(&self) -> bool {
        matches!(self, InstKind::Phi(_))
    }

    /// Whether this is a transparent debug pseudo-instruction.
    pub fn is_dbg(&self) -> bool {
        matches!(self, InstKind::DbgValue { .. })
    }

    /// The operand values, in a fixed order.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            InstKind::Const(_) | InstKind::Alloca { .. } => vec![],
            InstKind::Binop(_, a, b) => vec![*a, *b],
            InstKind::Neg(a) | InstKind::Not(a) => vec![*a],
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => vec![*cond, *then_v, *else_v],
            InstKind::Phi(incs) => incs.iter().map(|(_, v)| *v).collect(),
            InstKind::Load { addr } => vec![*addr],
            InstKind::Store { addr, value } => vec![*addr, *value],
            InstKind::Gep { base, index } => vec![*base, *index],
            InstKind::Call { args, .. } => args.clone(),
            InstKind::DbgValue { value, .. } => vec![*value],
        }
    }

    /// Rewrites every operand equal to `old` into `new` (RAUW support).
    pub fn replace_operand(&mut self, old: ValueId, new: ValueId) {
        let r = |v: &mut ValueId| {
            if *v == old {
                *v = new;
            }
        };
        match self {
            InstKind::Const(_) | InstKind::Alloca { .. } => {}
            InstKind::Binop(_, a, b) => {
                r(a);
                r(b);
            }
            InstKind::Neg(a) | InstKind::Not(a) => r(a),
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => {
                r(cond);
                r(then_v);
                r(else_v);
            }
            InstKind::Phi(incs) => {
                for (_, v) in incs {
                    r(v);
                }
            }
            InstKind::Load { addr } => r(addr),
            InstKind::Store { addr, value } => {
                r(addr);
                r(value);
            }
            InstKind::Gep { base, index } => {
                r(base);
                r(index);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    r(a);
                }
            }
            InstKind::DbgValue { value, .. } => r(value),
        }
    }

    /// Rewrites every operand through `f` **simultaneously**: each original
    /// operand is mapped exactly once.  Unlike a sequence of
    /// [`InstKind::replace_operand`] calls, a rewritten operand can never
    /// be captured by a later rewrite — which matters whenever the old and
    /// new value-id spaces overlap (e.g. when cloning a function region
    /// into a fresh id space).
    pub fn map_operands(&mut self, mut f: impl FnMut(ValueId) -> ValueId) {
        match self {
            InstKind::Const(_) | InstKind::Alloca { .. } => {}
            InstKind::Binop(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Neg(a) | InstKind::Not(a) => *a = f(*a),
            InstKind::Select {
                cond,
                then_v,
                else_v,
            } => {
                *cond = f(*cond);
                *then_v = f(*then_v);
                *else_v = f(*else_v);
            }
            InstKind::Phi(incs) => {
                for (_, v) in incs {
                    *v = f(*v);
                }
            }
            InstKind::Load { addr } => *addr = f(*addr),
            InstKind::Store { addr, value } => {
                *addr = f(*addr);
                *value = f(*value);
            }
            InstKind::Gep { base, index } => {
                *base = f(*base);
                *index = f(*index);
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstKind::DbgValue { value, .. } => *value = f(*value),
        }
    }
}

/// An instruction: opcode, optional result, optional source line.
#[derive(Clone, PartialEq, Debug)]
pub struct InstData {
    /// The opcode and operands.
    pub kind: InstKind,
    /// The result value, if the instruction produces one.
    pub result: Option<ValueId>,
    /// Source line (breakpoint location) this instruction belongs to.
    pub line: Option<u32>,
}

/// Block terminators.
#[derive(Clone, PartialEq, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Two-way conditional branch on a value (non-zero → `then_bb`).
    CondBr {
        /// Branch condition.
        cond: ValueId,
        /// Target when the condition is non-zero.
        then_bb: BlockId,
        /// Target when the condition is zero.
        else_bb: BlockId,
    },
    /// Function return.
    Ret(Option<ValueId>),
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if then_bb == else_bb {
                    vec![*then_bb]
                } else {
                    vec![*then_bb, *else_bb]
                }
            }
            Terminator::Ret(_) => vec![],
        }
    }

    /// Values the terminator reads.
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Terminator::Br(_) => vec![],
            Terminator::CondBr { cond, .. } => vec![*cond],
            Terminator::Ret(v) => v.iter().copied().collect(),
        }
    }

    /// Rewrites operand `old` into `new`.
    pub fn replace_operand(&mut self, old: ValueId, new: ValueId) {
        match self {
            Terminator::CondBr { cond, .. } if *cond == old => *cond = new,
            Terminator::Ret(Some(v)) if *v == old => *v = new,
            _ => {}
        }
    }

    /// Retargets branches to `old` so they go to `new`.
    pub fn retarget(&mut self, old: BlockId, new: BlockId) {
        match self {
            Terminator::Br(b) => {
                if *b == old {
                    *b = new;
                }
            }
            Terminator::CondBr {
                then_bb, else_bb, ..
            } => {
                if *then_bb == old {
                    *then_bb = new;
                }
                if *else_bb == old {
                    *else_bb = new;
                }
            }
            Terminator::Ret(_) => {}
        }
    }
}

/// A basic block: ordered instruction list plus terminator.
#[derive(Clone, PartialEq, Debug)]
pub struct BlockData {
    /// Human-readable label.
    pub name: String,
    /// Instructions in execution order (φ-nodes first).
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub term: Terminator,
}

/// Where a value comes from.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueDef {
    /// The `i`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// An SSA function.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Function name.
    pub name: String,
    /// Parameter names and types; parameter `i` is value `ValueId(i)`.
    pub params: Vec<(String, Ty)>,
    /// Entry block.
    pub entry: BlockId,
    blocks: Vec<Option<BlockData>>,
    insts: Vec<InstData>,
    values: Vec<ValueDef>,
    inst_block: Vec<Option<BlockId>>,
    /// Emission order of the live blocks.  Empty means creation order (the
    /// frontend default); a layout pass installs an explicit permutation
    /// via [`Function::set_layout`].  Purely a code-placement property:
    /// semantics, dominance, and the CFG are unaffected, but everything
    /// that walks [`Function::block_ids`] — display, machine lowering —
    /// sees this order.
    layout: Vec<BlockId>,
}

impl Function {
    pub(crate) fn new(name: &str, params: &[(&str, Ty)]) -> Self {
        Function {
            name: name.to_string(),
            params: params.iter().map(|(n, t)| (n.to_string(), *t)).collect(),
            entry: BlockId(0),
            blocks: Vec::new(),
            insts: Vec::new(),
            values: params
                .iter()
                .enumerate()
                .map(|(i, _)| ValueDef::Param(i as u32))
                .collect(),
            inst_block: Vec::new(),
            layout: Vec::new(),
        }
    }

    /// The value id of parameter `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn param_value(&self, i: usize) -> ValueId {
        assert!(i < self.params.len(), "parameter index out of range");
        ValueId(i as u32)
    }

    /// All live block ids in emission order: the explicit layout when one
    /// has been installed ([`Function::set_layout`]), creation order
    /// otherwise.
    pub fn block_ids(&self) -> Vec<BlockId> {
        if !self.layout.is_empty() {
            return self.layout.clone();
        }
        (0..self.blocks.len() as u32)
            .map(BlockId)
            .filter(|b| self.blocks[b.0 as usize].is_some())
            .collect()
    }

    /// Installs an explicit block emission order.
    ///
    /// `order` must be a permutation of the live blocks.  Passing the
    /// creation order (or an empty vector) clears the explicit layout.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of the live blocks.
    pub fn set_layout(&mut self, order: Vec<BlockId>) {
        if order.is_empty() {
            self.layout.clear();
            return;
        }
        let creation: Vec<BlockId> = (0..self.blocks.len() as u32)
            .map(BlockId)
            .filter(|b| self.blocks[b.0 as usize].is_some())
            .collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted.len(),
            order.len(),
            "layout order contains a duplicate block"
        );
        assert_eq!(
            sorted, creation,
            "layout order is not a permutation of the live blocks"
        );
        self.layout = if order == creation { Vec::new() } else { order };
    }

    /// Whether an explicit (non-creation-order) layout is installed.
    pub fn has_custom_layout(&self) -> bool {
        !self.layout.is_empty()
    }

    /// The block data for `b`.
    ///
    /// # Panics
    ///
    /// Panics if the block was removed.
    pub fn block(&self, b: BlockId) -> &BlockData {
        self.blocks[b.0 as usize].as_ref().expect("live block")
    }

    /// Mutable block data.
    ///
    /// # Panics
    ///
    /// Panics if the block was removed.
    pub fn block_mut(&mut self, b: BlockId) -> &mut BlockData {
        self.blocks[b.0 as usize].as_mut().expect("live block")
    }

    /// Whether block `b` still exists.
    pub fn block_exists(&self, b: BlockId) -> bool {
        self.blocks.get(b.0 as usize).is_some_and(Option::is_some)
    }

    /// The instruction data for `i`.
    pub fn inst(&self, i: InstId) -> &InstData {
        &self.insts[i.0 as usize]
    }

    /// Mutable instruction data.
    pub fn inst_mut(&mut self, i: InstId) -> &mut InstData {
        &mut self.insts[i.0 as usize]
    }

    /// The block currently containing `i`, or `None` if the instruction was
    /// removed.
    pub fn block_of(&self, i: InstId) -> Option<BlockId> {
        self.inst_block[i.0 as usize]
    }

    /// Whether instruction `i` is still in the function body.
    pub fn inst_is_live(&self, i: InstId) -> bool {
        self.block_of(i).is_some()
    }

    /// The definition site of a value.
    pub fn value_def(&self, v: ValueId) -> ValueDef {
        self.values[v.0 as usize]
    }

    /// The result value of instruction `i`, if any.
    pub fn result_of(&self, i: InstId) -> Option<ValueId> {
        self.inst(i).result
    }

    /// Total number of value ids ever created.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Total number of instruction ids ever created (including removed).
    pub fn inst_id_count(&self) -> usize {
        self.insts.len()
    }

    /// Number of instructions currently in the body (the `|f|` of Table 2).
    pub fn live_inst_count(&self) -> usize {
        self.block_ids()
            .iter()
            .map(|b| self.block(*b).insts.len())
            .sum()
    }

    /// Number of φ-nodes currently in the body (the `|φ|` of Table 2).
    pub fn phi_count(&self) -> usize {
        self.block_ids()
            .iter()
            .flat_map(|b| self.block(*b).insts.iter())
            .filter(|i| self.inst(**i).kind.is_phi())
            .count()
    }

    /// Iterates over `(block, inst)` pairs in block order.
    pub fn inst_iter(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.block_ids().into_iter().flat_map(move |b| {
            self.block(b)
                .insts
                .iter()
                .map(move |i| (b, *i))
                .collect::<Vec<_>>()
        })
    }

    // ----- mutation primitives (used by builder and passes) -----

    /// Creates a new, empty block terminated by `ret void`.
    pub fn create_block(&mut self, name: &str) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Some(BlockData {
            name: name.to_string(),
            insts: Vec::new(),
            term: Terminator::Ret(None),
        }));
        if !self.layout.is_empty() {
            self.layout.push(id);
        }
        id
    }

    /// Creates a new instruction (with a fresh result value if applicable)
    /// without inserting it into a block; pair with [`Function::push_inst`]
    /// or [`Function::insert_inst`].
    pub fn create_inst(&mut self, kind: InstKind, line: Option<u32>) -> InstId {
        let id = InstId(self.insts.len() as u32);
        let result = if kind.has_result() {
            let v = ValueId(self.values.len() as u32);
            self.values.push(ValueDef::Inst(id));
            Some(v)
        } else {
            None
        };
        self.insts.push(InstData { kind, result, line });
        self.inst_block.push(None);
        id
    }

    /// Appends instruction `i` at the end of block `b`.
    pub fn push_inst(&mut self, b: BlockId, i: InstId) {
        self.block_mut(b).insts.push(i);
        self.inst_block[i.0 as usize] = Some(b);
    }

    /// Inserts instruction `i` at position `pos` of block `b`.
    pub fn insert_inst(&mut self, b: BlockId, pos: usize, i: InstId) {
        self.block_mut(b).insts.insert(pos, i);
        self.inst_block[i.0 as usize] = Some(b);
    }

    /// Removes instruction `i` from its block (the id stays valid for
    /// mapper queries).
    pub fn remove_inst(&mut self, i: InstId) {
        if let Some(b) = self.block_of(i) {
            self.block_mut(b).insts.retain(|x| *x != i);
            self.inst_block[i.0 as usize] = None;
        }
    }

    /// Moves instruction `i` to block `b` at position `pos`.
    pub fn move_inst(&mut self, i: InstId, b: BlockId, pos: usize) {
        self.remove_inst(i);
        self.insert_inst(b, pos, i);
    }

    /// Creates and inserts a new instruction at the end of `b`, returning
    /// `(inst, result)`.
    pub fn append_new_inst(
        &mut self,
        b: BlockId,
        kind: InstKind,
        line: Option<u32>,
    ) -> (InstId, Option<ValueId>) {
        let i = self.create_inst(kind, line);
        self.push_inst(b, i);
        (i, self.inst(i).result)
    }

    /// Replaces every use of `old` with `new` in instructions and
    /// terminators (LLVM's `replaceAllUsesWith`).
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        let blocks = self.block_ids();
        for b in blocks {
            let insts = self.block(b).insts.clone();
            for i in insts {
                self.inst_mut(i).kind.replace_operand(old, new);
            }
            self.block_mut(b).term.replace_operand(old, new);
        }
    }

    /// Deletes block `b` and removes its instructions.
    pub fn remove_block(&mut self, b: BlockId) {
        let insts = self.block(b).insts.clone();
        for i in insts {
            self.inst_block[i.0 as usize] = None;
        }
        self.blocks[b.0 as usize] = None;
        self.layout.retain(|x| *x != b);
    }

    /// Collects, for every value, the list of instructions using it.
    pub fn compute_uses(&self) -> BTreeMap<ValueId, Vec<InstId>> {
        let mut uses: BTreeMap<ValueId, Vec<InstId>> = BTreeMap::new();
        for (_, i) in self.inst_iter() {
            for op in self.inst(i).kind.operands() {
                uses.entry(op).or_default().push(i);
            }
        }
        uses
    }

    /// Whether value `v` is used by any instruction or terminator.
    pub fn value_is_used(&self, v: ValueId) -> bool {
        for (b, i) in self.inst_iter() {
            let _ = b;
            if self.inst(i).kind.operands().contains(&v) {
                return true;
            }
        }
        self.block_ids()
            .iter()
            .any(|b| self.block(*b).term.operands().contains(&v))
    }
}

/// A collection of functions callable by name.
#[derive(Clone, Default, Debug)]
pub struct Module {
    /// Functions by name.
    pub functions: BTreeMap<String, Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Self {
        Module::default()
    }

    /// Adds a function, replacing any previous one with the same name.
    pub fn add(&mut self, f: Function) {
        self.functions.insert(f.name.clone(), f);
    }

    /// Looks up a function by name.
    pub fn get(&self, name: &str) -> Option<&Function> {
        self.functions.get(name)
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn {}(", self.name)?;
        for (i, (n, t)) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n}: {t:?} = %{i}")?;
        }
        writeln!(f, ") {{")?;
        for b in self.block_ids() {
            let bd = self.block(b);
            writeln!(f, "{b} ({}):", bd.name)?;
            for &i in &bd.insts {
                let inst = self.inst(i);
                match inst.result {
                    Some(r) => writeln!(f, "  {r} = {:?}  ; {i}", inst.kind)?,
                    None => writeln!(f, "  {:?}  ; {i}", inst.kind)?,
                }
            }
            writeln!(f, "  {:?}", bd.term)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_semantics() {
        assert_eq!(BinOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Div.apply(7, 0), 0);
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Shl.apply(1, 65), 2);
        assert!(BinOp::Add.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
    }

    #[test]
    fn inst_operand_rewrite() {
        let mut k = InstKind::Binop(BinOp::Add, ValueId(1), ValueId(2));
        k.replace_operand(ValueId(1), ValueId(9));
        assert_eq!(k.operands(), vec![ValueId(9), ValueId(2)]);
    }

    #[test]
    fn terminator_successors_dedup() {
        let t = Terminator::CondBr {
            cond: ValueId(0),
            then_bb: BlockId(1),
            else_bb: BlockId(1),
        };
        assert_eq!(t.successors(), vec![BlockId(1)]);
    }

    #[test]
    fn side_effect_classification() {
        assert!(InstKind::Store {
            addr: ValueId(0),
            value: ValueId(1)
        }
        .has_side_effects());
        assert!(!InstKind::Const(3).has_side_effects());
        assert!(InstKind::Load { addr: ValueId(0) }.reads_memory());
        assert!(InstKind::DbgValue {
            var: "x".into(),
            value: ValueId(0)
        }
        .is_dbg());
    }
}
