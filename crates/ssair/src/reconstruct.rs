//! Algorithm 1 at the SSA level (§5.2, §5.4).
//!
//! SSA makes the unique-reaching-definition question trivial — a value's
//! definition is unique and dominates every use — so `reconstruct` becomes
//! a recursion over the *def-use graph* of the target version:
//!
//! * a target value whose corresponding source value is **live** at the OSR
//!   source transfers directly;
//! * with the `avail` variant, a source value that is merely *available*
//!   (its definition dominates the source location) may be kept alive and
//!   transferred, entering the keep-set `K_avail`;
//! * otherwise the defining instruction is re-emitted into the compensation
//!   code, after recursively reconstructing its operands;
//! * φ-nodes stop the recursion unless they are *constant φs* (all
//!   incomings resolve to one value — e.g. LCSSA φs, cf. §5.4);
//! * loads are re-emitted only when no store or call can execute between
//!   the load site and the landing point (§5.3's store invariant);
//! * call results and allocas are never re-emitted.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::interp::{Machine, Val};
use crate::ir::{Function, InstId, InstKind, ValueDef, ValueId};
use crate::liveness::{Availability, Liveness};
use crate::SsaMapper;

/// Which reconstruction flavour to run (§5.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Variant {
    /// Seed only from values live at the OSR source.
    Live,
    /// Additionally seed from available-but-dead source values, recording
    /// them in the keep-set.
    Avail,
}

/// Transfer direction relative to the `(base, optimized)` pair.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Optimizing OSR: `fbase → fopt`.
    Forward,
    /// Deoptimizing OSR: `fopt → fbase`.
    Backward,
}

/// One step of SSA compensation code.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompStep {
    /// Copy a source-frame value into a target value (ordinary live-state
    /// transfer; not counted in `|c|`).
    Transfer {
        /// Value in the source function's frame.
        src: ValueId,
        /// Value in the target function.
        dst: ValueId,
    },
    /// Re-execute the target instruction, defining its result (counted in
    /// `|c|`).
    Emit {
        /// Instruction in the target function.
        inst: InstId,
    },
    /// Bind a target value to another, already-produced target value
    /// (constant-φ collapse; counted in `|c|`).
    CopyDst {
        /// Already-produced value.
        from: ValueId,
        /// The value being defined.
        to: ValueId,
    },
    /// Materialize a constant (not counted in `|c|`: LLVM constants are
    /// immediates, not instructions occupying registers).
    Materialize {
        /// The constant-producing instruction in the target function.
        inst: InstId,
    },
    /// Re-execute an instruction captured from an *intermediate* program
    /// version at composition time (`feasibility::compose_entries`, the SSA
    /// analogue of Theorem 3.4).  The instruction has no home in either
    /// endpoint function of the composed table, so its kind is stored
    /// inline.  Counted in `|c|` unless it materializes a constant.
    Inline {
        /// The captured instruction kind (operands are values produced by
        /// earlier steps of the same compensation code).
        kind: InstKind,
        /// The value the instruction defines, if any.
        result: Option<ValueId>,
    },
}

/// Compensation code for one OSR point pair.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct CompCode {
    /// Steps in execution order.
    pub steps: Vec<CompStep>,
}

impl CompCode {
    /// `|c|`: number of generated instructions (transfers and constant
    /// materializations excluded — constants are immediates in LLVM).
    pub fn emit_count(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| match s {
                CompStep::Transfer { .. } | CompStep::Materialize { .. } => false,
                CompStep::Inline { kind, .. } => !matches!(kind, InstKind::Const(_)),
                CompStep::Emit { .. } | CompStep::CopyDst { .. } => true,
            })
            .count()
    }
}

/// An OSR mapping entry at the SSA level.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SsaEntry {
    /// Landing location in the target function.
    pub target: InstId,
    /// The compensation code.
    pub comp: CompCode,
    /// Source values `avail` keeps artificially alive.
    pub keep: BTreeSet<ValueId>,
}

/// Why SSA reconstruction failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SsaReconstructError {
    /// A needed φ has multiple distinct incoming values (Algorithm 1 gives
    /// up; gating functions are future work in the paper).
    PhiMultipleDefs(ValueId),
    /// Re-executing a load is unsafe: memory may change between the load
    /// site and the landing point.
    MemoryUnsafe(ValueId),
    /// The value is a call result and cannot be recomputed.
    CallResult(ValueId),
    /// The value is an allocation (or otherwise non-recomputable) and its
    /// source counterpart is not transferable.
    NotAvailable(ValueId),
}

impl fmt::Display for SsaReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SsaReconstructError::PhiMultipleDefs(v) => {
                write!(f, "φ {v} has multiple reaching definitions")
            }
            SsaReconstructError::MemoryUnsafe(v) => {
                write!(f, "load {v} cannot be safely re-executed")
            }
            SsaReconstructError::CallResult(v) => write!(f, "call result {v} not recomputable"),
            SsaReconstructError::NotAvailable(v) => {
                write!(f, "{v} not live or available at the OSR source")
            }
        }
    }
}

impl std::error::Error for SsaReconstructError {}

/// All the per-function analyses reconstruction needs, computed once per
/// function version and shared across every OSR point query.
pub struct FuncAnalyses<'f> {
    /// The function analyzed.
    pub f: &'f Function,
    /// CFG relations.
    pub cfg: Cfg,
    /// Dominator tree.
    pub dt: DomTree,
    /// Liveness sets.
    pub live: Liveness,
}

impl<'f> FuncAnalyses<'f> {
    /// Runs the analyses on `f`.
    pub fn new(f: &'f Function) -> Self {
        let cfg = Cfg::compute(f);
        let dt = DomTree::compute(f, &cfg);
        let live = Liveness::compute(f, &cfg);
        FuncAnalyses { f, cfg, dt, live }
    }

    fn availability(&self) -> Availability<'_> {
        Availability::new(self.f, &self.dt)
    }
}

/// The base/optimized pair plus the recorded mapper, ready for OSR-mapping
/// queries in both directions.
pub struct OsrPair<'a> {
    /// Analyses of the base version.
    pub base: FuncAnalyses<'a>,
    /// Analyses of the optimized version.
    pub opt: FuncAnalyses<'a>,
    /// The action record from the optimization pipeline.
    pub cm: &'a SsaMapper,
}

impl<'a> OsrPair<'a> {
    /// Builds the pair.
    pub fn new(base: &'a Function, opt: &'a Function, cm: &'a SsaMapper) -> Self {
        OsrPair {
            base: FuncAnalyses::new(base),
            opt: FuncAnalyses::new(opt),
            cm,
        }
    }

    fn src_dst(&self, dir: Direction) -> (&FuncAnalyses<'a>, &FuncAnalyses<'a>) {
        match dir {
            Direction::Forward => (&self.base, &self.opt),
            Direction::Backward => (&self.opt, &self.base),
        }
    }

    /// The source-function values corresponding to target value `v`, most
    /// preferred first.
    fn counterparts(&self, dir: Direction, v: ValueId) -> Vec<ValueId> {
        match dir {
            // Target = opt: base values that were replaced into v (plus v
            // itself when it already existed in base).
            Direction::Forward => {
                let mut out: Vec<ValueId> = Vec::new();
                if (v.0 as usize) < self.base.f.value_count() && self.value_defined_in_base(v) {
                    out.push(v);
                }
                for alias in self.cm.aliases_of(v) {
                    if alias != v
                        && (alias.0 as usize) < self.base.f.value_count()
                        && self.value_defined_in_base(alias)
                    {
                        out.push(alias);
                    }
                }
                out
            }
            // Target = base: the value that stands for v in opt.
            Direction::Backward => {
                let r = self.cm.resolve_value(v);
                if self.value_defined_in_opt(r) {
                    vec![r]
                } else {
                    vec![]
                }
            }
        }
    }

    fn value_defined_in_base(&self, v: ValueId) -> bool {
        match self.base.f.value_def(v) {
            ValueDef::Param(_) => true,
            ValueDef::Inst(i) => self.base.f.inst_is_live(i),
        }
    }

    fn value_defined_in_opt(&self, v: ValueId) -> bool {
        if (v.0 as usize) >= self.opt.f.value_count() {
            return false;
        }
        match self.opt.f.value_def(v) {
            ValueDef::Param(_) => true,
            ValueDef::Inst(i) => self.opt.f.inst_is_live(i),
        }
    }

    /// Builds the OSR mapping entry for `(src_loc → dst_loc)`.
    ///
    /// # Errors
    ///
    /// Returns the first [`SsaReconstructError`] encountered; the point is
    /// then outside the (partial) mapping for this variant.
    pub fn build_entry(
        &self,
        dir: Direction,
        src_loc: InstId,
        dst_loc: InstId,
        variant: Variant,
    ) -> Result<SsaEntry, SsaReconstructError> {
        self.build_entry_with_edge(dir, src_loc, dst_loc, variant, None)
    }

    /// Like [`OsrPair::build_entry`], but when the landing site was reached
    /// through an unconditional-branch chain (see
    /// `feasibility::landing_site`), `entry_edge` names the predecessor
    /// block of the landing block in the **target** function: the φ-nodes
    /// of the landing block are then bound to their incomings along that
    /// edge, exactly as if the edge had just been taken.
    ///
    /// # Errors
    ///
    /// See [`OsrPair::build_entry`].
    pub fn build_entry_with_edge(
        &self,
        dir: Direction,
        src_loc: InstId,
        dst_loc: InstId,
        variant: Variant,
        entry_edge: Option<crate::ir::BlockId>,
    ) -> Result<SsaEntry, SsaReconstructError> {
        let (src, dst) = self.src_dst(dir);
        let src_live = src.live.live_before(src.f, src_loc);
        let dst_live = dst.live.live_before(dst.f, dst_loc);
        let mut b = Builder {
            pair: self,
            dir,
            src,
            dst,
            variant,
            src_loc,
            dst_loc,
            src_live,
            produced: BTreeSet::new(),
            in_progress: BTreeSet::new(),
            steps: Vec::new(),
            keep: BTreeSet::new(),
        };
        if let Some(pred) = entry_edge {
            // Bind the landing block's φs to their edge incomings.
            let landing_block = dst
                .f
                .block_of(dst_loc)
                .ok_or(SsaReconstructError::NotAvailable(ValueId(0)))?;
            let phis: Vec<InstId> = dst
                .f
                .block(landing_block)
                .insts
                .iter()
                .copied()
                .take_while(|i| dst.f.inst(*i).kind.is_phi())
                .collect();
            for phi in phis {
                let InstKind::Phi(incs) = dst.f.inst(phi).kind.clone() else {
                    unreachable!("take_while(is_phi)");
                };
                let r = dst.f.inst(phi).result.expect("φ has a result");
                let Some((_, v)) = incs.iter().find(|(p, _)| *p == pred) else {
                    return Err(SsaReconstructError::PhiMultipleDefs(r));
                };
                b.reconstruct(*v)?;
                b.steps.push(CompStep::CopyDst { from: *v, to: r });
                b.produced.insert(r);
            }
        }
        for v in &dst_live {
            b.reconstruct(*v)?;
        }
        Ok(SsaEntry {
            target: dst_loc,
            comp: CompCode { steps: b.steps },
            keep: b.keep,
        })
    }

    /// Reconstructs a *single* target value at the point pair — the query a
    /// symbolic debugger issues per endangered user variable (§7.2).
    ///
    /// # Errors
    ///
    /// Returns the first [`SsaReconstructError`] encountered.
    pub fn reconstruct_value(
        &self,
        dir: Direction,
        src_loc: InstId,
        dst_loc: InstId,
        variant: Variant,
        value: ValueId,
    ) -> Result<SsaEntry, SsaReconstructError> {
        let (src, dst) = self.src_dst(dir);
        let src_live = src.live.live_before(src.f, src_loc);
        let mut b = Builder {
            pair: self,
            dir,
            src,
            dst,
            variant,
            src_loc,
            dst_loc,
            src_live,
            produced: BTreeSet::new(),
            in_progress: BTreeSet::new(),
            steps: Vec::new(),
            keep: BTreeSet::new(),
        };
        b.reconstruct(value)?;
        Ok(SsaEntry {
            target: dst_loc,
            comp: CompCode { steps: b.steps },
            keep: b.keep,
        })
    }
}

struct Builder<'a, 'b> {
    pair: &'b OsrPair<'a>,
    dir: Direction,
    src: &'b FuncAnalyses<'a>,
    dst: &'b FuncAnalyses<'a>,
    variant: Variant,
    src_loc: InstId,
    dst_loc: InstId,
    src_live: BTreeSet<ValueId>,
    produced: BTreeSet<ValueId>,
    in_progress: BTreeSet<ValueId>,
    steps: Vec<CompStep>,
    keep: BTreeSet<ValueId>,
}

impl Builder<'_, '_> {
    fn reconstruct(&mut self, v: ValueId) -> Result<(), SsaReconstructError> {
        if self.produced.contains(&v) {
            return Ok(());
        }
        if !self.in_progress.insert(v) {
            // Cyclic dependency can only arise through φs, which we refuse
            // to re-emit anyway.
            return Err(SsaReconstructError::PhiMultipleDefs(v));
        }
        let result = self.reconstruct_inner(v);
        self.in_progress.remove(&v);
        result
    }

    fn reconstruct_inner(&mut self, v: ValueId) -> Result<(), SsaReconstructError> {
        // 1. Direct transfer from the source frame.
        for c in self.pair.counterparts(self.dir, v) {
            if self.src_live.contains(&c) {
                self.steps.push(CompStep::Transfer { src: c, dst: v });
                self.produced.insert(v);
                return Ok(());
            }
        }
        // 2. Availability-based transfer (the avail variant, §5.2).
        if self.variant == Variant::Avail {
            let avail = self.src.availability();
            for c in self.pair.counterparts(self.dir, v) {
                if avail.available_before(c, self.src_loc) {
                    self.steps.push(CompStep::Transfer { src: c, dst: v });
                    self.produced.insert(v);
                    self.keep.insert(c);
                    return Ok(());
                }
            }
        }
        // 3. Re-emit the defining instruction in the target version.
        let d = match self.dst.f.value_def(v) {
            // A parameter that is neither live nor available at the source
            // cannot be recovered (live variant only; params are always
            // available).
            ValueDef::Param(_) => return Err(SsaReconstructError::NotAvailable(v)),
            ValueDef::Inst(i) => i,
        };
        match self.dst.f.inst(d).kind.clone() {
            InstKind::Phi(incs) => {
                // Constant φ: all incomings are the same value (§5.4).
                let distinct: BTreeSet<ValueId> = incs.iter().map(|(_, x)| *x).collect();
                if distinct.len() == 1 {
                    let inner = *distinct.iter().next().expect("non-empty");
                    self.reconstruct(inner)?;
                    self.steps.push(CompStep::CopyDst { from: inner, to: v });
                    self.produced.insert(v);
                    Ok(())
                } else {
                    Err(SsaReconstructError::PhiMultipleDefs(v))
                }
            }
            InstKind::Call { .. } => Err(SsaReconstructError::CallResult(v)),
            InstKind::Alloca { .. } => Err(SsaReconstructError::NotAvailable(v)),
            InstKind::Load { addr } => {
                if !self.load_safe(d) {
                    return Err(SsaReconstructError::MemoryUnsafe(v));
                }
                self.reconstruct(addr)?;
                self.steps.push(CompStep::Emit { inst: d });
                self.produced.insert(v);
                Ok(())
            }
            InstKind::Const(_) => {
                self.steps.push(CompStep::Materialize { inst: d });
                self.produced.insert(v);
                Ok(())
            }
            pure => {
                for op in pure.operands() {
                    self.reconstruct(op)?;
                }
                self.steps.push(CompStep::Emit { inst: d });
                self.produced.insert(v);
                Ok(())
            }
        }
    }

    /// Re-executing the load at OSR time reads *current* memory; that is
    /// only correct if no store or call can execute between the load site
    /// and the landing location (§5.3).
    fn load_safe(&self, load: InstId) -> bool {
        let f = self.dst.f;
        let Some(lb) = f.block_of(load) else {
            return false;
        };
        let Some(db) = f.block_of(self.dst_loc) else {
            return false;
        };
        let between = self.dst.cfg.blocks_between(lb, db);
        for b in between {
            let insts = &f.block(b).insts;
            let start = if b == lb {
                insts.iter().position(|i| *i == load).map_or(0, |p| p + 1)
            } else {
                0
            };
            let end = if b == db {
                insts
                    .iter()
                    .position(|i| *i == self.dst_loc)
                    .unwrap_or(insts.len())
            } else {
                insts.len()
            };
            if start <= end {
                for &i in &insts[start..end] {
                    if f.inst(i).kind.has_side_effects() {
                        return false;
                    }
                }
            } else {
                // Load after the landing index in the same block: the whole
                // block may re-execute through a cycle; be conservative.
                if insts.iter().any(|i| f.inst(*i).kind.has_side_effects()) {
                    return false;
                }
            }
        }
        true
    }
}

/// Executes compensation code: builds the target frame's value environment
/// from the source frame's values.
///
/// # Errors
///
/// Returns [`SsaReconstructError::NotAvailable`] if a transfer reads a
/// value missing from the source frame (indicates a mapping bug) — wrapped
/// in `Err` as the offending value.
pub fn apply_comp(
    entry: &SsaEntry,
    dst_fn: &Function,
    src_values: &BTreeMap<ValueId, Val>,
    machine: &mut Machine,
) -> Result<BTreeMap<ValueId, Val>, SsaReconstructError> {
    let mut env: BTreeMap<ValueId, Val> = BTreeMap::new();
    for step in &entry.comp.steps {
        match step {
            CompStep::Transfer { src, dst } => {
                let v = src_values
                    .get(src)
                    .copied()
                    .ok_or(SsaReconstructError::NotAvailable(*src))?;
                env.insert(*dst, v);
            }
            CompStep::CopyDst { from, to } => {
                let v = env
                    .get(from)
                    .copied()
                    .ok_or(SsaReconstructError::NotAvailable(*from))?;
                env.insert(*to, v);
            }
            CompStep::Emit { inst } | CompStep::Materialize { inst } => {
                let data = dst_fn.inst(*inst);
                let result = eval_pure(&data.kind, &env, machine).ok_or_else(|| {
                    SsaReconstructError::NotAvailable(data.result.unwrap_or(ValueId(0)))
                })?;
                if let Some(r) = data.result {
                    env.insert(r, result);
                }
            }
            CompStep::Inline { kind, result } => {
                let v = eval_pure(kind, &env, machine).ok_or_else(|| {
                    SsaReconstructError::NotAvailable(result.unwrap_or(ValueId(0)))
                })?;
                if let Some(r) = result {
                    env.insert(*r, v);
                }
            }
        }
    }
    Ok(env)
}

fn eval_pure(kind: &InstKind, env: &BTreeMap<ValueId, Val>, machine: &mut Machine) -> Option<Val> {
    let get = |v: &ValueId| env.get(v).copied();
    let int = |v: &ValueId| match get(v)? {
        Val::Int(n) => Some(n),
        Val::Ptr(..) => None,
    };
    Some(match kind {
        InstKind::Const(n) => Val::Int(*n),
        InstKind::Binop(op, a, b) => Val::Int(op.apply(int(a)?, int(b)?)),
        InstKind::Neg(a) => Val::Int(int(a)?.wrapping_neg()),
        InstKind::Not(a) => Val::Int(i64::from(int(a)? == 0)),
        InstKind::Select {
            cond,
            then_v,
            else_v,
        } => {
            if int(cond)? != 0 {
                get(then_v)?
            } else {
                get(else_v)?
            }
        }
        InstKind::Gep { base, index } => match get(base)? {
            Val::Ptr(a, o) => Val::Ptr(a, o + int(index)?),
            Val::Int(_) => return None,
        },
        InstKind::Load { addr } => {
            let p = get(addr)?;
            Val::Int(machine_load(machine, p)?)
        }
        _ => return None,
    })
}

fn machine_load(machine: &Machine, p: Val) -> Option<i64> {
    crate::interp::machine_peek(machine, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::Pipeline;
    use crate::{BinOp, FunctionBuilder, Ty};

    /// base: t = x*x computed late; opt: pipeline hoists/moves things.
    fn simple_pair() -> (Function, Function, SsaMapper) {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64), ("n", Ty::I64)]);
        let x = b.param(0);
        let n = b.param(1);
        let zero = b.const_i64(0);
        let one = b.const_i64(1);
        let header = b.create_block("h");
        let body = b.create_block("b");
        let exit = b.create_block("e");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        let i = b.phi(&[(entry, zero)]);
        let s = b.phi(&[(entry, zero)]);
        let cmp = b.binop(BinOp::Lt, i, n);
        b.cond_br(cmp, body, exit);
        b.switch_to(body);
        let t = b.binop(BinOp::Mul, x, x);
        let s2 = b.binop(BinOp::Add, s, t);
        let i2 = b.binop(BinOp::Add, i, one);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(s));
        let mut f = b.finish();
        let phi_i = f.block(header).insts[0];
        let phi_s = f.block(header).insts[1];
        f.inst_mut(phi_i).kind = InstKind::Phi(vec![(entry, zero), (body, i2)]);
        f.inst_mut(phi_s).kind = InstKind::Phi(vec![(entry, zero), (body, s2)]);
        crate::verify(&f).unwrap();
        let (opt, cm, _) = Pipeline::standard().optimize(&f);
        (f, opt, cm)
    }

    #[test]
    fn forward_entry_at_surviving_location() {
        let (base, opt, cm) = simple_pair();
        let pair = OsrPair::new(&base, &opt, &cm);
        // Use the s2 instruction (survives: it is loop-variant).
        let loc = base
            .inst_iter()
            .map(|(_, i)| i)
            .find(|i| {
                matches!(base.inst(*i).kind, InstKind::Binop(BinOp::Add, _, _))
                    && opt.inst_is_live(*i)
            })
            .expect("a surviving add");
        let entry = pair
            .build_entry(Direction::Forward, loc, loc, Variant::Avail)
            .expect("forward OSR feasible");
        // Every step must be well-formed; transfers reference base values.
        assert!(!entry.comp.steps.is_empty());
    }

    #[test]
    fn backward_entry_reconstructs_hoisted_value() {
        let (base, opt, cm) = simple_pair();
        let pair = OsrPair::new(&base, &opt, &cm);
        // Find a location in opt inside the loop body.
        let loc = opt
            .inst_iter()
            .map(|(_, i)| i)
            .find(|i| {
                matches!(opt.inst(*i).kind, InstKind::Binop(BinOp::Add, _, _))
                    && base.inst_is_live(*i)
            })
            .expect("a surviving add in opt");
        let entry = pair
            .build_entry(Direction::Backward, loc, loc, Variant::Avail)
            .expect("backward OSR feasible");
        let _ = entry;
    }

    #[test]
    fn call_results_fail() {
        let mut b = FunctionBuilder::new("f", &[("x", Ty::I64)]);
        let x = b.param(0);
        let c = b.call("g", &[x]);
        let one = b.const_i64(1);
        let r = b.binop(BinOp::Add, c, one);
        b.ret(Some(r));
        let base = b.finish();
        // opt: identical clone, but pretend c was dead at source by asking
        // for a transfer at the first instruction (before the call).
        let opt = base.clone();
        let cm = SsaMapper::new();
        let pair = OsrPair::new(&base, &opt, &cm);
        let first = base.block(base.entry).insts[0];
        // dst live at `r` includes the call result; at src_loc=first the
        // call hasn't executed: not live, not available → error.
        let r_loc = base.block(base.entry).insts[2];
        let err = pair
            .build_entry(Direction::Forward, first, r_loc, Variant::Avail)
            .unwrap_err();
        assert!(matches!(err, SsaReconstructError::CallResult(_)));
    }
}
