//! IR verifier: structural and SSA well-formedness checks.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ir::{BlockId, Function, InstId, InstKind, ValueDef, ValueId};

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A terminator targets a removed block.
    BranchToDeadBlock {
        /// The branching block.
        from: BlockId,
        /// The missing target.
        to: BlockId,
    },
    /// φ-nodes must be grouped at the top of their block.
    PhiNotAtTop {
        /// Offending instruction.
        inst: InstId,
    },
    /// A φ-node's incoming blocks disagree with the CFG predecessors.
    PhiPredMismatch {
        /// Offending φ.
        inst: InstId,
    },
    /// An instruction uses a value whose definition does not dominate it.
    UseNotDominated {
        /// The using instruction.
        inst: InstId,
        /// The value used.
        value: ValueId,
    },
    /// A value is defined by an instruction that is no longer in the body.
    UseOfRemovedDef {
        /// The using instruction.
        inst: InstId,
        /// The dangling value.
        value: ValueId,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::BranchToDeadBlock { from, to } => {
                write!(f, "{from} branches to removed block {to}")
            }
            VerifyError::PhiNotAtTop { inst } => write!(f, "φ {inst} not at top of its block"),
            VerifyError::PhiPredMismatch { inst } => {
                write!(f, "φ {inst} incoming blocks do not match predecessors")
            }
            VerifyError::UseNotDominated { inst, value } => {
                write!(
                    f,
                    "use of {value} at {inst} not dominated by its definition"
                )
            }
            VerifyError::UseOfRemovedDef { inst, value } => {
                write!(f, "use of {value} at {inst}, whose definition was removed")
            }
        }
    }
}

impl Error for VerifyError {}

/// Verifies structural and SSA invariants of `f`.
///
/// Checks: branch targets exist; φ-nodes sit at block tops and list exactly
/// the reachable CFG predecessors; every use of an instruction result is
/// dominated by its definition (φ uses are checked at the incoming edge);
/// no use refers to a removed instruction.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify(f: &Function) -> Result<(), VerifyError> {
    // Structural checks first: the CFG cannot even be built over branches
    // into removed blocks.
    for b in f.block_ids() {
        for t in f.block(b).term.successors() {
            if !f.block_exists(t) {
                return Err(VerifyError::BranchToDeadBlock { from: b, to: t });
            }
        }
    }
    let cfg = Cfg::compute(f);
    let dt = DomTree::compute(f, &cfg);

    // Per-block instruction positions for intra-block dominance checks.
    let mut pos: std::collections::BTreeMap<InstId, (BlockId, usize)> = Default::default();
    for b in f.block_ids() {
        for (i, &inst) in f.block(b).insts.iter().enumerate() {
            pos.insert(inst, (b, i));
        }
    }

    for b in f.block_ids() {
        if !cfg.is_reachable(b) {
            continue; // unreachable code is not held to SSA dominance rules
        }
        let insts = &f.block(b).insts;
        let mut seen_non_phi = false;
        for (idx, &inst) in insts.iter().enumerate() {
            let data = f.inst(inst);
            if data.kind.is_phi() {
                if seen_non_phi {
                    return Err(VerifyError::PhiNotAtTop { inst });
                }
                let preds: BTreeSet<BlockId> = cfg.preds_of(b).iter().copied().collect();
                let reachable_preds: BTreeSet<BlockId> = preds
                    .iter()
                    .copied()
                    .filter(|p| cfg.is_reachable(*p))
                    .collect();
                if let InstKind::Phi(incs) = &data.kind {
                    let inc_blocks: BTreeSet<BlockId> = incs.iter().map(|(p, _)| *p).collect();
                    if inc_blocks != reachable_preds {
                        return Err(VerifyError::PhiPredMismatch { inst });
                    }
                    // φ operands must dominate the incoming edge's source.
                    for (pred, v) in incs {
                        check_use_at_block_end(f, &dt, &pos, *pred, *v, inst)?;
                    }
                }
            } else {
                seen_non_phi = true;
                // Debug bindings are transparent and may dangle (a sunk or
                // deleted definition leaves them pointing "forward", as
                // LLVM's dbg.value does); they are not real reads.
                if !data.kind.is_dbg() {
                    for v in data.kind.operands() {
                        check_use_at(f, &dt, &pos, b, idx, v, inst)?;
                    }
                }
            }
        }
        for v in f.block(b).term.operands() {
            check_use_at(f, &dt, &pos, b, insts.len(), v, InstId(u32::MAX))?;
        }
    }
    Ok(())
}

fn def_site(f: &Function, v: ValueId) -> Result<Option<(BlockId, usize)>, ()> {
    match f.value_def(v) {
        ValueDef::Param(_) => Ok(None), // dominates everything
        ValueDef::Inst(i) => match f.block_of(i) {
            None => Err(()),
            Some(b) => {
                let idx = f
                    .block(b)
                    .insts
                    .iter()
                    .position(|x| *x == i)
                    .expect("inst_block consistent");
                Ok(Some((b, idx)))
            }
        },
    }
}

fn check_use_at(
    f: &Function,
    dt: &DomTree,
    _pos: &std::collections::BTreeMap<InstId, (BlockId, usize)>,
    use_block: BlockId,
    use_idx: usize,
    v: ValueId,
    user: InstId,
) -> Result<(), VerifyError> {
    match def_site(f, v) {
        Err(()) => Err(VerifyError::UseOfRemovedDef {
            inst: user,
            value: v,
        }),
        Ok(None) => Ok(()),
        Ok(Some((db, didx))) => {
            let ok = if db == use_block {
                didx < use_idx
            } else {
                dt.is_reachable(db) && dt.dominates(db, use_block)
            };
            if ok {
                Ok(())
            } else {
                Err(VerifyError::UseNotDominated {
                    inst: user,
                    value: v,
                })
            }
        }
    }
}

fn check_use_at_block_end(
    f: &Function,
    dt: &DomTree,
    pos: &std::collections::BTreeMap<InstId, (BlockId, usize)>,
    edge_src: BlockId,
    v: ValueId,
    user: InstId,
) -> Result<(), VerifyError> {
    if !dt.is_reachable(edge_src) {
        return Ok(());
    }
    let end = f.block(edge_src).insts.len();
    check_use_at(f, dt, pos, edge_src, end, v, user)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, FunctionBuilder, Terminator, Ty};

    #[test]
    fn accepts_valid_function() {
        let mut b = FunctionBuilder::new("ok", &[("x", Ty::I64)]);
        let x = b.param(0);
        let one = b.const_i64(1);
        let y = b.binop(BinOp::Add, x, one);
        b.ret(Some(y));
        assert!(verify(&b.finish()).is_ok());
    }

    #[test]
    fn rejects_use_before_def_across_blocks() {
        let mut b = FunctionBuilder::new("bad", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let j = b.create_block("j");
        b.cond_br(c, t, j);
        b.switch_to(t);
        let v = b.const_i64(3);
        b.br(j);
        b.switch_to(j);
        let one = b.const_i64(1);
        let bad = b.binop(BinOp::Add, v, one); // v does not dominate j
        b.ret(Some(bad));
        let f = b.finish();
        assert!(matches!(
            verify(&f),
            Err(VerifyError::UseNotDominated { .. })
        ));
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut b = FunctionBuilder::new("bad", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let j = b.create_block("j");
        b.cond_br(c, t, j);
        b.switch_to(t);
        b.br(j);
        b.switch_to(j);
        // φ listing only one of the two predecessors.
        let entry = b.create_block("unused"); // a block that is NOT a pred
        let _ = entry;
        let ph = b.phi(&[(t, c)]);
        b.ret(Some(ph));
        let f = b.finish();
        assert!(matches!(
            verify(&f),
            Err(VerifyError::PhiPredMismatch { .. })
        ));
    }

    #[test]
    fn rejects_branch_to_removed_block() {
        let mut b = FunctionBuilder::new("bad", &[]);
        let dead = b.create_block("dead");
        b.br(dead);
        let mut f = b.finish();
        f.remove_block(dead);
        assert!(matches!(
            verify(&f),
            Err(VerifyError::BranchToDeadBlock { .. })
        ));
    }

    #[test]
    fn rejects_use_of_removed_def() {
        let mut b = FunctionBuilder::new("bad", &[]);
        let v = b.const_i64(1);
        let w = b.neg(v);
        b.ret(Some(w));
        let mut f = b.finish();
        // Remove the const but keep the use.
        let entry = f.entry;
        let const_inst = f.block(entry).insts[0];
        f.remove_inst(const_inst);
        assert!(matches!(
            verify(&f),
            Err(VerifyError::UseOfRemovedDef { .. })
        ));
    }

    #[test]
    fn phi_not_at_top_rejected() {
        let mut b = FunctionBuilder::new("bad", &[("c", Ty::I64)]);
        let c = b.param(0);
        let loop_bb = b.create_block("loop");
        b.br(loop_bb);
        b.switch_to(loop_bb);
        let k = b.const_i64(0);
        let ph = b.phi(&[(b.current_block(), k)]);
        let _ = ph;
        b.cond_br(c, loop_bb, loop_bb);
        let mut f = b.finish();
        // Fix φ incomings to match preds (entry and loop itself).
        let entry = f.entry;
        let phi_inst = f.block(loop_bb).insts[1];
        f.inst_mut(phi_inst).kind = InstKind::Phi(vec![(entry, c), (loop_bb, c)]);
        // φ sits after the const → PhiNotAtTop.
        assert!(matches!(verify(&f), Err(VerifyError::PhiNotAtTop { .. })));
        let _ = Terminator::Ret(None);
    }
}
