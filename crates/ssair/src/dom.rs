//! Dominator tree (Cooper–Harvey–Kennedy) and dominance frontiers.

use std::collections::BTreeMap;

use crate::cfg::Cfg;
use crate::ir::{BlockId, Function};

/// Dominator tree plus dominance frontiers for one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    idom: BTreeMap<BlockId, BlockId>,
    /// Children in the dominator tree.
    pub children: BTreeMap<BlockId, Vec<BlockId>>,
    /// Dominance frontier of each block.
    pub frontier: BTreeMap<BlockId, Vec<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes dominators over the reachable CFG.
    pub fn compute(f: &Function, cfg: &Cfg) -> DomTree {
        let rpo = &cfg.rpo;
        let rpo_index: BTreeMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let mut idom: BTreeMap<BlockId, BlockId> = BTreeMap::new();
        idom.insert(f.entry, f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds_of(b) {
                    if !idom.contains_key(&p) {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(cur, p, &idom, &rpo_index),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        let mut children: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for (&b, &d) in &idom {
            if b != d {
                children.entry(d).or_default().push(b);
            }
        }
        // Dominance frontiers (Cytron et al.).
        let mut frontier: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for &b in rpo {
            let preds = cfg.preds_of(b);
            if preds.len() >= 2 {
                for &p in preds {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    let mut runner = p;
                    while runner != idom[&b] {
                        let entry = frontier.entry(runner).or_default();
                        if !entry.contains(&b) {
                            entry.push(b);
                        }
                        runner = idom[&runner];
                    }
                }
            }
        }
        let _ = rpo_index;
        DomTree {
            idom,
            children,
            frontier,
            entry: f.entry,
        }
    }

    /// Immediate dominator of `b` (`None` for the entry or unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom.get(&b).copied()
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(d) => cur = d,
                None => return false,
            }
        }
    }

    /// Whether `b` is reachable (has dominator information).
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom.contains_key(&b)
    }

    /// Blocks in dominator-tree preorder starting at the entry.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            if let Some(cs) = self.children.get(&b) {
                for &c in cs.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// Iterated dominance frontier of a set of blocks (for φ placement).
    pub fn iterated_frontier(&self, blocks: &[BlockId]) -> Vec<BlockId> {
        let mut out: Vec<BlockId> = Vec::new();
        let mut work: Vec<BlockId> = blocks.to_vec();
        while let Some(b) = work.pop() {
            if let Some(df) = self.frontier.get(&b) {
                for &d in df {
                    if !out.contains(&d) {
                        out.push(d);
                        work.push(d);
                    }
                }
            }
        }
        out
    }
}

fn intersect(
    mut a: BlockId,
    mut b: BlockId,
    idom: &BTreeMap<BlockId, BlockId>,
    rpo_index: &BTreeMap<BlockId, usize>,
) -> BlockId {
    while a != b {
        while rpo_index[&a] > rpo_index[&b] {
            a = idom[&a];
        }
        while rpo_index[&b] > rpo_index[&a] {
            b = idom[&b];
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionBuilder, Ty};

    #[test]
    fn diamond_dominators() {
        let mut b = FunctionBuilder::new("d", &[("c", Ty::I64)]);
        let c = b.param(0);
        let t = b.create_block("t");
        let e = b.create_block("e");
        let j = b.create_block("j");
        let entry = b.current_block();
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom(t), Some(entry));
        assert_eq!(dt.idom(e), Some(entry));
        assert_eq!(dt.idom(j), Some(entry));
        assert!(dt.dominates(entry, j));
        assert!(!dt.dominates(t, j));
        // Frontiers: t and e have {j}.
        assert_eq!(dt.frontier.get(&t), Some(&vec![j]));
        assert_eq!(dt.frontier.get(&e), Some(&vec![j]));
    }

    #[test]
    fn loop_dominators_and_idf() {
        let mut b = FunctionBuilder::new("l", &[("n", Ty::I64)]);
        let n = b.param(0);
        let header = b.create_block("header");
        let body = b.create_block("body");
        let exit = b.create_block("exit");
        let entry = b.current_block();
        b.br(header);
        b.switch_to(header);
        b.cond_br(n, body, exit);
        b.switch_to(body);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let dt = DomTree::compute(&f, &cfg);
        assert_eq!(dt.idom(header), Some(entry));
        assert_eq!(dt.idom(body), Some(header));
        assert_eq!(dt.idom(exit), Some(header));
        assert!(dt.dominates(header, body));
        // A definition in `body` has iterated frontier {header}.
        assert_eq!(dt.iterated_frontier(&[body]), vec![header]);
        let pre = dt.preorder();
        assert_eq!(pre[0], entry);
        assert_eq!(pre.len(), 4);
    }
}
