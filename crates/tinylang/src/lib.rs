//! The minimal imperative language of *On-Stack Replacement, Distilled*
//! (D'Elia & Demetrescu, PLDI 2018), Section 2.
//!
//! A [`Program`] is a sequence of instructions indexed by 1-based program
//! points (Definition 2.1).  The first instruction must be [`Instr::In`] and
//! the last [`Instr::Out`]; every other instruction is an assignment, a
//! (conditional) jump, `skip`, or `abort` (Figure 1).
//!
//! The big-step semantics of Figure 2 is implemented by [`semantics::step`]
//! and [`semantics::run`]; execution traces (Definition 2.6) by
//! [`semantics::trace`].  Program composition `p ∘ p'` (Definition 3.3) is
//! [`Program::compose`].
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use tinylang::{parse_program, Store, semantics::{run, Outcome}};
//!
//! let p = parse_program(
//!     "in x
//!      y := x + 1
//!      out y",
//! )?;
//! let mut s = Store::new();
//! s.set("x", 41);
//! match run(&p, &s, 1_000) {
//!     Outcome::Completed(out) => assert_eq!(out.get("y"), Some(42)),
//!     other => panic!("unexpected outcome: {other:?}"),
//! }
//! # Ok(())
//! # }
//! ```

mod error;
mod expr;
mod instr;
mod parser;
mod point;
mod program;
pub mod semantics;
mod store;
mod var;

pub use error::{ParseError, ProgramError};
pub use expr::{BinOp, Expr};
pub use instr::Instr;
pub use parser::{parse_expr, parse_program};
pub use point::Point;
pub use program::Program;
pub use store::Store;
pub use var::Var;
