//! The big-step operational semantics of Figure 2.
//!
//! A [`State`] is a pair `(σ, l)` (Definition 2.3).  [`step`] implements the
//! transition relation `⇒p`; [`run`] its reflexive-transitive closure up to
//! the final state `(σ', n + 1)` (Definition 2.4); [`trace`] enumerates the
//! unique trace `τpσ` from an initial store (Definition 2.6).

use std::fmt;

use crate::{Instr, Point, Program, Store};

/// A program state `(σ, l)` (Definition 2.3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct State {
    /// The memory store `σ`.
    pub store: Store,
    /// The program point `l` of the next instruction.
    pub point: Point,
}

impl State {
    /// Creates the initial state `(σ, 1)`.
    pub fn initial(store: Store) -> State {
        State {
            store,
            point: Point::new(1),
        }
    }
}

impl fmt::Display for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.store, self.point)
    }
}

/// Why a single step could not be taken.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Stuck {
    /// The instruction evaluated an undefined variable, or `in`/`out`
    /// referred to an undefined variable (premises of rules 6–7 fail).
    UndefinedVariable,
    /// `abort` was reached.
    Aborted,
    /// The point lies outside `[1, n]` (no transition rule applies).
    NoInstruction,
}

/// Result of one transition attempt.
pub type StepResult = Result<State, Stuck>;

/// One transition `(σ, l) ⇒p (σ', l')` per the rules of Figure 2.
///
/// # Errors
///
/// Returns [`Stuck`] if no rule applies: undefined variable use, `abort`, or
/// a point with no instruction.  Per the paper, a stuck execution means the
/// program has undefined semantics on this input store.
pub fn step(p: &Program, s: &State) -> StepResult {
    let Some(instr) = p.instr(s.point) else {
        return Err(Stuck::NoInstruction);
    };
    let l = s.point;
    match instr {
        // Rule (1): assignment.
        Instr::Assign(x, e) => {
            let v = e.eval(&s.store).ok_or(Stuck::UndefinedVariable)?;
            Ok(State {
                store: s.store.with(x.clone(), v),
                point: l.next(),
            })
        }
        // Rule (2): unconditional jump.
        Instr::Goto(m) => Ok(State {
            store: s.store.clone(),
            point: *m,
        }),
        // Rule (3): skip.
        Instr::Skip => Ok(State {
            store: s.store.clone(),
            point: l.next(),
        }),
        // Rules (4)–(5): conditional jump.
        Instr::IfGoto(e, m) => {
            let v = e.eval(&s.store).ok_or(Stuck::UndefinedVariable)?;
            Ok(State {
                store: s.store.clone(),
                point: if v != 0 { *m } else { l.next() },
            })
        }
        // Rule (6): `in` requires every declared variable to be defined.
        Instr::In(vars) => {
            if vars.iter().all(|v| s.store.is_defined(v.as_str())) {
                Ok(State {
                    store: s.store.clone(),
                    point: l.next(),
                })
            } else {
                Err(Stuck::UndefinedVariable)
            }
        }
        // Rule (7): `out` restricts the store to the output variables.
        Instr::Out(vars) => {
            if vars.iter().all(|v| s.store.is_defined(v.as_str())) {
                Ok(State {
                    store: s.store.restrict(vars.iter().map(|v| v.as_str())),
                    point: l.next(),
                })
            } else {
                Err(Stuck::UndefinedVariable)
            }
        }
        // No rule for abort: execution is stuck (undefined semantics).
        Instr::Abort => Err(Stuck::Aborted),
    }
}

/// Outcome of running a program to completion.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Outcome {
    /// Reached `(σ', n + 1)`; carries `σ'` restricted to the outputs.
    Completed(Store),
    /// Execution got stuck (undefined semantics).
    Stuck(Stuck),
    /// The fuel budget was exhausted (models non-termination).
    OutOfFuel,
}

impl Outcome {
    /// The final store of a completed run, if any.
    pub fn completed(self) -> Option<Store> {
        match self {
            Outcome::Completed(s) => Some(s),
            _ => None,
        }
    }
}

/// Runs `p` from initial store `σ̂`, taking at most `fuel` steps.
///
/// Implements the semantic function `[[p]]` of Definition 2.4, made
/// effective by bounding the step count.
pub fn run(p: &Program, initial: &Store, fuel: usize) -> Outcome {
    resume(p, State::initial(initial.clone()), fuel)
}

/// Resumes execution from an arbitrary state — the primitive an OSR
/// transition uses to continue in the target program at the landing point.
pub fn resume(p: &Program, mut state: State, fuel: usize) -> Outcome {
    let final_point = p.len() + 1;
    for _ in 0..fuel {
        if state.point.get() == final_point {
            return Outcome::Completed(state.store);
        }
        match step(p, &state) {
            Ok(next) => state = next,
            Err(stuck) => return Outcome::Stuck(stuck),
        }
    }
    if state.point.get() == final_point {
        Outcome::Completed(state.store)
    } else {
        Outcome::OutOfFuel
    }
}

/// The trace `τpσ` (Definition 2.6), truncated at `fuel` states.
///
/// The returned vector starts with `(σ̂, 1)` and contains every state the
/// execution visits, including the final `(σ', n + 1)` state for completed
/// runs.  Stuck executions end at the stuck state.
pub fn trace(p: &Program, initial: &Store, fuel: usize) -> Vec<State> {
    let mut states = vec![State::initial(initial.clone())];
    let final_point = p.len() + 1;
    for _ in 0..fuel {
        let last = states.last().expect("trace is never empty");
        if last.point.get() == final_point {
            break;
        }
        match step(p, last) {
            Ok(next) => states.push(next),
            Err(_) => break,
        }
    }
    states
}

/// Semantic equivalence check on a finite set of input stores
/// (an effective under-approximation of Definition 2.5).
///
/// Returns the first store on which the two programs disagree, if any.
pub fn differing_input<'a, I>(
    p1: &Program,
    p2: &Program,
    stores: I,
    fuel: usize,
) -> Option<&'a Store>
where
    I: IntoIterator<Item = &'a Store>,
{
    stores
        .into_iter()
        .find(|s| run(p1, s, fuel) != run(p2, s, fuel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_program, Var};

    fn store(pairs: &[(&str, i64)]) -> Store {
        let mut s = Store::new();
        for (k, v) in pairs {
            s.set(*k, *v);
        }
        s
    }

    #[test]
    fn straight_line_run() {
        let p = parse_program(
            "in x
             y := x * 2
             out y",
        )
        .unwrap();
        let out = run(&p, &store(&[("x", 21)]), 100).completed().unwrap();
        assert_eq!(out.get("y"), Some(42));
        // `out` restricts: x is gone.
        assert_eq!(out.get("x"), None);
    }

    #[test]
    fn loop_terminates() {
        let p = parse_program(
            "in n
             i := 0
             s := 0
             if (i >= n) goto 8
             s := s + i
             i := i + 1
             goto 4
             out s",
        )
        .unwrap();
        let out = run(&p, &store(&[("n", 5)]), 1000).completed().unwrap();
        assert_eq!(out.get("s"), Some(1 + 2 + 3 + 4));
    }

    #[test]
    fn missing_input_is_stuck() {
        let p = parse_program("in x\nout x").unwrap();
        assert_eq!(
            run(&p, &Store::new(), 10),
            Outcome::Stuck(Stuck::UndefinedVariable)
        );
    }

    #[test]
    fn abort_is_stuck() {
        let p = parse_program("in x\nabort\nout x").unwrap();
        assert_eq!(
            run(&p, &store(&[("x", 0)]), 10),
            Outcome::Stuck(Stuck::Aborted)
        );
    }

    #[test]
    fn infinite_loop_out_of_fuel() {
        let p = parse_program("in x\ngoto 2\nout x").unwrap();
        assert_eq!(run(&p, &store(&[("x", 0)]), 50), Outcome::OutOfFuel);
    }

    #[test]
    fn trace_records_every_state() {
        let p = parse_program(
            "in x
             y := x + 1
             out y",
        )
        .unwrap();
        let t = trace(&p, &store(&[("x", 1)]), 100);
        let points: Vec<usize> = t.iter().map(|s| s.point.get()).collect();
        assert_eq!(points, vec![1, 2, 3, 4]);
        assert_eq!(t.last().unwrap().store.get("y"), Some(2));
    }

    #[test]
    fn out_restricts_store_to_outputs() {
        let p = parse_program(
            "in x
             t := x + 1
             y := t * t
             out y",
        )
        .unwrap();
        let out = run(&p, &store(&[("x", 2)]), 100).completed().unwrap();
        assert_eq!(out.defined_vars().collect::<Vec<&Var>>().len(), 1);
        assert_eq!(out.get("y"), Some(9));
    }

    #[test]
    fn differing_input_finds_witness() {
        let p1 = parse_program("in x\ny := x\nout y").unwrap();
        let p2 = parse_program("in x\ny := x + 1\nout y").unwrap();
        let stores = [store(&[("x", 0)])];
        assert!(differing_input(&p1, &p2, &stores, 100).is_some());
        assert!(differing_input(&p1, &p1, &stores, 100).is_none());
    }
}
