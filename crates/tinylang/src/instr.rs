use std::collections::BTreeSet;
use std::fmt;

use crate::{Expr, Point, Var};

/// A program instruction (`Instr` in Figure 1).
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Instr {
    /// `in x …`: declares the variables that must be defined on entry.
    In(Vec<Var>),
    /// `out x …`: declares the variables returned as output.
    Out(Vec<Var>),
    /// `x := e`.
    Assign(Var, Expr),
    /// `if (e) goto m`: jump to `m` when `e` evaluates non-zero.
    IfGoto(Expr, Point),
    /// `goto m`.
    Goto(Point),
    /// `skip`.
    Skip,
    /// `abort`: halts execution with undefined semantics.
    Abort,
}

impl Instr {
    /// The variable defined by this instruction, if any.
    ///
    /// Matches the `def(x)` predicate of Figure 3: assignments define their
    /// left-hand side, and `in` defines every declared variable.
    pub fn defs(&self) -> BTreeSet<Var> {
        match self {
            Instr::Assign(x, _) => BTreeSet::from([x.clone()]),
            Instr::In(vars) => vars.iter().cloned().collect(),
            _ => BTreeSet::new(),
        }
    }

    /// Whether this instruction defines `x` (`def(x)`, Figure 3).
    pub fn defines(&self, x: &Var) -> bool {
        match self {
            Instr::Assign(y, _) => y == x,
            Instr::In(vars) => vars.contains(x),
            _ => false,
        }
    }

    /// The variables used by this instruction (`use(x)`, Figure 3).
    ///
    /// `out` uses every declared output variable; branches use their
    /// condition's free variables.
    pub fn uses(&self) -> BTreeSet<Var> {
        match self {
            Instr::Assign(_, e) | Instr::IfGoto(e, _) => e.free_vars(),
            Instr::Out(vars) => vars.iter().cloned().collect(),
            _ => BTreeSet::new(),
        }
    }

    /// Whether this instruction uses `x` (`use(x)`, Figure 3).
    pub fn uses_var(&self, x: &Var) -> bool {
        match self {
            Instr::Assign(_, e) | Instr::IfGoto(e, _) => e.has_free_var(x),
            Instr::Out(vars) => vars.contains(x),
            _ => false,
        }
    }

    /// Whether no constituent of `e` is modified by this instruction
    /// (`trans(e)`, Figure 3).
    pub fn is_transparent_for(&self, e: &Expr) -> bool {
        match self {
            Instr::Assign(x, _) => !e.has_free_var(x),
            Instr::In(vars) => !vars.iter().any(|v| e.has_free_var(v)),
            _ => true,
        }
    }

    /// The expression evaluated by this instruction, if any.
    pub fn expr(&self) -> Option<&Expr> {
        match self {
            Instr::Assign(_, e) | Instr::IfGoto(e, _) => Some(e),
            _ => None,
        }
    }

    /// Whether this is an `in` instruction.
    pub fn is_in(&self) -> bool {
        matches!(self, Instr::In(_))
    }

    /// Whether this is an `out` instruction.
    pub fn is_out(&self) -> bool {
        matches!(self, Instr::Out(_))
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn vars(f: &mut fmt::Formatter<'_>, vs: &[Var]) -> fmt::Result {
            for v in vs {
                write!(f, " {v}")?;
            }
            Ok(())
        }
        match self {
            Instr::In(vs) => {
                write!(f, "in")?;
                vars(f, vs)
            }
            Instr::Out(vs) => {
                write!(f, "out")?;
                vars(f, vs)
            }
            Instr::Assign(x, e) => write!(f, "{x} := {e}"),
            Instr::IfGoto(e, m) => write!(f, "if ({e}) goto {m}"),
            Instr::Goto(m) => write!(f, "goto {m}"),
            Instr::Skip => write!(f, "skip"),
            Instr::Abort => write!(f, "abort"),
        }
    }
}

impl fmt::Debug for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BinOp;

    #[test]
    fn defs_and_uses_of_assign() {
        let i = Instr::Assign(
            Var::new("x"),
            Expr::bin(BinOp::Add, Expr::var("y"), Expr::var("z")),
        );
        assert!(i.defines(&Var::new("x")));
        assert!(!i.defines(&Var::new("y")));
        assert!(i.uses_var(&Var::new("y")));
        assert!(i.uses_var(&Var::new("z")));
        assert!(!i.uses_var(&Var::new("x")));
    }

    #[test]
    fn in_defines_out_uses() {
        let i = Instr::In(vec![Var::new("a"), Var::new("b")]);
        assert!(i.defines(&Var::new("a")));
        let o = Instr::Out(vec![Var::new("r")]);
        assert!(o.uses_var(&Var::new("r")));
        assert!(o.defs().is_empty());
    }

    #[test]
    fn transparency() {
        let e = Expr::bin(BinOp::Add, Expr::var("x"), Expr::num(1));
        assert!(!Instr::Assign(Var::new("x"), Expr::num(0)).is_transparent_for(&e));
        assert!(Instr::Assign(Var::new("y"), Expr::num(0)).is_transparent_for(&e));
        assert!(Instr::Skip.is_transparent_for(&e));
        assert!(!Instr::In(vec![Var::new("x")]).is_transparent_for(&e));
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Instr::IfGoto(Expr::var("c"), Point::new(7)).to_string(),
            "if (c) goto 7"
        );
        assert_eq!(Instr::Goto(Point::new(2)).to_string(), "goto 2");
        assert_eq!(
            Instr::In(vec![Var::new("x"), Var::new("y")]).to_string(),
            "in x y"
        );
    }
}
