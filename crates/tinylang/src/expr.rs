use std::collections::BTreeSet;
use std::fmt;

use crate::{Store, Var};

/// Binary operators available in expressions.
///
/// The paper's grammar (Figure 1) lists `Expr + Expr | ...`; we flesh out the
/// `...` with the usual arithmetic, comparison, and logical operators so that
/// realistic compensation code and benchmark kernels can be expressed.
/// Comparisons and logical operators evaluate to `0` (false) or `1` (true).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division; division by zero yields `0` (the language is
    /// total on defined variables, mirroring the paper's abstract treatment).
    Div,
    /// Remainder; modulo zero yields `0`.
    Rem,
    /// Less-than, yielding `0` or `1`.
    Lt,
    /// Less-or-equal, yielding `0` or `1`.
    Le,
    /// Greater-than, yielding `0` or `1`.
    Gt,
    /// Greater-or-equal, yielding `0` or `1`.
    Ge,
    /// Equality, yielding `0` or `1`.
    Eq,
    /// Disequality, yielding `0` or `1`.
    Ne,
    /// Logical conjunction on truthiness (non-zero is true).
    And,
    /// Logical disjunction on truthiness.
    Or,
}

impl BinOp {
    /// Applies the operator to two integer values.
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a / b
                }
            }
            BinOp::Rem => {
                if b == 0 || (a == i64::MIN && b == -1) {
                    0
                } else {
                    a % b
                }
            }
            BinOp::Lt => i64::from(a < b),
            BinOp::Le => i64::from(a <= b),
            BinOp::Gt => i64::from(a > b),
            BinOp::Ge => i64::from(a >= b),
            BinOp::Eq => i64::from(a == b),
            BinOp::Ne => i64::from(a != b),
            BinOp::And => i64::from(a != 0 && b != 0),
            BinOp::Or => i64::from(a != 0 || b != 0),
        }
    }

    /// The surface syntax of this operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An expression (`Expr` in Figure 1).
///
/// # Examples
///
/// ```
/// use tinylang::{Expr, Store, Var};
///
/// // x + 2
/// let e = Expr::bin(tinylang::BinOp::Add, Expr::var("x"), Expr::num(2));
/// let mut s = Store::new();
/// s.set("x", 40);
/// assert_eq!(e.eval(&s), Some(42));
/// assert!(e.free_vars().contains(&Var::new("x")));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A constant literal (`Num`).
    Num(i64),
    /// A variable reference.
    Var(Var),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// Logical negation (`!e`), yielding `0` or `1`.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a constant literal.
    pub fn num(n: i64) -> Expr {
        Expr::Num(n)
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: impl Into<Var>) -> Expr {
        Expr::Var(name.into())
    }

    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Evaluates the expression in `store` (the `⇓` relation of Figure 2).
    ///
    /// Returns `None` if any referenced variable is undefined (`⊥`), in which
    /// case the enclosing program has undefined semantics at this state.
    pub fn eval(&self, store: &Store) -> Option<i64> {
        match self {
            Expr::Num(n) => Some(*n),
            Expr::Var(v) => store.get(v.as_str()),
            Expr::Bin(op, a, b) => Some(op.apply(a.eval(store)?, b.eval(store)?)),
            Expr::Neg(e) => Some(e.eval(store)?.wrapping_neg()),
            Expr::Not(e) => Some(i64::from(e.eval(store)? == 0)),
        }
    }

    /// The set of free variables of the expression (`freevar(x, e)` holds for
    /// each member).
    pub fn free_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_free_vars(&mut out);
        out
    }

    fn collect_free_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Expr::Num(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Bin(_, a, b) => {
                a.collect_free_vars(out);
                b.collect_free_vars(out);
            }
            Expr::Neg(e) | Expr::Not(e) => e.collect_free_vars(out),
        }
    }

    /// Whether `x` occurs free in the expression (`freevar(x, e)`, §2.2).
    pub fn has_free_var(&self, x: &Var) -> bool {
        match self {
            Expr::Num(_) => false,
            Expr::Var(v) => v == x,
            Expr::Bin(_, a, b) => a.has_free_var(x) || b.has_free_var(x),
            Expr::Neg(e) | Expr::Not(e) => e.has_free_var(x),
        }
    }

    /// Whether the expression is a constant literal (`conlit(c)`, §2.2).
    pub fn is_const_literal(&self) -> bool {
        matches!(self, Expr::Num(_))
    }

    /// Substitutes every free occurrence of `x` by `replacement`.
    ///
    /// Used by constant propagation (`x := e[v] ⇒ x := e[c]`, Figure 5).
    #[must_use]
    pub fn substitute(&self, x: &Var, replacement: &Expr) -> Expr {
        match self {
            Expr::Num(n) => Expr::Num(*n),
            Expr::Var(v) => {
                if v == x {
                    replacement.clone()
                } else {
                    Expr::Var(v.clone())
                }
            }
            Expr::Bin(op, a, b) => Expr::bin(
                *op,
                a.substitute(x, replacement),
                b.substitute(x, replacement),
            ),
            Expr::Neg(e) => Expr::Neg(Box::new(e.substitute(x, replacement))),
            Expr::Not(e) => Expr::Not(Box::new(e.substitute(x, replacement))),
        }
    }

    /// Structural size (number of AST nodes); handy for statistics.
    pub fn size(&self) -> usize {
        match self {
            Expr::Num(_) | Expr::Var(_) => 1,
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Neg(e) | Expr::Not(e) => 1 + e.size(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Num(n) => write!(f, "{n}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::Not(e) => write!(f, "(!{e})"),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<i64> for Expr {
    fn from(n: i64) -> Self {
        Expr::Num(n)
    }
}

impl From<Var> for Expr {
    fn from(v: Var) -> Self {
        Expr::Var(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(pairs: &[(&str, i64)]) -> Store {
        let mut s = Store::new();
        for (k, v) in pairs {
            s.set(*k, *v);
        }
        s
    }

    #[test]
    fn eval_arithmetic() {
        let e = Expr::bin(
            BinOp::Mul,
            Expr::bin(BinOp::Add, Expr::var("x"), Expr::num(1)),
            Expr::num(3),
        );
        assert_eq!(e.eval(&store(&[("x", 4)])), Some(15));
    }

    #[test]
    fn eval_undefined_var_is_none() {
        let e = Expr::bin(BinOp::Add, Expr::var("missing"), Expr::num(1));
        assert_eq!(e.eval(&Store::new()), None);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(BinOp::Div.apply(5, 0), 0);
        assert_eq!(BinOp::Rem.apply(5, 0), 0);
        assert_eq!(BinOp::Div.apply(i64::MIN, -1), 0);
    }

    #[test]
    fn comparisons_yield_bool_ints() {
        assert_eq!(BinOp::Lt.apply(1, 2), 1);
        assert_eq!(BinOp::Ge.apply(1, 2), 0);
        assert_eq!(BinOp::And.apply(3, 0), 0);
        assert_eq!(BinOp::Or.apply(0, -7), 1);
    }

    #[test]
    fn free_vars_and_substitution() {
        let e = Expr::bin(BinOp::Add, Expr::var("x"), Expr::var("y"));
        assert!(e.has_free_var(&Var::new("x")));
        assert!(!e.has_free_var(&Var::new("z")));
        let e2 = e.substitute(&Var::new("x"), &Expr::num(7));
        assert_eq!(e2.to_string(), "(7 + y)");
        assert!(!e2.has_free_var(&Var::new("x")));
    }

    #[test]
    fn display_round_trip_shape() {
        let e = Expr::Not(Box::new(Expr::bin(BinOp::Eq, Expr::var("a"), Expr::num(0))));
        assert_eq!(e.to_string(), "(!(a == 0))");
    }

    #[test]
    fn conlit_predicate() {
        assert!(Expr::num(3).is_const_literal());
        assert!(!Expr::var("x").is_const_literal());
    }
}
