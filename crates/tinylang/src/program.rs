use std::fmt;

use crate::{Instr, Point, ProgramError, Var};

/// A program `p = ⟨I₁, …, Iₙ⟩` (Definition 2.1).
///
/// Invariants enforced at construction:
/// * `|p| ≥ 2`;
/// * `I₁` is `in …` and `Iₙ` is `out …`;
/// * no other instruction is `in`/`out`;
/// * every jump target lies in `[1, n]`.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use tinylang::{Expr, Instr, Program, Var};
///
/// let p = Program::new(vec![
///     Instr::In(vec![Var::new("x")]),
///     Instr::Assign(Var::new("y"), Expr::var("x")),
///     Instr::Out(vec![Var::new("y")]),
/// ])?;
/// assert_eq!(p.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Program {
    instrs: Vec<Instr>,
}

impl Program {
    /// Builds a program, checking the well-formedness conditions of
    /// Definition 2.1.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violated condition.
    pub fn new(instrs: Vec<Instr>) -> Result<Self, ProgramError> {
        if instrs.len() < 2 {
            return Err(ProgramError::TooShort);
        }
        if !instrs[0].is_in() {
            return Err(ProgramError::MissingIn);
        }
        if !instrs[instrs.len() - 1].is_out() {
            return Err(ProgramError::MissingOut);
        }
        let n = instrs.len();
        for (i, instr) in instrs.iter().enumerate() {
            let point = i + 1;
            if (instr.is_in() && i != 0) || (instr.is_out() && i != n - 1) {
                return Err(ProgramError::MisplacedBoundary { point });
            }
            let target = match instr {
                Instr::Goto(m) | Instr::IfGoto(_, m) => Some(m.get()),
                _ => None,
            };
            if let Some(t) = target {
                if t < 1 || t > n {
                    return Err(ProgramError::JumpOutOfRange { point, target: t });
                }
            }
        }
        Ok(Program { instrs })
    }

    /// Number of instructions `|p|`.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Programs are never empty; provided for clippy-friendliness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The instruction `Iₗ` at program point `l`, or `None` if `l > n`.
    pub fn instr(&self, l: Point) -> Option<&Instr> {
        self.instrs.get(l.index0())
    }

    /// The instruction at point `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l > |p|`.
    pub fn instr_at(&self, l: Point) -> &Instr {
        &self.instrs[l.index0()]
    }

    /// All instructions in program order.
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// Iterates over `(point, instruction)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Point, &Instr)> + '_ {
        self.instrs
            .iter()
            .enumerate()
            .map(|(i, instr)| (Point::new(i + 1), instr))
    }

    /// All program points `1..=n`.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        (1..=self.len()).map(Point::new)
    }

    /// The input variables declared by `I₁ = in …`.
    pub fn input_vars(&self) -> &[Var] {
        match &self.instrs[0] {
            Instr::In(vs) => vs,
            _ => unreachable!("validated at construction"),
        }
    }

    /// The output variables declared by `Iₙ = out …`.
    pub fn output_vars(&self) -> &[Var] {
        match self.instrs.last() {
            Some(Instr::Out(vs)) => vs,
            _ => unreachable!("validated at construction"),
        }
    }

    /// Control-flow successors of point `l`.
    ///
    /// `out` (point `n`) has no successors inside the program; the virtual
    /// final point `n + 1` is not part of the CFG.  `abort` has no
    /// successors either.
    pub fn successors(&self, l: Point) -> Vec<Point> {
        let n = self.len();
        match self.instr_at(l) {
            Instr::Goto(m) => vec![*m],
            Instr::IfGoto(_, m) => {
                if l.get() < n && m.get() != l.get() + 1 {
                    vec![l.next(), *m]
                } else if l.get() < n {
                    vec![l.next()]
                } else {
                    vec![*m]
                }
            }
            Instr::Abort | Instr::Out(_) => vec![],
            _ => {
                if l.get() < n {
                    vec![l.next()]
                } else {
                    vec![]
                }
            }
        }
    }

    /// Control-flow predecessors of point `l`.
    pub fn predecessors(&self, l: Point) -> Vec<Point> {
        self.points()
            .filter(|&m| self.successors(m).contains(&l))
            .collect()
    }

    /// Replaces the instruction at point `l`, revalidating the program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the edit breaks well-formedness.
    pub fn with_instr(&self, l: Point, instr: Instr) -> Result<Program, ProgramError> {
        let mut instrs = self.instrs.clone();
        instrs[l.index0()] = instr;
        Program::new(instrs)
    }

    /// Program composition `p ∘ p'` (Definition 3.3).
    ///
    /// Requires `self` to end with `out x₁…xₖ` and `other` to start with
    /// `in x'₁…x'ₖ'` where `{x'ᵢ} ⊆ {xᵢ}`.  Jump targets of `other` are
    /// relocated by `n - 2` so that the concatenation behaves as running
    /// `self` then `other`.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::NotComposable`] if the interface sets do not
    /// nest.
    pub fn compose(&self, other: &Program) -> Result<Program, ProgramError> {
        let outs = self.output_vars();
        let ins = other.input_vars();
        for v in ins {
            if !outs.contains(v) {
                return Err(ProgramError::NotComposable {
                    reason: format!("input `{v}` of second program not produced by first"),
                });
            }
        }
        let n = self.len();
        let mut instrs: Vec<Instr> = self.instrs[..n - 1].to_vec();
        let shift = n - 2;
        for instr in &other.instrs()[1..] {
            let relocated = match instr {
                Instr::Goto(m) => Instr::Goto(Point::new(m.get() + shift)),
                Instr::IfGoto(e, m) => Instr::IfGoto(e.clone(), Point::new(m.get() + shift)),
                other => other.clone(),
            };
            instrs.push(relocated);
        }
        Program::new(instrs)
    }

    /// Sum of all instruction sizes; a crude complexity measure used by the
    /// evaluation harness.
    pub fn total_size(&self) -> usize {
        self.instrs
            .iter()
            .map(|i| 1 + i.expr().map_or(0, crate::Expr::size))
            .sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (l, instr) in self.iter() {
            writeln!(f, "{:>3}: {instr}", l.get())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Program[")?;
        write!(f, "{self}")?;
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BinOp, Expr};

    fn sample() -> Program {
        // 1: in x
        // 2: y := x + 1
        // 3: if (y < 10) goto 2
        // 4: out y
        Program::new(vec![
            Instr::In(vec![Var::new("x")]),
            Instr::Assign(
                Var::new("y"),
                Expr::bin(BinOp::Add, Expr::var("x"), Expr::num(1)),
            ),
            Instr::IfGoto(
                Expr::bin(BinOp::Lt, Expr::var("y"), Expr::num(10)),
                Point::new(2),
            ),
            Instr::Out(vec![Var::new("y")]),
        ])
        .unwrap()
    }

    #[test]
    fn validation_rejects_bad_programs() {
        assert_eq!(
            Program::new(vec![Instr::Skip]).unwrap_err(),
            ProgramError::TooShort
        );
        assert_eq!(
            Program::new(vec![Instr::Skip, Instr::Out(vec![])]).unwrap_err(),
            ProgramError::MissingIn
        );
        assert_eq!(
            Program::new(vec![Instr::In(vec![]), Instr::Skip]).unwrap_err(),
            ProgramError::MissingOut
        );
        assert_eq!(
            Program::new(vec![
                Instr::In(vec![]),
                Instr::Goto(Point::new(9)),
                Instr::Out(vec![]),
            ])
            .unwrap_err(),
            ProgramError::JumpOutOfRange {
                point: 2,
                target: 9
            }
        );
    }

    #[test]
    fn successors_of_branch() {
        let p = sample();
        assert_eq!(p.successors(Point::new(1)), vec![Point::new(2)]);
        assert_eq!(
            p.successors(Point::new(3)),
            vec![Point::new(4), Point::new(2)]
        );
        assert!(p.successors(Point::new(4)).is_empty());
    }

    #[test]
    fn predecessors_invert_successors() {
        let p = sample();
        assert_eq!(
            p.predecessors(Point::new(2)),
            vec![Point::new(1), Point::new(3)]
        );
        assert_eq!(p.predecessors(Point::new(1)), vec![]);
    }

    #[test]
    fn compose_relocates_targets() {
        // p: in x; y := x; out y     p': in y; if (y) goto 3; skip; out y
        let p = Program::new(vec![
            Instr::In(vec![Var::new("x")]),
            Instr::Assign(Var::new("y"), Expr::var("x")),
            Instr::Out(vec![Var::new("y")]),
        ])
        .unwrap();
        let q = Program::new(vec![
            Instr::In(vec![Var::new("y")]),
            Instr::IfGoto(Expr::var("y"), Point::new(4)),
            Instr::Skip,
            Instr::Out(vec![Var::new("y")]),
        ])
        .unwrap();
        let c = p.compose(&q).unwrap();
        assert_eq!(c.len(), 5);
        // q's `if … goto 4` must now target 4 + (3 - 2) = 5.
        assert_eq!(
            c.instr_at(Point::new(3)),
            &Instr::IfGoto(Expr::var("y"), Point::new(5))
        );
    }

    #[test]
    fn compose_rejects_missing_interface() {
        let p = sample(); // outputs y
        let q = Program::new(vec![
            Instr::In(vec![Var::new("z")]),
            Instr::Out(vec![Var::new("z")]),
        ])
        .unwrap();
        assert!(matches!(
            p.compose(&q),
            Err(ProgramError::NotComposable { .. })
        ));
    }

    #[test]
    fn conditional_branch_to_fallthrough_has_single_successor() {
        let p = Program::new(vec![
            Instr::In(vec![Var::new("x")]),
            Instr::IfGoto(Expr::var("x"), Point::new(3)),
            Instr::Out(vec![Var::new("x")]),
        ])
        .unwrap();
        assert_eq!(p.successors(Point::new(2)), vec![Point::new(3)]);
    }
}
