use std::fmt;

/// A 1-based program point (the index `l` of Definition 2.3).
///
/// Point `1` addresses the `in` instruction and point `n = |p|` the `out`
/// instruction.  The *final* state of a completed execution sits at the
/// virtual point `n + 1` (Definition 2.4), which is representable but never
/// addresses an instruction.
///
/// # Examples
///
/// ```
/// use tinylang::Point;
///
/// let l = Point::new(3);
/// assert_eq!(l.get(), 3);
/// assert_eq!(l.next(), Point::new(4));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point(usize);

impl Point {
    /// Creates a program point from a 1-based index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is zero; program points are 1-based.
    pub fn new(index: usize) -> Self {
        assert!(index >= 1, "program points are 1-based");
        Point(index)
    }

    /// Returns the 1-based index.
    pub fn get(self) -> usize {
        self.0
    }

    /// The point immediately after this one (`l + 1` in Figure 2).
    #[must_use]
    pub fn next(self) -> Point {
        Point(self.0 + 1)
    }

    /// Returns the 0-based index into the instruction vector.
    pub(crate) fn index0(self) -> usize {
        self.0 - 1
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Point({})", self.0)
    }
}

impl From<usize> for Point {
    fn from(i: usize) -> Self {
        Point::new(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_increments() {
        assert_eq!(Point::new(1).next().get(), 2);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_rejected() {
        let _ = Point::new(0);
    }

    #[test]
    fn ordering() {
        assert!(Point::new(2) < Point::new(10));
    }
}
