use std::error::Error;
use std::fmt;

/// Error constructing an ill-formed [`crate::Program`] (Definition 2.1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProgramError {
    /// Programs need at least an `in` and an `out` instruction.
    TooShort,
    /// The first instruction must be `in …`.
    MissingIn,
    /// The last instruction must be `out …`.
    MissingOut,
    /// `in`/`out` may only appear at the first/last position.
    MisplacedBoundary {
        /// 1-based offending position.
        point: usize,
    },
    /// A jump targets a point outside `[1, n]`.
    JumpOutOfRange {
        /// 1-based position of the jump.
        point: usize,
        /// The out-of-range target.
        target: usize,
    },
    /// Two programs being composed (Definition 3.3) are not composable.
    NotComposable {
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::TooShort => write!(f, "program must have at least two instructions"),
            ProgramError::MissingIn => write!(f, "first instruction must be `in`"),
            ProgramError::MissingOut => write!(f, "last instruction must be `out`"),
            ProgramError::MisplacedBoundary { point } => {
                write!(f, "`in`/`out` misplaced at point {point}")
            }
            ProgramError::JumpOutOfRange { point, target } => {
                write!(
                    f,
                    "jump at point {point} targets out-of-range point {target}"
                )
            }
            ProgramError::NotComposable { reason } => {
                write!(f, "programs are not composable: {reason}")
            }
        }
    }
}

impl Error for ProgramError {}

/// Error parsing the textual program syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line of the failure.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

impl From<ProgramError> for ParseError {
    fn from(e: ProgramError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}
