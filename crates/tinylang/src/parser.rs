//! Parser for the textual program syntax.
//!
//! One instruction per line; program points are assigned in order of
//! appearance (blank lines and `#`-comments are skipped).  Expressions use
//! conventional C-like precedence.
//!
//! ```text
//! in x n
//! i := 0
//! if (i >= n) goto 6
//! i := i + x
//! goto 3
//! out i
//! ```

use crate::{BinOp, Expr, Instr, ParseError, Point, Program, Var};

/// Parses a whole program from its textual form.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the offending source line, or a
/// program-level validation failure (reported at line 0).
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// let p = tinylang::parse_program("in x\nout x")?;
/// assert_eq!(p.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let mut instrs = Vec::new();
    for (lineno0, raw) in src.lines().enumerate() {
        let line = raw.trim();
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        // Accept (and ignore) a leading `N:` point label, as printed by
        // `Program`'s `Display` implementation.
        let line = match line.split_once(':') {
            Some((label, rest))
                if !label.is_empty()
                    && label.chars().all(|c| c.is_ascii_digit())
                    && !rest.starts_with('=') =>
            {
                rest.trim()
            }
            _ => line,
        };
        let instr = parse_instr(line).map_err(|message| ParseError {
            line: lineno0 + 1,
            message,
        })?;
        instrs.push(instr);
    }
    Program::new(instrs).map_err(ParseError::from)
}

fn parse_instr(line: &str) -> Result<Instr, String> {
    if let Some(rest) = line
        .strip_prefix("in ")
        .or(if line == "in" { Some("") } else { None })
    {
        return Ok(Instr::In(parse_var_list(rest)?));
    }
    if let Some(rest) = line
        .strip_prefix("out ")
        .or(if line == "out" { Some("") } else { None })
    {
        return Ok(Instr::Out(parse_var_list(rest)?));
    }
    if line == "skip" {
        return Ok(Instr::Skip);
    }
    if line == "abort" {
        return Ok(Instr::Abort);
    }
    if let Some(rest) = line.strip_prefix("goto ") {
        let target = parse_point(rest.trim())?;
        return Ok(Instr::Goto(target));
    }
    if let Some(rest) = line.strip_prefix("if") {
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            return Err("expected `(` after `if`".to_string());
        };
        let close = find_matching_paren(rest)?;
        let cond_src = &rest[..close];
        let tail = rest[close + 1..].trim();
        let Some(target_src) = tail.strip_prefix("goto ") else {
            return Err("expected `goto` after if-condition".to_string());
        };
        let cond = parse_expr_str(cond_src)?;
        let target = parse_point(target_src.trim())?;
        return Ok(Instr::IfGoto(cond, target));
    }
    if let Some(idx) = line.find(":=") {
        let (lhs, rhs) = line.split_at(idx);
        let var = parse_var(lhs.trim())?;
        let expr = parse_expr_str(rhs[2..].trim())?;
        return Ok(Instr::Assign(var, expr));
    }
    Err(format!("unrecognized instruction: `{line}`"))
}

fn find_matching_paren(s: &str) -> Result<usize, String> {
    let mut depth = 1usize;
    for (i, c) in s.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Ok(i);
                }
            }
            _ => {}
        }
    }
    Err("unbalanced parentheses".to_string())
}

fn parse_point(s: &str) -> Result<Point, String> {
    let n: usize = s
        .parse()
        .map_err(|_| format!("invalid program point `{s}`"))?;
    if n == 0 {
        return Err("program points are 1-based".to_string());
    }
    Ok(Point::new(n))
}

fn parse_var_list(s: &str) -> Result<Vec<Var>, String> {
    s.split_whitespace().map(parse_var).collect()
}

fn parse_var(s: &str) -> Result<Var, String> {
    if s.is_empty()
        || !s
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
        || !s
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
    {
        return Err(format!("invalid variable name `{s}`"));
    }
    Ok(Var::new(s))
}

/// Parses a single expression; exposed for tests and compensation-code
/// builders.
///
/// # Errors
///
/// Returns a human-readable message on malformed input.
pub(crate) fn parse_expr_str(s: &str) -> Result<Expr, String> {
    let tokens = tokenize(s)?;
    let mut p = ExprParser { tokens, pos: 0 };
    let e = p.parse_or()?;
    if p.pos != p.tokens.len() {
        return Err(format!("trailing tokens after expression in `{s}`"));
    }
    Ok(e)
}

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Num(i64),
    Ident(String),
    Op(&'static str),
    LParen,
    RParen,
}

fn tokenize(s: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let b = s.as_bytes();
    let mut i = 0;
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            '0'..='9' => {
                let start = i;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = s[start..i]
                    .parse()
                    .map_err(|_| format!("integer literal overflow in `{s}`"))?;
                out.push(Tok::Num(n));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < b.len()
                    && ((b[i] as char).is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Tok::Ident(s[start..i].to_string()));
            }
            _ => {
                let two = if i + 1 < b.len() { &s[i..i + 2] } else { "" };
                let op2 = ["<=", ">=", "==", "!=", "&&", "||"]
                    .iter()
                    .find(|o| **o == two);
                if let Some(op) = op2 {
                    out.push(Tok::Op(op));
                    i += 2;
                } else {
                    let one = &s[i..i + 1];
                    let op1 = ["+", "-", "*", "/", "%", "<", ">", "!"]
                        .iter()
                        .find(|o| **o == one);
                    match op1 {
                        Some(op) => {
                            out.push(Tok::Op(op));
                            i += 1;
                        }
                        None => return Err(format!("unexpected character `{c}` in `{s}`")),
                    }
                }
            }
        }
    }
    Ok(out)
}

struct ExprParser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl ExprParser {
    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn eat_op(&mut self, ops: &[&'static str]) -> Option<&'static str> {
        if let Some(Tok::Op(o)) = self.peek() {
            if ops.contains(o) {
                let o = *o;
                self.pos += 1;
                return Some(o);
            }
        }
        None
    }

    fn parse_or(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_and()?;
        while self.eat_op(&["||"]).is_some() {
            let rhs = self.parse_and()?;
            lhs = Expr::bin(BinOp::Or, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_cmp()?;
        while self.eat_op(&["&&"]).is_some() {
            let rhs = self.parse_cmp()?;
            lhs = Expr::bin(BinOp::And, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, String> {
        let lhs = self.parse_add()?;
        if let Some(op) = self.eat_op(&["<=", ">=", "==", "!=", "<", ">"]) {
            let rhs = self.parse_add()?;
            let b = match op {
                "<" => BinOp::Lt,
                "<=" => BinOp::Le,
                ">" => BinOp::Gt,
                ">=" => BinOp::Ge,
                "==" => BinOp::Eq,
                "!=" => BinOp::Ne,
                _ => unreachable!(),
            };
            return Ok(Expr::bin(b, lhs, rhs));
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_mul()?;
        while let Some(op) = self.eat_op(&["+", "-"]) {
            let rhs = self.parse_mul()?;
            let b = if op == "+" { BinOp::Add } else { BinOp::Sub };
            lhs = Expr::bin(b, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<Expr, String> {
        let mut lhs = self.parse_unary()?;
        while let Some(op) = self.eat_op(&["*", "/", "%"]) {
            let rhs = self.parse_unary()?;
            let b = match op {
                "*" => BinOp::Mul,
                "/" => BinOp::Div,
                _ => BinOp::Rem,
            };
            lhs = Expr::bin(b, lhs, rhs);
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, String> {
        if self.eat_op(&["-"]).is_some() {
            return Ok(Expr::Neg(Box::new(self.parse_unary()?)));
        }
        if self.eat_op(&["!"]).is_some() {
            return Ok(Expr::Not(Box::new(self.parse_unary()?)));
        }
        self.parse_primary()
    }

    fn parse_primary(&mut self) -> Result<Expr, String> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.pos += 1;
                Ok(Expr::Num(n))
            }
            Some(Tok::Ident(name)) => {
                self.pos += 1;
                Ok(Expr::Var(Var::new(name)))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.parse_or()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.pos += 1;
                        Ok(e)
                    }
                    _ => Err("expected `)`".to_string()),
                }
            }
            other => Err(format!("unexpected token {other:?}")),
        }
    }
}

/// Parses a standalone expression (useful for building compensation code and
/// in tests).
///
/// # Errors
///
/// Returns a [`ParseError`] (line 1) on malformed input.
pub fn parse_expr(s: &str) -> Result<Expr, ParseError> {
    parse_expr_str(s).map_err(|message| ParseError { line: 1, message })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_instruction_forms() {
        let p = parse_program(
            "in x y
             z := x + y * 2
             if (z <= 10) goto 5
             goto 6
             skip
             out z",
        )
        .unwrap();
        assert_eq!(p.len(), 6);
        assert_eq!(p.instr_at(Point::new(5)), &Instr::Skip);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let p = parse_program(
            "# header comment
             in x

             # body
             out x",
        )
        .unwrap();
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("1 + 2 * 3").unwrap();
        assert_eq!(e.to_string(), "(1 + (2 * 3))");
    }

    #[test]
    fn precedence_cmp_over_and() {
        let e = parse_expr("a < b && c != 0").unwrap();
        assert_eq!(e.to_string(), "((a < b) && (c != 0))");
    }

    #[test]
    fn unary_operators() {
        let e = parse_expr("-x + !y").unwrap();
        assert_eq!(e.to_string(), "((-x) + (!y))");
    }

    #[test]
    fn nested_parens_in_if() {
        let p = parse_program(
            "in a b
             if ((a + b) * 2 > 10) goto 3
             out a",
        )
        .unwrap();
        assert!(matches!(p.instr_at(Point::new(2)), Instr::IfGoto(_, _)));
    }

    #[test]
    fn error_reports_line() {
        let err = parse_program("in x\nfrobnicate\nout x").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("unrecognized"));
    }

    #[test]
    fn rejects_bad_variable() {
        assert!(parse_program("in 1x\nout y").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "in x y
            t := x * y + 1
            if (t > 0) goto 5
            t := -t
            out t";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }
}
