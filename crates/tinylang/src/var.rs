use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

/// A program variable (`Var` in Figure 1).
///
/// Variables are cheap to clone (reference-counted) and ordered, so they can
/// be used as map keys in stores and live sets.
///
/// # Examples
///
/// ```
/// use tinylang::Var;
///
/// let x = Var::new("x");
/// assert_eq!(x.as_str(), "x");
/// assert_eq!(x.to_string(), "x");
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Var(Arc::from(name.as_ref()))
    }

    /// Returns the variable name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

impl Borrow<str> for Var {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Var {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_eq() {
        let a = Var::new("alpha");
        let b: Var = "alpha".into();
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "alpha");
        assert_eq!(format!("{a:?}"), "Var(alpha)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Var::new("z"), Var::new("a"), Var::new("m")];
        v.sort();
        let names: Vec<_> = v.iter().map(Var::as_str).collect();
        assert_eq!(names, ["a", "m", "z"]);
    }

    #[test]
    fn borrow_str_lookup() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(Var::new("x"));
        assert!(set.contains("x"));
        assert!(!set.contains("y"));
    }
}
