use std::collections::BTreeMap;
use std::fmt;

use crate::Var;

/// A memory store `σ : Var → ℤ ∪ {⊥}` (Definition 2.2).
///
/// Undefined variables (`⊥`) are simply absent from the map.
///
/// # Examples
///
/// ```
/// use tinylang::{Store, Var};
///
/// let mut s = Store::new();
/// s.set("x", 3);
/// assert_eq!(s.get("x"), Some(3));
/// assert_eq!(s.get("y"), None); // ⊥
///
/// let restricted = s.restrict([Var::new("y")]);
/// assert_eq!(restricted.get("x"), None);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Store {
    map: BTreeMap<Var, i64>,
}

impl Store {
    /// Creates an empty store (every variable `⊥`).
    pub fn new() -> Self {
        Store::default()
    }

    /// Looks up a variable; `None` models `⊥`.
    pub fn get(&self, var: &str) -> Option<i64> {
        self.map.get(var).copied()
    }

    /// `σ[x ← v]` in place.
    pub fn set(&mut self, var: impl Into<Var>, value: i64) {
        self.map.insert(var.into(), value);
    }

    /// Functional update `σ[x ← v]` (Definition 2.2).
    #[must_use]
    pub fn with(&self, var: impl Into<Var>, value: i64) -> Store {
        let mut s = self.clone();
        s.set(var, value);
        s
    }

    /// Whether the variable is defined (`σ(x) ≠ ⊥`).
    pub fn is_defined(&self, var: &str) -> bool {
        self.map.contains_key(var)
    }

    /// `σ|A`: restriction to the variables in `A` (Definition 2.2).
    #[must_use]
    pub fn restrict<I>(&self, vars: I) -> Store
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let mut out = Store::new();
        for v in vars {
            if let Some(val) = self.get(v.as_ref()) {
                out.set(Var::new(v.as_ref()), val);
            }
        }
        out
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, i64)> + '_ {
        self.map.iter().map(|(k, v)| (k, *v))
    }

    /// The set of defined variables.
    pub fn defined_vars(&self) -> impl Iterator<Item = &Var> + '_ {
        self.map.keys()
    }

    /// Number of defined variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is defined.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Merges `other` into `self`, overwriting on conflict.
    pub fn extend_from(&mut self, other: &Store) {
        for (k, v) in other.iter() {
            self.map.insert(k.clone(), v);
        }
    }
}

impl fmt::Debug for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Store {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl FromIterator<(Var, i64)> for Store {
    fn from_iter<T: IntoIterator<Item = (Var, i64)>>(iter: T) -> Self {
        Store {
            map: iter.into_iter().collect(),
        }
    }
}

impl<'a> IntoIterator for &'a Store {
    type Item = (&'a Var, &'a i64);
    type IntoIter = std::collections::btree_map::Iter<'a, Var, i64>;

    fn into_iter(self) -> Self::IntoIter {
        self.map.iter()
    }
}

impl Extend<(Var, i64)> for Store {
    fn extend<T: IntoIterator<Item = (Var, i64)>>(&mut self, iter: T) {
        self.map.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn restriction_keeps_only_listed() {
        let mut s = Store::new();
        s.set("a", 1);
        s.set("b", 2);
        let r = s.restrict(["a", "c"]);
        assert_eq!(r.get("a"), Some(1));
        assert_eq!(r.get("b"), None);
        assert_eq!(r.get("c"), None);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn functional_update_leaves_original() {
        let s = Store::new();
        let s2 = s.with("x", 9);
        assert!(s.is_empty());
        assert_eq!(s2.get("x"), Some(9));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut s: Store = [(Var::new("x"), 1)].into_iter().collect();
        s.extend([(Var::new("y"), 2)]);
        assert_eq!(s.len(), 2);
        assert_eq!(format!("{s}"), "{x=1, y=2}");
    }

    #[test]
    fn equality_is_extensional() {
        let mut a = Store::new();
        a.set("x", 1);
        let mut b = Store::new();
        b.set("x", 1);
        assert_eq!(a, b);
        b.set("y", 0);
        assert_ne!(a, b);
    }
}
