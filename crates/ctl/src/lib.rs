//! First-order CTL machinery of *On-Stack Replacement, Distilled* §2.2.
//!
//! Program properties are expressed as [`Formula`]s over the (finite) set of
//! program points of a [`tinylang::Program`], combining the local predicates
//! of Figure 3 ([`Atom`]) with forward and backward temporal operators
//! (`AX`, `EX`, `A U`, `E U` and their backward duals).
//!
//! [`Checker`] implements standard finite-state CTL model checking by
//! fix-point iteration over the control-flow graph.  The derived analyses —
//! live variables (Definition 2.7), reaching definitions, and the unique
//! reaching definition predicate `ud` of Algorithm 1 — are available both
//! through CTL formulas and through classic iterative dataflow
//! ([`dataflow`]); the test-suite cross-checks the two implementations
//! against each other.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use ctl::{lives, Checker};
//! use tinylang::{parse_program, Point, Var};
//!
//! let p = parse_program(
//!     "in x
//!      y := x + 1
//!      out y",
//! )?;
//! let checker = Checker::new(&p);
//! // x is live at point 2 (about to be read), but dead at point 3.
//! assert!(checker.holds_at(&lives(&Var::new("x")), Point::new(2)));
//! assert!(!checker.holds_at(&lives(&Var::new("x")), Point::new(3)));
//! # Ok(())
//! # }
//! ```

mod checker;
pub mod dataflow;
mod formula;
mod predicates;

pub use checker::Checker;
pub use formula::{Atom, Formula};
pub use predicates::{
    defined_before, live_vars, live_vars_ctl, lives, ud, ud_ctl, unique_reaching_def,
    LivenessOracle, ReachingOracle,
};
