use std::fmt;

use tinylang::{Expr, Instr, Point, Var};

/// A local predicate of Figure 3, evaluated at a single program point.
///
/// Atoms are *ground*: meta-variables have already been substituted by the
/// rewrite engine before a formula reaches the checker.
#[derive(Clone, PartialEq, Debug)]
pub enum Atom {
    /// `def(x)`: the instruction at this point defines `x`.
    Def(Var),
    /// `use(x)`: the instruction at this point uses `x`.
    Use(Var),
    /// `stmt(I)`: the instruction at this point is exactly `I`.
    Stmt(Instr),
    /// `point(m)`: this point is `m`.
    Point(Point),
    /// `trans(e)`: no constituent of `e` is modified by the instruction at
    /// this point.
    Trans(Expr),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Def(x) => write!(f, "def({x})"),
            Atom::Use(x) => write!(f, "use({x})"),
            Atom::Stmt(i) => write!(f, "stmt({i})"),
            Atom::Point(m) => write!(f, "point({m})"),
            Atom::Trans(e) => write!(f, "trans({e})"),
        }
    }
}

/// A CTL formula over program points (§2.2).
///
/// Forward operators (`AX`, `EX`, `AU`, `EU`) quantify over control-flow
/// successors; the `B`-prefixed duals (`←AX`, `←EX`, `←A`, `←E` in the
/// paper) quantify over predecessors.  Until is *non-strict*: `φ U ψ` is
/// satisfied at a point where `ψ` already holds.
///
/// # Examples
///
/// ```
/// use ctl::{Atom, Formula};
/// use tinylang::Var;
///
/// // →E(¬def(x) U use(x)) — the forward half of liveness.
/// let x = Var::new("x");
/// let f = Formula::eu(
///     Formula::not(Formula::atom(Atom::Def(x.clone()))),
///     Formula::atom(Atom::Use(x)),
/// );
/// assert_eq!(f.to_string(), "E(!def(x) U use(x))");
/// ```
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// A local predicate.
    Atom(Atom),
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction.
    And(Box<Formula>, Box<Formula>),
    /// Disjunction.
    Or(Box<Formula>, Box<Formula>),
    /// `→AX φ`: φ holds at all immediate successors.
    Ax(Box<Formula>),
    /// `→EX φ`: φ holds at some immediate successor.
    Ex(Box<Formula>),
    /// `→A(φ U ψ)`: on all forward paths, φ until ψ.
    Au(Box<Formula>, Box<Formula>),
    /// `→E(φ U ψ)`: on some forward path, φ until ψ.
    Eu(Box<Formula>, Box<Formula>),
    /// `←AX φ`: φ holds at all immediate predecessors.
    Bax(Box<Formula>),
    /// `←EX φ`: φ holds at some immediate predecessor.
    Bex(Box<Formula>),
    /// `←A(φ U ψ)`: on all backward paths, φ until ψ.
    Bau(Box<Formula>, Box<Formula>),
    /// `←E(φ U ψ)`: on some backward path, φ until ψ.
    Beu(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// Lifts an atom into a formula.
    pub fn atom(a: Atom) -> Formula {
        Formula::Atom(a)
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// Conjunction.
    pub fn and(a: Formula, b: Formula) -> Formula {
        Formula::And(Box::new(a), Box::new(b))
    }

    /// Disjunction.
    pub fn or(a: Formula, b: Formula) -> Formula {
        Formula::Or(Box::new(a), Box::new(b))
    }

    /// `→AX φ`.
    pub fn ax(f: Formula) -> Formula {
        Formula::Ax(Box::new(f))
    }

    /// `→EX φ`.
    pub fn ex(f: Formula) -> Formula {
        Formula::Ex(Box::new(f))
    }

    /// `→A(φ U ψ)`.
    pub fn au(phi: Formula, psi: Formula) -> Formula {
        Formula::Au(Box::new(phi), Box::new(psi))
    }

    /// `→E(φ U ψ)`.
    pub fn eu(phi: Formula, psi: Formula) -> Formula {
        Formula::Eu(Box::new(phi), Box::new(psi))
    }

    /// `←AX φ`.
    pub fn bax(f: Formula) -> Formula {
        Formula::Bax(Box::new(f))
    }

    /// `←EX φ`.
    pub fn bex(f: Formula) -> Formula {
        Formula::Bex(Box::new(f))
    }

    /// `←A(φ U ψ)`.
    pub fn bau(phi: Formula, psi: Formula) -> Formula {
        Formula::Bau(Box::new(phi), Box::new(psi))
    }

    /// `←E(φ U ψ)`.
    pub fn beu(phi: Formula, psi: Formula) -> Formula {
        Formula::Beu(Box::new(phi), Box::new(psi))
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Not(x) => write!(f, "!{x}"),
            Formula::And(a, b) => write!(f, "({a} & {b})"),
            Formula::Or(a, b) => write!(f, "({a} | {b})"),
            Formula::Ax(x) => write!(f, "AX {x}"),
            Formula::Ex(x) => write!(f, "EX {x}"),
            Formula::Au(a, b) => write!(f, "A({a} U {b})"),
            Formula::Eu(a, b) => write!(f, "E({a} U {b})"),
            Formula::Bax(x) => write!(f, "~AX {x}"),
            Formula::Bex(x) => write!(f, "~EX {x}"),
            Formula::Bau(a, b) => write!(f, "~A({a} U {b})"),
            Formula::Beu(a, b) => write!(f, "~E({a} U {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nesting() {
        let f = Formula::and(
            Formula::bax(Formula::bau(
                Formula::True,
                Formula::atom(Atom::Def(Var::new("x"))),
            )),
            Formula::eu(
                Formula::not(Formula::atom(Atom::Def(Var::new("x")))),
                Formula::atom(Atom::Use(Var::new("x"))),
            ),
        );
        assert_eq!(
            f.to_string(),
            "(~AX ~A(true U def(x)) & E(!def(x) U use(x)))"
        );
    }
}
