//! Classic iterative dataflow analyses over `tinylang` programs.
//!
//! These serve two purposes: they are the *efficient* implementations used
//! by [`crate::live_vars`] and [`crate::unique_reaching_def`], and they act
//! as independent oracles against which the CTL formulations are
//! cross-checked in tests.

use std::collections::{BTreeMap, BTreeSet};

use tinylang::{Point, Program, Var};

/// Per-point result of the backward live-variable analysis.
///
/// `live_in[l]` is the set of variables live *before* executing the
/// instruction at `l` — the notion of liveness OSR transfers at a point `l`
/// care about, since the instruction at `l` has not yet executed.
#[derive(Clone, Debug)]
pub struct Liveness {
    live_in: Vec<BTreeSet<Var>>,
    live_out: Vec<BTreeSet<Var>>,
}

impl Liveness {
    /// Runs the analysis on `p`.
    pub fn compute(p: &Program) -> Liveness {
        let n = p.len();
        let mut live_in = vec![BTreeSet::new(); n];
        let mut live_out = vec![BTreeSet::new(); n];
        let uses: Vec<BTreeSet<Var>> = p.instrs().iter().map(|i| i.uses()).collect();
        let defs: Vec<BTreeSet<Var>> = p.instrs().iter().map(|i| i.defs()).collect();
        loop {
            let mut changed = false;
            for l in (0..n).rev() {
                let point = Point::new(l + 1);
                let mut out = BTreeSet::new();
                for s in p.successors(point) {
                    out.extend(live_in[s.get() - 1].iter().cloned());
                }
                let mut inn: BTreeSet<Var> = uses[l].clone();
                inn.extend(out.difference(&defs[l]).cloned());
                if inn != live_in[l] || out != live_out[l] {
                    live_in[l] = inn;
                    live_out[l] = out;
                    changed = true;
                }
            }
            if !changed {
                return Liveness { live_in, live_out };
            }
        }
    }

    /// Variables live before the instruction at `l`.
    pub fn live_in(&self, l: Point) -> &BTreeSet<Var> {
        &self.live_in[l.get() - 1]
    }

    /// Variables live after the instruction at `l`.
    pub fn live_out(&self, l: Point) -> &BTreeSet<Var> {
        &self.live_out[l.get() - 1]
    }
}

/// Forward *must-defined* analysis: `defined_in[l]` holds the variables that
/// are defined on **every** path from the entry to `l` (not counting `l`'s
/// own definition).
#[derive(Clone, Debug)]
pub struct MustDefined {
    defined_in: Vec<BTreeSet<Var>>,
    defined_out: Vec<BTreeSet<Var>>,
}

impl MustDefined {
    /// Runs the analysis on `p`.
    pub fn compute(p: &Program) -> MustDefined {
        let n = p.len();
        let all_vars: BTreeSet<Var> = all_vars(p);
        // Initialize to ⊤ (all vars) except the entry; intersect over preds.
        let mut defined_in = vec![all_vars.clone(); n];
        defined_in[0] = BTreeSet::new();
        let mut defined_out = vec![all_vars.clone(); n];
        let defs: Vec<BTreeSet<Var>> = p.instrs().iter().map(|i| i.defs()).collect();
        let preds: Vec<Vec<usize>> = (0..n)
            .map(|l| {
                p.predecessors(Point::new(l + 1))
                    .into_iter()
                    .map(|m| m.get() - 1)
                    .collect()
            })
            .collect();
        loop {
            let mut changed = false;
            for l in 0..n {
                let inn = if l == 0 {
                    BTreeSet::new()
                } else if preds[l].is_empty() {
                    // Unreachable point: keep ⊤ so it never blocks anything.
                    all_vars.clone()
                } else {
                    let mut acc: Option<BTreeSet<Var>> = None;
                    for &m in &preds[l] {
                        acc = Some(match acc {
                            None => defined_out[m].clone(),
                            Some(a) => a.intersection(&defined_out[m]).cloned().collect(),
                        });
                    }
                    acc.unwrap_or_default()
                };
                let mut out = inn.clone();
                out.extend(defs[l].iter().cloned());
                if inn != defined_in[l] || out != defined_out[l] {
                    defined_in[l] = inn;
                    defined_out[l] = out;
                    changed = true;
                }
            }
            if !changed {
                return MustDefined {
                    defined_in,
                    defined_out,
                };
            }
        }
    }

    /// Variables defined on every path reaching `l` (before executing `l`).
    pub fn defined_in(&self, l: Point) -> &BTreeSet<Var> {
        &self.defined_in[l.get() - 1]
    }

    /// Variables defined on every path after executing `l`.
    pub fn defined_out(&self, l: Point) -> &BTreeSet<Var> {
        &self.defined_out[l.get() - 1]
    }
}

/// Forward *reaching definitions* (may) analysis.
///
/// `reaching_in[l]` maps each variable to the set of points whose definition
/// of that variable may reach `l` (before executing `l`).
#[derive(Clone, Debug)]
pub struct ReachingDefs {
    reaching_in: Vec<BTreeMap<Var, BTreeSet<Point>>>,
}

impl ReachingDefs {
    /// Runs the analysis on `p`.
    pub fn compute(p: &Program) -> ReachingDefs {
        let n = p.len();
        let defs: Vec<BTreeSet<Var>> = p.instrs().iter().map(|i| i.defs()).collect();
        let mut reaching_in: Vec<BTreeMap<Var, BTreeSet<Point>>> = vec![BTreeMap::new(); n];
        loop {
            let mut changed = false;
            for l in 0..n {
                // out[l] = gen[l] ∪ (in[l] \ kill[l])
                let mut out = reaching_in[l].clone();
                for d in &defs[l] {
                    out.insert(d.clone(), BTreeSet::from([Point::new(l + 1)]));
                }
                for s in p.successors(Point::new(l + 1)) {
                    let sin = &mut reaching_in[s.get() - 1];
                    for (v, pts) in &out {
                        let entry = sin.entry(v.clone()).or_default();
                        for pt in pts {
                            if entry.insert(*pt) {
                                changed = true;
                            }
                        }
                    }
                }
            }
            if !changed {
                return ReachingDefs { reaching_in };
            }
        }
    }

    /// Definition points of `x` that may reach `l`.
    pub fn reaching(&self, x: &Var, l: Point) -> BTreeSet<Point> {
        self.reaching_in[l.get() - 1]
            .get(x)
            .cloned()
            .unwrap_or_default()
    }
}

/// Every variable mentioned anywhere in `p`.
pub fn all_vars(p: &Program) -> BTreeSet<Var> {
    let mut out = BTreeSet::new();
    for i in p.instrs() {
        out.extend(i.defs());
        out.extend(i.uses());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::parse_program;

    #[test]
    fn liveness_diamond() {
        let p = parse_program(
            "in x c
             if (c) goto 4
             goto 5
             x := 0
             y := x + 1
             out y",
        )
        .unwrap();
        let lv = Liveness::compute(&p);
        // Before point 4 (x := 0), x is not live (it is redefined).
        assert!(!lv.live_in(Point::new(4)).contains("x"));
        // Before point 3 (the goto on the path keeping x), x is live.
        assert!(lv.live_in(Point::new(3)).contains("x"));
        // c is dead after the branch.
        assert!(!lv.live_in(Point::new(3)).contains("c"));
    }

    #[test]
    fn must_defined_join() {
        let p = parse_program(
            "in c
             if (c) goto 4
             goto 5
             t := 1
             out c",
        )
        .unwrap();
        let md = MustDefined::compute(&p);
        // t is defined only on the path through 4, so not must-defined at 5.
        assert!(!md.defined_in(Point::new(5)).contains("t"));
        assert!(md.defined_in(Point::new(5)).contains("c"));
        assert!(md.defined_out(Point::new(4)).contains("t"));
    }

    #[test]
    fn reaching_defs_loop() {
        let p = parse_program(
            "in n
             i := 0
             i := i + 1
             if (i < n) goto 3
             out i",
        )
        .unwrap();
        let rd = ReachingDefs::compute(&p);
        // At point 3, defs of i from point 2 and point 3 (around the loop).
        assert_eq!(
            rd.reaching(&Var::new("i"), Point::new(3)),
            BTreeSet::from([Point::new(2), Point::new(3)])
        );
        // At the out, only the loop def reaches.
        assert_eq!(
            rd.reaching(&Var::new("i"), Point::new(5)),
            BTreeSet::from([Point::new(3)])
        );
    }

    #[test]
    fn all_vars_collects() {
        let p = parse_program("in a\nb := a + 1\nout b").unwrap();
        let vars = all_vars(&p);
        assert_eq!(vars.len(), 2);
        assert!(vars.contains("a") && vars.contains("b"));
    }
}
