use tinylang::{Point, Program};

use crate::{Atom, Formula};

/// A CTL model checker for a fixed program.
///
/// The checker pre-computes the successor and predecessor relations of the
/// control-flow graph once; each [`Checker::sat_set`] query then runs the
/// standard fix-point labelling algorithm (Clarke–Emerson–Sistla) in
/// `O(|formula| · |p| · |edges|)`.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use ctl::{Atom, Checker, Formula};
/// use tinylang::{parse_program, Point, Var};
///
/// let p = parse_program("in x\nskip\nout x")?;
/// let c = Checker::new(&p);
/// // Every path from point 1 eventually reaches the `out` (a use of x).
/// let f = Formula::au(Formula::True, Formula::atom(Atom::Use(Var::new("x"))));
/// assert!(c.holds_at(&f, Point::new(1)));
/// # Ok(())
/// # }
/// ```
pub struct Checker<'p> {
    program: &'p Program,
    succs: Vec<Vec<usize>>,
    preds: Vec<Vec<usize>>,
}

impl<'p> Checker<'p> {
    /// Builds a checker for `program`, precomputing the CFG relations.
    pub fn new(program: &'p Program) -> Self {
        let n = program.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for l in program.points() {
            for s in program.successors(l) {
                succs[l.get() - 1].push(s.get() - 1);
                preds[s.get() - 1].push(l.get() - 1);
            }
        }
        Checker {
            program,
            succs,
            preds,
        }
    }

    /// The program this checker analyzes.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// Whether `p, l ⊨ φ`.
    pub fn holds_at(&self, formula: &Formula, l: Point) -> bool {
        self.sat_set(formula)[l.get() - 1]
    }

    /// The set of points satisfying `φ`, as a boolean vector indexed by
    /// `point - 1`.
    pub fn sat_set(&self, formula: &Formula) -> Vec<bool> {
        let n = self.program.len();
        match formula {
            Formula::True => vec![true; n],
            Formula::False => vec![false; n],
            Formula::Atom(a) => (1..=n).map(|i| self.atom_holds(a, Point::new(i))).collect(),
            Formula::Not(f) => self.sat_set(f).into_iter().map(|b| !b).collect(),
            Formula::And(a, b) => zip_with(self.sat_set(a), self.sat_set(b), |x, y| x && y),
            Formula::Or(a, b) => zip_with(self.sat_set(a), self.sat_set(b), |x, y| x || y),
            Formula::Ax(f) => self.next_all(&self.sat_set(f), &self.succs),
            Formula::Ex(f) => self.next_some(&self.sat_set(f), &self.succs),
            Formula::Au(phi, psi) => {
                self.until_all(&self.sat_set(phi), &self.sat_set(psi), &self.succs)
            }
            Formula::Eu(phi, psi) => {
                self.until_some(&self.sat_set(phi), &self.sat_set(psi), &self.succs)
            }
            Formula::Bax(f) => self.next_all(&self.sat_set(f), &self.preds),
            Formula::Bex(f) => self.next_some(&self.sat_set(f), &self.preds),
            Formula::Bau(phi, psi) => {
                self.until_all(&self.sat_set(phi), &self.sat_set(psi), &self.preds)
            }
            Formula::Beu(phi, psi) => {
                self.until_some(&self.sat_set(phi), &self.sat_set(psi), &self.preds)
            }
        }
    }

    fn atom_holds(&self, atom: &Atom, l: Point) -> bool {
        let instr = self.program.instr_at(l);
        match atom {
            Atom::Def(x) => instr.defines(x),
            Atom::Use(x) => instr.uses_var(x),
            Atom::Stmt(i) => instr == i,
            Atom::Point(m) => *m == l,
            Atom::Trans(e) => instr.is_transparent_for(e),
        }
    }

    /// `{l : ∀ next ∈ rel(l), sat[next]}` — vacuously true without nexts.
    fn next_all(&self, sat: &[bool], rel: &[Vec<usize>]) -> Vec<bool> {
        rel.iter()
            .map(|nexts| nexts.iter().all(|&m| sat[m]))
            .collect()
    }

    /// `{l : ∃ next ∈ rel(l), sat[next]}`.
    fn next_some(&self, sat: &[bool], rel: &[Vec<usize>]) -> Vec<bool> {
        rel.iter()
            .map(|nexts| nexts.iter().any(|&m| sat[m]))
            .collect()
    }

    /// `A(φ U ψ)` (non-strict) over *finite maximal paths* (§2.2 interprets
    /// analyses such as liveness over the finite maximal paths of the CFG).
    ///
    /// A point violates the formula iff some maximal finite path from it
    /// stays in `¬ψ` states and either hits a `¬φ ∧ ¬ψ` state or ends at a
    /// successor-less `¬ψ` state.  Infinite (cyclic) `ψ`-free paths are not
    /// violations under this semantics.  Computed by backward reachability
    /// from the immediate-violation set through `¬ψ` states.
    fn until_all(&self, phi: &[bool], psi: &[bool], rel: &[Vec<usize>]) -> Vec<bool> {
        let n = rel.len();
        let mut bad = vec![false; n];
        let mut work = Vec::new();
        for l in 0..n {
            if !psi[l] && (!phi[l] || rel[l].is_empty()) {
                bad[l] = true;
                work.push(l);
            }
        }
        let mut inv = vec![Vec::new(); n];
        for (l, nexts) in rel.iter().enumerate() {
            for &m in nexts {
                inv[m].push(l);
            }
        }
        while let Some(m) = work.pop() {
            for &l in &inv[m] {
                if !bad[l] && !psi[l] {
                    bad[l] = true;
                    work.push(l);
                }
            }
        }
        bad.into_iter().map(|b| !b).collect()
    }

    /// Least fix-point for `E(φ U ψ)` (non-strict): `X = ψ ∨ (φ ∧ EX X)`.
    fn until_some(&self, phi: &[bool], psi: &[bool], rel: &[Vec<usize>]) -> Vec<bool> {
        let mut x = psi.to_vec();
        let mut work: Vec<usize> = (0..x.len()).filter(|&l| x[l]).collect();
        // Propagate against the relation: if x[m] and l —rel→ m with φ(l),
        // then x[l].  Invert `rel` on the fly.
        let mut inv = vec![Vec::new(); rel.len()];
        for (l, nexts) in rel.iter().enumerate() {
            for &m in nexts {
                inv[m].push(l);
            }
        }
        while let Some(m) = work.pop() {
            for &l in &inv[m] {
                if !x[l] && phi[l] {
                    x[l] = true;
                    work.push(l);
                }
            }
        }
        x
    }
}

fn zip_with(a: Vec<bool>, b: Vec<bool>, f: impl Fn(bool, bool) -> bool) -> Vec<bool> {
    a.into_iter().zip(b).map(|(x, y)| f(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::{parse_program, Var};

    fn checker_points(p: &Program, f: &Formula) -> Vec<usize> {
        let c = Checker::new(p);
        c.sat_set(f)
            .iter()
            .enumerate()
            .filter_map(|(i, &b)| b.then_some(i + 1))
            .collect()
    }

    #[test]
    fn atoms_def_use() {
        let p = parse_program(
            "in x
             y := x + 1
             out y",
        )
        .unwrap();
        let def_y = Formula::atom(Atom::Def(Var::new("y")));
        assert_eq!(checker_points(&p, &def_y), vec![2]);
        let use_x = Formula::atom(Atom::Use(Var::new("x")));
        assert_eq!(checker_points(&p, &use_x), vec![2]);
        let def_x = Formula::atom(Atom::Def(Var::new("x")));
        assert_eq!(checker_points(&p, &def_x), vec![1]);
    }

    #[test]
    fn eu_reaches_through_loop() {
        // x used at 5 (out); E(true U use(x)) should hold everywhere the
        // out is reachable from.
        let p = parse_program(
            "in x n
             n := n - 1
             if (n > 0) goto 2
             skip
             out x",
        )
        .unwrap();
        let f = Formula::eu(Formula::True, Formula::atom(Atom::Use(Var::new("x"))));
        assert_eq!(checker_points(&p, &f), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn au_fails_on_diverging_path() {
        // Points inside the potentially-infinite loop do NOT satisfy
        // A(true U use(y)) because the loop may never exit... but in CTL
        // over the CFG all maximal paths are considered; the loop has an
        // exit edge and a cycle, so the cyclic path never reaches the use.
        let p = parse_program(
            "in x
             if (x) goto 2
             out x",
        )
        .unwrap();
        let f = Formula::au(Formula::True, Formula::atom(Atom::Use(Var::new("x"))));
        // Point 2 uses x itself → ψ holds there (non-strict until).
        // Point 1: successor is 2 where ψ holds → AU holds.
        assert_eq!(checker_points(&p, &f), vec![1, 2, 3]);
    }

    #[test]
    fn au_over_finite_maximal_paths_ignores_cycles() {
        let p = parse_program(
            "in x
             skip
             if (x) goto 2
             out x",
        )
        .unwrap();
        let f = Formula::au(Formula::True, Formula::atom(Atom::Point(Point::new(4))));
        // Every *finite maximal* path ends at 4 (the only exit), so AU holds
        // everywhere; the cyclic path 2→3→2→… is infinite and thus ignored.
        assert_eq!(checker_points(&p, &f), vec![1, 2, 3, 4]);
    }

    #[test]
    fn au_fails_when_some_finite_path_misses_psi() {
        let p = parse_program(
            "in x
             if (x) goto 4
             goto 5
             abort
             out x",
        )
        .unwrap();
        // abort at 4 is a terminal ¬ψ point: the finite path 1→2→4 violates
        // A(true U point(5)) at points 1 and 2.
        let f = Formula::au(Formula::True, Formula::atom(Atom::Point(Point::new(5))));
        assert_eq!(checker_points(&p, &f), vec![3, 5]);
    }

    #[test]
    fn backward_operators() {
        let p = parse_program(
            "in x
             y := x
             out y",
        )
        .unwrap();
        // ~A(true U def(x)) at point 3: on all backward paths a def of x
        // occurs (at point 1).
        let f = Formula::bau(Formula::True, Formula::atom(Atom::Def(Var::new("x"))));
        assert_eq!(checker_points(&p, &f), vec![1, 2, 3]);
        // ~AX def(y) holds at 3 (its only predecessor defines y) and at 1
        // (vacuously: no predecessors).
        let f2 = Formula::bax(Formula::atom(Atom::Def(Var::new("y"))));
        assert_eq!(checker_points(&p, &f2), vec![1, 3]);
    }

    #[test]
    fn trans_atom() {
        let p = parse_program(
            "in x
             x := x + 1
             y := 2
             out y",
        )
        .unwrap();
        let e = tinylang::parse_expr("x * 3").unwrap();
        let f = Formula::atom(Atom::Trans(e));
        // Points 1 (in defines x) and 2 (assigns x) are not transparent.
        assert_eq!(checker_points(&p, &f), vec![3, 4]);
    }

    #[test]
    fn boolean_connectives() {
        let p = parse_program("in x\nskip\nout x").unwrap();
        let f = Formula::or(
            Formula::atom(Atom::Point(Point::new(1))),
            Formula::atom(Atom::Point(Point::new(3))),
        );
        assert_eq!(checker_points(&p, &f), vec![1, 3]);
        let g = Formula::not(f);
        assert_eq!(checker_points(&p, &g), vec![2]);
    }
}
