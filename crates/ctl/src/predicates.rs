//! The derived predicates of Figure 3 and Algorithm 1: `lives`, `live`,
//! `ud`, and unique-reaching-definition lookup.

use std::collections::BTreeSet;

use tinylang::{Point, Program, Var};

use crate::dataflow::{all_vars, Liveness, MustDefined, ReachingDefs};
use crate::{Atom, Checker, Formula};

/// The `lives(x)` formula of Figure 3:
///
/// ```text
/// lives(x) ≜ ←AX ←A(true U def(x)) ∧ →E(¬def(x) U use(x))
/// ```
///
/// `x` is live at `l` iff on all backward paths starting at all predecessors
/// of `l`, `x` has been defined somewhere, and at least one forward path
/// from `l` eventually reads `x` before redefining it.
pub fn lives(x: &Var) -> Formula {
    Formula::and(
        Formula::bax(Formula::bau(
            Formula::True,
            Formula::atom(Atom::Def(x.clone())),
        )),
        Formula::eu(
            Formula::not(Formula::atom(Atom::Def(x.clone()))),
            Formula::atom(Atom::Use(x.clone())),
        ),
    )
}

/// The formula for `defined-before`: on every backward path from every
/// predecessor of the current point, a definition of `x` occurs.
pub fn defined_before(x: &Var) -> Formula {
    Formula::bax(Formula::bau(
        Formula::True,
        Formula::atom(Atom::Def(x.clone())),
    ))
}

/// `live(p, l)` (Definition 2.7): the set of variables live at point `l`.
///
/// Computed by classic dataflow (liveness ∧ must-defined); the CTL
/// formulation [`lives`] is checked equivalent in the test-suite.
///
/// # Examples
///
/// ```
/// # use std::error::Error;
/// # fn main() -> Result<(), Box<dyn Error>> {
/// use tinylang::{parse_program, Point, Var};
///
/// let p = parse_program("in x\ny := x + 1\nout y")?;
/// let live = ctl::live_vars(&p, Point::new(2));
/// assert!(live.contains(&Var::new("x")));
/// assert!(!live.contains(&Var::new("y")));
/// # Ok(())
/// # }
/// ```
pub fn live_vars(p: &Program, l: Point) -> BTreeSet<Var> {
    let analysis = LivenessOracle::new(p);
    analysis.live_at(l)
}

/// Precomputed liveness facts for repeated `live(p, l)` queries.
///
/// Building one oracle and querying every point is linear in the program
/// size, whereas calling [`live_vars`] per point recomputes the analyses.
pub struct LivenessOracle {
    liveness: Liveness,
    must_defined: MustDefined,
}

impl LivenessOracle {
    /// Runs the underlying dataflow analyses on `p`.
    pub fn new(p: &Program) -> Self {
        LivenessOracle {
            liveness: Liveness::compute(p),
            must_defined: MustDefined::compute(p),
        }
    }

    /// `live(p, l)` per Definition 2.7.
    ///
    /// A variable is live at `l` if it is (a) live in the classic backward
    /// sense (a forward path reads it before any redefinition) and (b)
    /// definitely defined on every path reaching `l` — the `←AX←A(true U
    /// def(x))` conjunct of Figure 3.
    pub fn live_at(&self, l: Point) -> BTreeSet<Var> {
        let upward = self.liveness.live_in(l);
        let defined = self.must_defined.defined_in(l);
        upward.intersection(defined).cloned().collect()
    }

    /// Classic live-in set without the defined-before conjunct.
    pub fn upward_exposed(&self, l: Point) -> &BTreeSet<Var> {
        self.liveness.live_in(l)
    }
}

/// The `ud(x, p̄, ld, lr)` predicate of Algorithm 1: program `p̄` has a
/// unique definition of `x`, located at `ld`, reaching `lr`; moreover every
/// backward path from `lr` encounters it.
///
/// CTL form: `p̄, lr ⊨ ←AX ←A(¬def(x) U point(ld) ∧ def(x))`.
pub fn ud(x: &Var, p: &Program, ld: Point, lr: Point) -> bool {
    unique_reaching_def(p, x, lr) == Some(ld)
}

/// Finds the unique reaching definition point for `x` at `lr`, if one
/// exists (the `∃ l'def : ud(x, p', l'def, l'at)` query on line 1 of
/// Algorithm 1).
///
/// Returns `None` when `x` has zero or multiple reaching definitions at
/// `lr`, or when some path reaching `lr` never defines `x`.
pub fn unique_reaching_def(p: &Program, x: &Var, lr: Point) -> Option<Point> {
    let rd = ReachingDefs::compute(p);
    let md = MustDefined::compute(p);
    let defs = rd.reaching(x, lr);
    if defs.len() == 1 && md.defined_in(lr).contains(x) {
        defs.into_iter().next()
    } else {
        None
    }
}

/// Batch oracle for unique-reaching-definition queries against one program.
pub struct ReachingOracle {
    rd: ReachingDefs,
    md: MustDefined,
}

impl ReachingOracle {
    /// Runs the underlying analyses on `p`.
    pub fn new(p: &Program) -> Self {
        ReachingOracle {
            rd: ReachingDefs::compute(p),
            md: MustDefined::compute(p),
        }
    }

    /// See [`unique_reaching_def`].
    pub fn unique_reaching_def(&self, x: &Var, lr: Point) -> Option<Point> {
        let defs = self.rd.reaching(x, lr);
        if defs.len() == 1 && self.md.defined_in(lr).contains(x) {
            defs.into_iter().next()
        } else {
            None
        }
    }
}

/// CTL-based implementation of `live(p, l)`, used as a differential oracle
/// in tests.  Quadratic: checks the `lives(x)` formula for every variable.
pub fn live_vars_ctl(p: &Program, l: Point) -> BTreeSet<Var> {
    let checker = Checker::new(p);
    all_vars(p)
        .into_iter()
        .filter(|x| checker.holds_at(&lives(x), l))
        .collect()
}

/// CTL-based implementation of [`ud`], used as a differential oracle in
/// tests.
pub fn ud_ctl(x: &Var, p: &Program, ld: Point, lr: Point) -> bool {
    let checker = Checker::new(p);
    let psi = Formula::and(
        Formula::atom(Atom::Point(ld)),
        Formula::atom(Atom::Def(x.clone())),
    );
    let not_def = Formula::not(Formula::atom(Atom::Def(x.clone())));
    // `←AX ←A(¬def(x) U point(ld) ∧ def(x))`, strengthened with an
    // existential conjunct so that points without predecessors (where the
    // universal formula is vacuously true) do not claim a reaching
    // definition.
    let first_def_is_ld = Formula::and(
        Formula::bax(Formula::bau(not_def.clone(), psi.clone())),
        Formula::bex(Formula::beu(not_def, psi)),
    );
    checker.holds_at(&first_def_is_ld, lr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tinylang::parse_program;

    #[test]
    fn live_vars_simple() {
        let p = parse_program(
            "in x
             y := x * 2
             z := y + 1
             out z",
        )
        .unwrap();
        assert_eq!(
            live_vars(&p, Point::new(2)),
            BTreeSet::from([Var::new("x")])
        );
        assert_eq!(
            live_vars(&p, Point::new(3)),
            BTreeSet::from([Var::new("y")])
        );
        assert_eq!(
            live_vars(&p, Point::new(4)),
            BTreeSet::from([Var::new("z")])
        );
    }

    #[test]
    fn ctl_and_dataflow_liveness_agree() {
        let srcs = [
            "in x\ny := x + 1\nout y",
            "in x c
             if (c) goto 4
             goto 5
             x := 0
             y := x + 1
             out y",
            "in n
             i := 0
             s := 0
             if (i >= n) goto 8
             s := s + i
             i := i + 1
             goto 4
             out s",
        ];
        for src in srcs {
            let p = parse_program(src).unwrap();
            for l in p.points() {
                assert_eq!(
                    live_vars(&p, l),
                    live_vars_ctl(&p, l),
                    "disagreement at {l} in:\n{p}"
                );
            }
        }
    }

    #[test]
    fn unique_reaching_def_found() {
        let p = parse_program(
            "in x
             y := x + 1
             z := y * 2
             out z",
        )
        .unwrap();
        assert_eq!(
            unique_reaching_def(&p, &Var::new("y"), Point::new(4)),
            Some(Point::new(2))
        );
        assert!(ud(&Var::new("y"), &p, Point::new(2), Point::new(4)));
        assert!(!ud(&Var::new("y"), &p, Point::new(3), Point::new(4)));
    }

    #[test]
    fn multiple_reaching_defs_is_none() {
        let p = parse_program(
            "in c
             if (c) goto 4
             goto 5
             t := 1
             t := 2
             out t",
        )
        .unwrap();
        // Hmm: point 4 only on one path; both defs reach 6? 4 then 5 — 5
        // post-dominates, so only def at 5 reaches 6.
        assert_eq!(
            unique_reaching_def(&p, &Var::new("t"), Point::new(6)),
            Some(Point::new(5))
        );
        // At point 5, def from 4 reaches on one path but on the other path
        // (via goto 5) t is undefined → not must-defined → None.
        assert_eq!(unique_reaching_def(&p, &Var::new("t"), Point::new(5)), None);
    }

    #[test]
    fn ud_ctl_agrees_with_dataflow() {
        let p = parse_program(
            "in c
             x := 1
             if (c) goto 5
             x := 2
             y := x
             out y",
        )
        .unwrap();
        for l in p.points() {
            for ld in p.points() {
                for v in ["x", "y", "c"] {
                    let x = Var::new(v);
                    assert_eq!(
                        ud(&x, &p, ld, l),
                        ud_ctl(&x, &p, ld, l),
                        "ud mismatch for {v} ld={ld} lr={l}"
                    );
                }
            }
        }
    }

    #[test]
    fn liveness_oracle_matches_per_point_queries() {
        let p = parse_program(
            "in a b
             c := a + b
             d := c * 2
             out d",
        )
        .unwrap();
        let oracle = LivenessOracle::new(&p);
        for l in p.points() {
            assert_eq!(oracle.live_at(l), live_vars(&p, l));
        }
    }
}
