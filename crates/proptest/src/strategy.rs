//! The [`Strategy`] trait and the combinators the test suite uses.

use crate::TestRng;
use std::ops::Range;

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from `rng`.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<i64> {
    type Value = i64;

    fn generate(&self, rng: &mut TestRng) -> i64 {
        rng.in_range_i64(self.start, self.end)
    }
}

impl Strategy for Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.in_range_i64(self.start as i64, self.end as i64) as usize
    }
}

impl Strategy for Range<u32> {
    type Value = u32;

    fn generate(&self, rng: &mut TestRng) -> u32 {
        rng.in_range_i64(i64::from(self.start), i64::from(self.end)) as u32
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}
