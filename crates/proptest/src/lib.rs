//! A minimal, dependency-free stand-in for `proptest`, so the workspace
//! builds and the property tests run in offline environments.
//!
//! The subset implemented is exactly what the test suite uses: integer
//! range strategies, tuple strategies, `collection::vec`, `prop_map`, the
//! `proptest!` macro with a `ProptestConfig`, and the `prop_assert*`
//! macros.  Generation is deterministic: case `i` of a test always sees
//! the same inputs, so failures are reproducible without persistence
//! files.

pub mod strategy;
pub mod test_runner;

/// Deterministic splitmix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng(pub u64);

impl TestRng {
    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[lo, hi)`.
    pub fn in_range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range");
        let span = (hi as i128 - lo as i128) as u128;
        let r = (u128::from(self.next_u64())) % span;
        (lo as i128 + r as i128) as i64
    }
}

/// Test-runner configuration (only the `cases` knob is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Everything a property test needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s of `element` with length in `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.in_range_i64(self.len.start as i64, self.len.end as i64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runs one property body over `cases` deterministic cases.
///
/// Used by the [`proptest!`] macro; not part of the public proptest API.
pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, mut body: F) {
    for case in 0..config.cases {
        // Distinct, reproducible stream per case.
        let mut rng = TestRng(0xA076_1D64_78BD_642F ^ (u64::from(case) << 17));
        body(&mut rng);
    }
}

/// The `proptest!` macro: expands each property into an ordinary test that
/// generates inputs from the listed strategies for each case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(&config, |rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), rng);)*
                $body
            });
        }
        $crate::proptest!(@munch ($cfg) $($rest)*);
    };
    (@munch ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `prop_assert!`: plain assertion in this stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `prop_assert_eq!`: plain equality assertion in this stand-in.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_are_in_bounds_and_deterministic() {
        let strat = -5i64..7;
        let a: Vec<i64> = {
            let mut out = Vec::new();
            crate::run_cases(&ProptestConfig::with_cases(32), |rng| {
                out.push(strat.generate(rng));
            });
            out
        };
        assert!(a.iter().all(|v| (-5..7).contains(v)));
        let b: Vec<i64> = {
            let mut out = Vec::new();
            crate::run_cases(&ProptestConfig::with_cases(32), |rng| {
                out.push(strat.generate(rng));
            });
            out
        };
        assert_eq!(a, b, "same case index yields same value");
        assert!(a.iter().collect::<std::collections::BTreeSet<_>>().len() > 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_tuples_and_vecs(
            v in crate::collection::vec((0usize..4, -2i64..3), 1..6),
            x in 0i64..10,
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            for (a, b) in &v {
                prop_assert!(*a < 4);
                prop_assert!((-2..3).contains(b));
            }
            prop_assert_eq!(x - x, 0);
        }
    }

    #[test]
    fn prop_map_transforms() {
        let strat = (0usize..3).prop_map(|n| vec![0u8; n]);
        crate::run_cases(&ProptestConfig::with_cases(8), |rng| {
            assert!(strat.generate(rng).len() < 3);
        });
    }
}
