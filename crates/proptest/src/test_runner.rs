//! Test-runner types, re-exported for API compatibility with `proptest`.

pub use crate::{ProptestConfig, TestRng};
