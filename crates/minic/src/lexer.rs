//! Hand-written lexer.

use std::fmt;

/// Token kinds.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TokenKind {
    /// Integer literal.
    Num(i64),
    /// Identifier.
    Ident(String),
    /// Keyword `fn`.
    Fn,
    /// Keyword `var`.
    Var,
    /// Keyword `if`.
    If,
    /// Keyword `else`.
    Else,
    /// Keyword `while`.
    While,
    /// Keyword `for`.
    For,
    /// Keyword `return`.
    Return,
    /// Keyword `break`.
    Break,
    /// Keyword `continue`.
    Continue,
    /// A punctuation or operator token (e.g. `"+"`, `"<="`, `"{"`).
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Num(n) => write!(f, "{n}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Punct(p) => write!(f, "{p}"),
            TokenKind::Eof => write!(f, "<eof>"),
            kw => write!(f, "{}", format!("{kw:?}").to_lowercase()),
        }
    }
}

/// A token with its source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: u32,
}

/// Streaming lexer over MiniC source.
pub struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
}

const PUNCTS2: [&str; 10] = ["<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "+=", "-="];
const PUNCTS1: [&str; 18] = [
    "+", "-", "*", "/", "%", "<", ">", "!", "=", "(", ")", "{", "}", "[", "]", ",", ";", "&",
];
const PUNCTS1B: [&str; 2] = ["|", "^"];

impl<'s> Lexer<'s> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'s str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    /// Lexes the whole input.
    ///
    /// # Errors
    ///
    /// Returns `(line, message)` on an unexpected character or malformed
    /// literal.
    pub fn tokenize(mut self) -> Result<Vec<Token>, (u32, String)> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token()?;
            let eof = t.kind == TokenKind::Eof;
            out.push(t);
            if eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn next_token(&mut self) -> Result<Token, (u32, String)> {
        // Skip whitespace and comments.
        loop {
            match self.peek() {
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(c) if c.is_ascii_whitespace() => self.pos += 1,
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => break,
            }
        }
        let line = self.line;
        let Some(c) = self.peek() else {
            return Ok(Token {
                kind: TokenKind::Eof,
                line,
            });
        };
        if c.is_ascii_digit() {
            let start = self.pos;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits");
            let n: i64 = text
                .parse()
                .map_err(|_| (line, format!("integer literal `{text}` overflows i64")))?;
            return Ok(Token {
                kind: TokenKind::Num(n),
                line,
            });
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
            {
                self.pos += 1;
            }
            let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ident");
            let kind = match text {
                "fn" => TokenKind::Fn,
                "var" => TokenKind::Var,
                "if" => TokenKind::If,
                "else" => TokenKind::Else,
                "while" => TokenKind::While,
                "for" => TokenKind::For,
                "return" => TokenKind::Return,
                "break" => TokenKind::Break,
                "continue" => TokenKind::Continue,
                _ => TokenKind::Ident(text.to_string()),
            };
            return Ok(Token { kind, line });
        }
        // Punctuation: two-char first.
        if self.pos + 1 < self.src.len() {
            let two = &self.src[self.pos..self.pos + 2];
            if let Some(p) = PUNCTS2.iter().find(|p| p.as_bytes() == two) {
                self.pos += 2;
                return Ok(Token {
                    kind: TokenKind::Punct(p),
                    line,
                });
            }
        }
        let one = &self.src[self.pos..self.pos + 1];
        if let Some(p) = PUNCTS1
            .iter()
            .chain(PUNCTS1B.iter())
            .find(|p| p.as_bytes() == one)
        {
            self.pos += 1;
            return Ok(Token {
                kind: TokenKind::Punct(p),
                line,
            });
        }
        Err((line, format!("unexpected character `{}`", c as char)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("fn foo var iffy"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("foo".into()),
                TokenKind::Var,
                TokenKind::Ident("iffy".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            kinds("<= == && >>"),
            vec![
                TokenKind::Punct("<="),
                TokenKind::Punct("=="),
                TokenKind::Punct("&&"),
                TokenKind::Punct(">>"),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn tracks_lines_and_skips_comments() {
        let toks = Lexer::new("a // comment\nb\nc").tokenize().unwrap();
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3, 3]);
    }

    #[test]
    fn rejects_bad_character() {
        assert!(Lexer::new("a @ b").tokenize().is_err());
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("0 42 123456789"),
            vec![
                TokenKind::Num(0),
                TokenKind::Num(42),
                TokenKind::Num(123_456_789),
                TokenKind::Eof
            ]
        );
    }
}
