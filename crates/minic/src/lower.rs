//! Lowering from the MiniC AST to `ssair` (the `-O0` shape: every scalar
//! variable in a named alloca, every access a load/store, statements tagged
//! with source lines).

use std::collections::BTreeMap;

use ssair::{BinOp, BlockId, Function, FunctionBuilder, Module, Terminator, Ty, ValueId};

use crate::ast::{BinExprOp, Expr, FunDecl, Program, Stmt, UnOp};

/// Lowers a parsed program into a module of baseline (`-O0`) functions.
pub fn lower_program(prog: &Program) -> Module {
    let mut module = Module::new();
    for f in &prog.functions {
        module.add(lower_function(f));
    }
    module
}

struct LoopCtx {
    header: BlockId,
    exit: BlockId,
}

struct Lowerer {
    b: FunctionBuilder,
    /// Scalar variable slots.
    scalars: BTreeMap<String, ValueId>,
    /// Array slots with their sizes.
    arrays: BTreeMap<String, ValueId>,
    loop_stack: Vec<LoopCtx>,
    block_counter: u32,
}

fn lower_function(decl: &FunDecl) -> Function {
    let params: Vec<(&str, Ty)> = decl.params.iter().map(|p| (p.as_str(), Ty::I64)).collect();
    let b = FunctionBuilder::new(&decl.name, &params);
    let mut lw = Lowerer {
        b,
        scalars: BTreeMap::new(),
        arrays: BTreeMap::new(),
        loop_stack: Vec::new(),
        block_counter: 0,
    };
    // Spill parameters into named slots (clang -O0 style), so that
    // parameter variables are ordinary source variables too.
    for (i, name) in decl.params.iter().enumerate() {
        let slot = lw.b.alloca_named(1, name);
        let v = lw.b.param(i);
        lw.b.store(slot, v);
        lw.scalars.insert(name.clone(), slot);
    }
    lw.stmts(&decl.body);
    // Implicit `return 0` at the end of the body.
    let zero = lw.b.const_i64(0);
    lw.b.ret(Some(zero));
    lw.b.finish()
}

impl Lowerer {
    fn fresh_block(&mut self, tag: &str) -> BlockId {
        self.block_counter += 1;
        let n = self.block_counter;
        self.b.create_block(&format!("{tag}{n}"))
    }

    fn stmts(&mut self, body: &[Stmt]) {
        for s in body {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::VarDecl { name, init, line } => {
                self.b.set_line(*line);
                let slot = self.scalars.get(name).copied().unwrap_or_else(|| {
                    let slot = self.b.alloca_named(1, name);
                    self.scalars.insert(name.clone(), slot);
                    slot
                });
                let v = self.expr(init);
                self.b.store(slot, v);
            }
            Stmt::ArrayDecl { name, size, line } => {
                self.b.set_line(*line);
                let slot = self.b.alloca(*size);
                self.arrays.insert(name.clone(), slot);
            }
            Stmt::Assign { name, value, line } => {
                self.b.set_line(*line);
                let v = self.expr(value);
                let slot = self.scalar_slot(name);
                self.b.store(slot, v);
            }
            Stmt::IndexAssign {
                name,
                index,
                value,
                line,
            } => {
                self.b.set_line(*line);
                let idx = self.expr(index);
                let val = self.expr(value);
                let base = self.array_slot(name);
                let p = self.b.gep(base, idx);
                self.b.store(p, val);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                line,
            } => {
                self.b.set_line(*line);
                let c = self.expr(cond);
                let then_bb = self.fresh_block("then");
                let else_bb = self.fresh_block("else");
                let join = self.fresh_block("join");
                self.b.cond_br(c, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.stmts(then_body);
                self.b.br(join);
                self.b.switch_to(else_bb);
                self.stmts(else_body);
                self.b.br(join);
                self.b.switch_to(join);
            }
            Stmt::While { cond, body, line } => {
                self.b.set_line(*line);
                let header = self.fresh_block("while.head");
                let body_bb = self.fresh_block("while.body");
                let exit = self.fresh_block("while.exit");
                self.b.br(header);
                self.b.switch_to(header);
                let c = self.expr(cond);
                self.b.cond_br(c, body_bb, exit);
                self.b.switch_to(body_bb);
                self.loop_stack.push(LoopCtx { header, exit });
                self.stmts(body);
                self.loop_stack.pop();
                self.b.br(header);
                self.b.switch_to(exit);
            }
            Stmt::Break { line } => {
                self.b.set_line(*line);
                if let Some(ctx) = self.loop_stack.last() {
                    let exit = ctx.exit;
                    self.b.br(exit);
                    let dead = self.fresh_block("after.break");
                    self.b.switch_to(dead);
                }
            }
            Stmt::Continue { line } => {
                self.b.set_line(*line);
                if let Some(ctx) = self.loop_stack.last() {
                    let header = ctx.header;
                    self.b.br(header);
                    let dead = self.fresh_block("after.continue");
                    self.b.switch_to(dead);
                }
            }
            Stmt::Return { value, line } => {
                self.b.set_line(*line);
                let v = self.expr(value);
                self.b.ret(Some(v));
                let dead = self.fresh_block("after.return");
                self.b.switch_to(dead);
            }
            Stmt::ExprStmt { expr, line } => {
                self.b.set_line(*line);
                let _ = self.expr(expr);
            }
        }
    }

    fn scalar_slot(&mut self, name: &str) -> ValueId {
        if let Some(&slot) = self.scalars.get(name) {
            return slot;
        }
        // Use of an undeclared variable: create a zero-initialized slot
        // (MiniC is permissive, like the paper's benchmarks rely on C).
        let slot = self.b.alloca_named(1, name);
        self.scalars.insert(name.to_string(), slot);
        slot
    }

    fn array_slot(&mut self, name: &str) -> ValueId {
        if let Some(&slot) = self.arrays.get(name) {
            return slot;
        }
        let slot = self.b.alloca(1);
        self.arrays.insert(name.to_string(), slot);
        slot
    }

    fn expr(&mut self, e: &Expr) -> ValueId {
        match e {
            Expr::Num(n) => self.b.const_i64(*n),
            Expr::Var(name) => {
                let slot = self.scalar_slot(name);
                self.b.load(slot)
            }
            Expr::Index(name, idx) => {
                let i = self.expr(idx);
                let base = self.array_slot(name);
                let p = self.b.gep(base, i);
                self.b.load(p)
            }
            Expr::Unary(UnOp::Neg, inner) => {
                let v = self.expr(inner);
                self.b.neg(v)
            }
            Expr::Unary(UnOp::Not, inner) => {
                let v = self.expr(inner);
                self.b.not(v)
            }
            Expr::Binary(op, lhs, rhs) => match op {
                // Short-circuit && and || lower to control flow over a slot.
                BinExprOp::And | BinExprOp::Or => self.short_circuit(*op, lhs, rhs),
                _ => {
                    let a = self.expr(lhs);
                    let b = self.expr(rhs);
                    self.b.binop(binop_of(*op), a, b)
                }
            },
            Expr::Call(name, args) => {
                let vals: Vec<ValueId> = args.iter().map(|a| self.expr(a)).collect();
                self.b.call(name, &vals)
            }
        }
    }

    fn short_circuit(&mut self, op: BinExprOp, lhs: &Expr, rhs: &Expr) -> ValueId {
        let slot = self.b.alloca(1);
        let a = self.expr(lhs);
        let zero = self.b.const_i64(0);
        let a_bool = self.b.binop(BinOp::Ne, a, zero);
        self.b.store(slot, a_bool);
        let rhs_bb = self.fresh_block("sc.rhs");
        let done = self.fresh_block("sc.done");
        match op {
            BinExprOp::And => self.b.cond_br(a_bool, rhs_bb, done),
            BinExprOp::Or => self.b.cond_br(a_bool, done, rhs_bb),
            _ => unreachable!("only && and || are short-circuiting"),
        }
        self.b.switch_to(rhs_bb);
        let bv = self.expr(rhs);
        let zero2 = self.b.const_i64(0);
        let b_bool = self.b.binop(BinOp::Ne, bv, zero2);
        self.b.store(slot, b_bool);
        self.b.br(done);
        self.b.switch_to(done);
        self.b.load(slot)
    }
}

fn binop_of(op: BinExprOp) -> BinOp {
    match op {
        BinExprOp::Add => BinOp::Add,
        BinExprOp::Sub => BinOp::Sub,
        BinExprOp::Mul => BinOp::Mul,
        BinExprOp::Div => BinOp::Div,
        BinExprOp::Rem => BinOp::Rem,
        BinExprOp::BitAnd => BinOp::And,
        BinExprOp::BitOr => BinOp::Or,
        BinExprOp::BitXor => BinOp::Xor,
        BinExprOp::Shl => BinOp::Shl,
        BinExprOp::Shr => BinOp::Shr,
        BinExprOp::Lt => BinOp::Lt,
        BinExprOp::Le => BinOp::Le,
        BinExprOp::Gt => BinOp::Gt,
        BinExprOp::Ge => BinOp::Ge,
        BinExprOp::Eq => BinOp::Eq,
        BinExprOp::Ne => BinOp::Ne,
        BinExprOp::And | BinExprOp::Or => unreachable!("lowered via control flow"),
    }
}

// Quiet the unused-import lint for Terminator, which is useful in tests.
#[allow(unused)]
fn _t(_: &Terminator) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use ssair::interp::{run_function, Val};

    fn run1(module: &Module, name: &str, args: &[i64]) -> i64 {
        let f = module.get(name).expect("function exists");
        let vals: Vec<Val> = args.iter().map(|n| Val::Int(*n)).collect();
        match run_function(f, &vals, module, 1_000_000).expect("runs") {
            Some(Val::Int(n)) => n,
            other => panic!("unexpected result {other:?}"),
        }
    }

    #[test]
    fn gcd_runs() {
        let m = compile(
            "fn gcd(a, b) {
                 while (b != 0) {
                     var t = b;
                     b = a % b;
                     a = t;
                 }
                 return a;
             }",
        )
        .unwrap();
        assert_eq!(run1(&m, "gcd", &[48, 36]), 12);
        assert_eq!(run1(&m, "gcd", &[17, 5]), 1);
    }

    #[test]
    fn for_loop_sum() {
        let m = compile(
            "fn sum(n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + i; }
                 return s;
             }",
        )
        .unwrap();
        assert_eq!(run1(&m, "sum", &[5]), 10);
        assert_eq!(run1(&m, "sum", &[0]), 0);
    }

    #[test]
    fn arrays_and_nested_loops() {
        let m = compile(
            "fn f(n) {
                 var buf[16];
                 for (var i = 0; i < 16; i = i + 1) { buf[i] = i * i; }
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + buf[i % 16]; }
                 return s;
             }",
        )
        .unwrap();
        assert_eq!(run1(&m, "f", &[4]), 1 + 4 + 9);
    }

    #[test]
    fn short_circuit_semantics() {
        // Division by zero yields 0 in this language, so use a call counter
        // via an array to observe evaluation.
        let m = compile(
            "fn f(a, b) {
                 if (a != 0 && 10 / a > b) { return 1; }
                 return 0;
             }
             fn g(x) { return x || 7; }",
        )
        .unwrap();
        assert_eq!(run1(&m, "f", &[0, 5]), 0);
        assert_eq!(run1(&m, "f", &[1, 5]), 1);
        assert_eq!(run1(&m, "g", &[0]), 1, "0 || 7 is true → 1");
        assert_eq!(run1(&m, "g", &[3]), 1);
    }

    #[test]
    fn break_and_continue() {
        let m = compile(
            "fn f(n) {
                 var s = 0;
                 var i = 0;
                 while (1) {
                     i = i + 1;
                     if (i > n) { break; }
                     if (i % 2 == 0) { continue; }
                     s = s + i;
                 }
                 return s;
             }",
        )
        .unwrap();
        assert_eq!(run1(&m, "f", &[6]), 1 + 3 + 5);
    }

    #[test]
    fn recursion_and_calls() {
        let m = compile(
            "fn fib(n) {
                 if (n < 2) { return n; }
                 return fib(n - 1) + fib(n - 2);
             }",
        )
        .unwrap();
        assert_eq!(run1(&m, "fib", &[10]), 55);
    }

    #[test]
    fn dbg_bindings_survive_compilation() {
        let m = compile(
            "fn f(x) {
                 var y = x + 1;
                 var z = y * 2;
                 return z;
             }",
        )
        .unwrap();
        let f = m.get("f").unwrap();
        let dbg_vars: Vec<String> = f
            .inst_iter()
            .filter_map(|(_, i)| match &f.inst(i).kind {
                ssair::InstKind::DbgValue { var, .. } => Some(var.clone()),
                _ => None,
            })
            .collect();
        assert!(dbg_vars.contains(&"x".to_string()));
        assert!(dbg_vars.contains(&"y".to_string()));
        assert!(dbg_vars.contains(&"z".to_string()));
    }

    #[test]
    fn lines_attached_to_instructions() {
        let m = compile("fn f(x) {\n  var y = x + 1;\n  return y;\n}").unwrap();
        let f = m.get("f").unwrap();
        let lines: Vec<u32> = f.inst_iter().filter_map(|(_, i)| f.inst(i).line).collect();
        assert!(lines.contains(&2));
        assert!(lines.contains(&3));
    }

    #[test]
    fn baseline_without_mem2reg_keeps_allocas() {
        let m = crate::compile_no_mem2reg("fn f(x) { var y = x; return y; }").unwrap();
        let f = m.get("f").unwrap();
        let has_alloca = f
            .inst_iter()
            .any(|(_, i)| matches!(f.inst(i).kind, ssair::InstKind::Alloca { .. }));
        assert!(has_alloca);
    }
}
