//! Abstract syntax of MiniC.

use std::fmt;

/// Unary operators.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Arithmetic negation `-e`.
    Neg,
    /// Logical negation `!e`.
    Not,
}

/// Binary operators (C precedence, integer semantics).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinExprOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (division by zero yields 0)
    Div,
    /// `%` (modulo zero yields 0)
    Rem,
    /// `&` bitwise and
    BitAnd,
    /// `|` bitwise or
    BitOr,
    /// `^` bitwise xor
    BitXor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `&&` (short-circuiting)
    And,
    /// `||` (short-circuiting)
    Or,
}

/// Expressions.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Scalar variable read.
    Var(String),
    /// Array element read `a[i]`.
    Index(String, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinExprOp, Box<Expr>, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
}

/// Statements; each carries its 1-based source line (the breakpoint
/// granularity of the §7 study).
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `var x = e;`
    VarDecl {
        /// Variable name.
        name: String,
        /// Initializer.
        init: Expr,
        /// Source line.
        line: u32,
    },
    /// `var a[n];`
    ArrayDecl {
        /// Array name.
        name: String,
        /// Compile-time size.
        size: u32,
        /// Source line.
        line: u32,
    },
    /// `x = e;`
    Assign {
        /// Variable name.
        name: String,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `a[i] = e;`
    IndexAssign {
        /// Array name.
        name: String,
        /// Element index.
        index: Expr,
        /// Right-hand side.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// `if (cond) { … } else { … }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-branch.
        then_body: Vec<Stmt>,
        /// Else-branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `while (cond) { … }`
    While {
        /// Condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Source line.
        line: u32,
    },
    /// `break;`
    Break {
        /// Source line.
        line: u32,
    },
    /// `continue;`
    Continue {
        /// Source line.
        line: u32,
    },
    /// `return e;`
    Return {
        /// Returned value.
        value: Expr,
        /// Source line.
        line: u32,
    },
    /// An expression evaluated for effect (e.g. a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Source line.
        line: u32,
    },
}

/// A function declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct FunDecl {
    /// Function name.
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A whole program.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Program {
    /// Function declarations in source order.
    pub functions: Vec<FunDecl>,
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for fun in &self.functions {
            writeln!(f, "fn {}({})", fun.name, fun.params.join(", "))?;
        }
        Ok(())
    }
}
