//! MiniC: a small C-like front-end for the `ssair` substrate.
//!
//! MiniC plays the role clang plays in the paper (§5.4, §7): every source
//! variable lives in a named stack slot (`alloca`), reads and writes go
//! through loads and stores, and statements carry line numbers.  Running
//! [`ssair::mem2reg`] on the lowered output yields the `fbase` version the
//! evaluation starts from, with `DbgValue` bindings preserving the
//! source-variable ↔ SSA-value mapping the §7 debugging study needs.
//!
//! # Language
//!
//! ```c
//! fn gcd(a, b) {
//!     while (b != 0) {
//!         var t = b;
//!         b = a % b;
//!         a = t;
//!     }
//!     return a;
//! }
//! ```
//!
//! Integers only (`i64`); local arrays (`var buf[16];`) lower to multi-cell
//! allocas accessed through `gep`; functions call each other by name.
//!
//! # Examples
//!
//! ```
//! # use std::error::Error;
//! # fn main() -> Result<(), Box<dyn Error>> {
//! use minic::compile;
//! use ssair::interp::{run_function, Val};
//!
//! let module = compile("fn double(x) { return 2 * x; }")?;
//! let f = module.get("double").expect("compiled");
//! let out = run_function(f, &[Val::Int(21)], &module, 1_000)?;
//! assert_eq!(out, Some(Val::Int(42)));
//! # Ok(())
//! # }
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinExprOp, Expr, FunDecl, Program, Stmt, UnOp};
pub use lexer::{Lexer, Token, TokenKind};
pub use lower::lower_program;
pub use parser::{parse, ParseError};

use ssair::Module;

/// Compiles MiniC source into an [`ssair::Module`] of *baseline* functions:
/// lowered with allocas, then promoted to SSA by `mem2reg` (the paper's
/// `clang -O0` + `mem2reg` recipe).
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors; lowering cannot fail on a
/// parsed program.
pub fn compile(src: &str) -> Result<Module, ParseError> {
    let prog = parse(src)?;
    let mut module = lower_program(&prog);
    let names: Vec<String> = module.functions.keys().cloned().collect();
    for n in names {
        let f = module.functions.get_mut(&n).expect("listed");
        ssair::mem2reg::mem2reg(f);
        debug_assert!(ssair::verify(f).is_ok(), "mem2reg broke {n}");
    }
    Ok(module)
}

/// Compiles without promoting to SSA (allocas and loads/stores remain) —
/// the `-O0` form, useful for testing `mem2reg` itself.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors.
pub fn compile_no_mem2reg(src: &str) -> Result<Module, ParseError> {
    Ok(lower_program(&parse(src)?))
}
