//! Recursive-descent parser.

use std::error::Error;
use std::fmt;

use crate::ast::{BinExprOp, Expr, FunDecl, Program, Stmt, UnOp};
use crate::lexer::{Lexer, Token, TokenKind};

/// A parse failure with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Parses a MiniC program.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = Lexer::new(src)
        .tokenize()
        .map_err(|(line, message)| ParseError { line, message })?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while p.peek().kind != TokenKind::Eof {
        functions.push(p.function()?);
    }
    Ok(Program { functions })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            line: self.peek().line,
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek().kind == TokenKind::Punct(p) {
            self.advance();
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found `{}`", self.peek().kind))
        }
    }

    fn eat_punct(&mut self, p: &'static str) -> bool {
        if self.peek().kind == TokenKind::Punct(p) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn function(&mut self) -> Result<FunDecl, ParseError> {
        if self.peek().kind != TokenKind::Fn {
            return self.err("expected `fn`");
        }
        self.advance();
        let name = self.ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.ident()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(FunDecl { name, params, body })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if self.peek().kind == TokenKind::Eof {
                return self.err("unexpected end of input inside block");
            }
            stmts.push(self.statement()?);
        }
        Ok(stmts)
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek().line;
        match self.peek().kind.clone() {
            TokenKind::Var => {
                self.advance();
                let name = self.ident()?;
                if self.eat_punct("[") {
                    let size = match self.advance().kind {
                        TokenKind::Num(n) if n > 0 && n < (1 << 20) => n as u32,
                        other => {
                            return self
                                .err(format!("expected positive array size, found `{other}`"))
                        }
                    };
                    self.expect_punct("]")?;
                    self.expect_punct(";")?;
                    Ok(Stmt::ArrayDecl { name, size, line })
                } else {
                    self.expect_punct("=")?;
                    let init = self.expr()?;
                    self.expect_punct(";")?;
                    Ok(Stmt::VarDecl { name, init, line })
                }
            }
            TokenKind::If => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let then_body = self.block()?;
                let else_body = if self.peek().kind == TokenKind::Else {
                    self.advance();
                    if self.peek().kind == TokenKind::If {
                        vec![self.statement()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    line,
                })
            }
            TokenKind::While => {
                self.advance();
                self.expect_punct("(")?;
                let cond = self.expr()?;
                self.expect_punct(")")?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, line })
            }
            TokenKind::For => {
                // for (init; cond; step) body  ≡  init; while (cond) { body; step; }
                self.advance();
                self.expect_punct("(")?;
                let init = self.statement()?; // consumes the `;`
                let cond = self.expr()?;
                self.expect_punct(";")?;
                let step = self.simple_assign()?;
                self.expect_punct(")")?;
                let mut body = self.block()?;
                body.push(step);
                let whole = Stmt::While { cond, body, line };
                Ok(Stmt::If {
                    cond: Expr::Num(1),
                    then_body: vec![init, whole],
                    else_body: Vec::new(),
                    line,
                })
            }
            TokenKind::Return => {
                self.advance();
                let value = self.expr()?;
                self.expect_punct(";")?;
                Ok(Stmt::Return { value, line })
            }
            TokenKind::Break => {
                self.advance();
                self.expect_punct(";")?;
                Ok(Stmt::Break { line })
            }
            TokenKind::Continue => {
                self.advance();
                self.expect_punct(";")?;
                Ok(Stmt::Continue { line })
            }
            _ => {
                let stmt = self.simple_assign()?;
                self.expect_punct(";")?;
                Ok(stmt)
            }
        }
    }

    /// An assignment or expression statement without the trailing `;`.
    fn simple_assign(&mut self) -> Result<Stmt, ParseError> {
        let line = self.peek().line;
        if let TokenKind::Ident(name) = self.peek().kind.clone() {
            let save = self.pos;
            self.advance();
            if self.eat_punct("=") {
                let value = self.expr()?;
                return Ok(Stmt::Assign { name, value, line });
            }
            if self.eat_punct("+=") {
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    name: name.clone(),
                    value: Expr::Binary(BinExprOp::Add, Box::new(Expr::Var(name)), Box::new(value)),
                    line,
                });
            }
            if self.eat_punct("-=") {
                let value = self.expr()?;
                return Ok(Stmt::Assign {
                    name: name.clone(),
                    value: Expr::Binary(BinExprOp::Sub, Box::new(Expr::Var(name)), Box::new(value)),
                    line,
                });
            }
            if self.eat_punct("[") {
                let index = self.expr()?;
                self.expect_punct("]")?;
                if self.eat_punct("=") {
                    let value = self.expr()?;
                    return Ok(Stmt::IndexAssign {
                        name,
                        index,
                        value,
                        line,
                    });
                }
            }
            self.pos = save;
        }
        let expr = self.expr()?;
        Ok(Stmt::ExprStmt { expr, line })
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.eat_punct("||") {
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinExprOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitor_expr()?;
        while self.eat_punct("&&") {
            let rhs = self.bitor_expr()?;
            lhs = Expr::Binary(BinExprOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitxor_expr()?;
        while self.eat_punct("|") {
            let rhs = self.bitxor_expr()?;
            lhs = Expr::Binary(BinExprOp::BitOr, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitand_expr()?;
        while self.eat_punct("^") {
            let rhs = self.bitand_expr()?;
            lhs = Expr::Binary(BinExprOp::BitXor, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.eat_punct("&") {
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinExprOp::BitAnd, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.shift_expr()?;
        for (p, op) in [
            ("<=", BinExprOp::Le),
            (">=", BinExprOp::Ge),
            ("==", BinExprOp::Eq),
            ("!=", BinExprOp::Ne),
            ("<", BinExprOp::Lt),
            (">", BinExprOp::Gt),
        ] {
            if self.eat_punct(p) {
                let rhs = self.shift_expr()?;
                return Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)));
            }
        }
        Ok(lhs)
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            if self.eat_punct("<<") {
                let rhs = self.add_expr()?;
                lhs = Expr::Binary(BinExprOp::Shl, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct(">>") {
                let rhs = self.add_expr()?;
                lhs = Expr::Binary(BinExprOp::Shr, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            if self.eat_punct("+") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary(BinExprOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct("-") {
                let rhs = self.mul_expr()?;
                lhs = Expr::Binary(BinExprOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            if self.eat_punct("*") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary(BinExprOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct("/") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary(BinExprOp::Div, Box::new(lhs), Box::new(rhs));
            } else if self.eat_punct("%") {
                let rhs = self.unary_expr()?;
                lhs = Expr::Binary(BinExprOp::Rem, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_punct("-") {
            return Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)));
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().kind.clone() {
            TokenKind::Num(n) => {
                self.advance();
                Ok(Expr::Num(n))
            }
            TokenKind::Ident(name) => {
                self.advance();
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call(name, args))
                } else if self.eat_punct("[") {
                    let idx = self.expr()?;
                    self.expect_punct("]")?;
                    Ok(Expr::Index(name, Box::new(idx)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            TokenKind::Punct("(") => {
                self.advance();
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_gcd() {
        let p = parse(
            "fn gcd(a, b) {
                 while (b != 0) {
                     var t = b;
                     b = a % b;
                     a = t;
                 }
                 return a;
             }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].params, vec!["a", "b"]);
        assert_eq!(p.functions[0].body.len(), 2);
    }

    #[test]
    fn parses_for_loop_desugared() {
        let p = parse(
            "fn f(n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + i; }
                 return s;
             }",
        )
        .unwrap();
        // for desugars to if(1){init; while}.
        assert!(matches!(p.functions[0].body[1], Stmt::If { .. }));
    }

    #[test]
    fn parses_arrays_and_calls() {
        let p = parse(
            "fn f(x) {
                 var buf[8];
                 buf[0] = x;
                 buf[x % 8] = g(x, buf[0]);
                 return buf[0];
             }",
        )
        .unwrap();
        let body = &p.functions[0].body;
        assert!(matches!(body[0], Stmt::ArrayDecl { size: 8, .. }));
        assert!(matches!(body[2], Stmt::IndexAssign { .. }));
    }

    #[test]
    fn precedence() {
        let p = parse("fn f(a, b) { return a + b * 2 < a << 1; }").unwrap();
        let Stmt::Return { value, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        // (a + (b*2)) < (a << 1)
        assert!(matches!(value, Expr::Binary(BinExprOp::Lt, _, _)));
    }

    #[test]
    fn compound_assignment() {
        let p = parse("fn f(a) { a += 2; a -= 1; return a; }").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Assign { .. }));
    }

    #[test]
    fn error_reports_line() {
        let e = parse("fn f() {\n  var = 3;\n}").unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn else_if_chain() {
        let p = parse(
            "fn f(x) {
                 if (x > 10) { return 1; }
                 else if (x > 5) { return 2; }
                 else { return 3; }
             }",
        )
        .unwrap();
        let Stmt::If { else_body, .. } = &p.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }
}
