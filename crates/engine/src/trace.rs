//! Per-request lifecycle traces.
//!
//! Every request the engine serves is traced through its whole lifecycle
//! — submit, worker pickup (the queue wait), each OSR transition with its
//! rungs and table kind, completion — against the engine epoch (the same
//! monotone clock [`crate::TimedEngineEvent`]s are stamped on).  The
//! trace also carries the request's per-rung execution time, measured by
//! the controller with one `Instant` stamp per hop (never per loop
//! iteration: the interpreter hot path stays untouched).
//!
//! Traces live in a bounded store keyed by request id, queryable from
//! [`crate::Engine::trace`] and [`crate::EngineHandle::trace`]; once the
//! store holds [`TRACE_CAPACITY`] traces the oldest is evicted.  All
//! store operations are per-lifecycle-event (a handful per request), so
//! the single mutex inside is far off the hot path.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Mutex;

use ssair::reconstruct::Direction;
use tinyvm::profile::Tier;

use crate::metrics::DeoptReason;

/// Which kind of entry table served a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TableKind {
    /// A direct baseline table (`fbase ↔ fopt`).
    Direct,
    /// A composed version-to-version table (e.g. O1→O2, Theorem 3.4).
    Composed,
    /// The version entered is a value-specialized (constant-seeded)
    /// artifact — reached via a direct or composed table, but the
    /// speculation is the defining property of the hop.
    ValueSpecialized,
    /// The version entered executes on the register-allocated machine
    /// substrate (the O4 rung) — the hop's table is a direct or composed
    /// SSA table, and the landing additionally enters the artifact's
    /// register file through its location maps.
    Machine,
    /// A cross-function inline exit: the hop left a version with hot call
    /// sites spliced in through the artifact's inline-exit table, landing
    /// in call-preserving code (reconstructing the callee frame when the
    /// landing fell inside a spliced region).
    InlineExit,
}

impl TableKind {
    /// The canonical label for this table kind.  Every rendering — the
    /// trace timeline, [`crate::EngineEvent`] `Display`, metrics dumps —
    /// goes through this one impl (`Display` below delegates), so the
    /// wire vocabulary cannot drift between surfaces.
    pub fn label(self) -> &'static str {
        match self {
            TableKind::Direct => "direct",
            TableKind::Composed => "composed",
            TableKind::ValueSpecialized => "value-specialized",
            TableKind::Machine => "machine",
            TableKind::InlineExit => "inline-exit",
        }
    }
}

impl fmt::Display for TableKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One transition of a traced request.
#[derive(Clone, Debug)]
pub struct TraceTransition {
    /// When the hop landed, microseconds since the engine epoch.
    pub at_micros: u64,
    /// Rung the frame left.
    pub from: Tier,
    /// Rung the frame entered.
    pub to: Tier,
    /// Semantic direction (`Forward` climb, `Backward` deopt).
    pub direction: Direction,
    /// Which kind of table served the hop.
    pub kind: TableKind,
    /// Whether this upward hop re-climbs after an earlier deopt.
    pub reclimb: bool,
    /// `Some` with the why when the hop was a deopt.
    pub deopt: Option<DeoptReason>,
    /// Cost of the hop itself (compensation + frame surgery), nanoseconds.
    pub hop_nanos: u64,
}

/// The full lifecycle of one request, stamped on the engine epoch.
///
/// All timestamps are monotone: `submitted <= picked_up <= transitions
/// (in order) <= completed`.
#[derive(Clone, Debug, Default)]
pub struct RequestTrace {
    /// The request id ([`crate::RequestId`] value).
    pub id: u64,
    /// Function the request executed.
    pub function: String,
    /// When the request entered the queue.
    pub submitted_micros: u64,
    /// When a worker picked it up (`None` while still queued).
    pub picked_up_micros: Option<u64>,
    /// When its result was produced (`None` while running; stays `None`
    /// for an expired request).
    pub completed_micros: Option<u64>,
    /// Whether the request was dropped on an expired queueing deadline.
    pub expired: bool,
    /// Every OSR transition the request's frame took, in order.
    pub transitions: Vec<TraceTransition>,
    /// Execution time the request spent at each rung it visited,
    /// nanoseconds, in visit order (a rung revisited after a deopt
    /// appears again).
    pub rung_nanos: Vec<(Tier, u64)>,
}

impl RequestTrace {
    /// Queue wait (submit → pickup), microseconds.
    pub fn queue_wait_micros(&self) -> Option<u64> {
        self.picked_up_micros
            .map(|p| p.saturating_sub(self.submitted_micros))
    }

    /// End-to-end latency (submit → completion), microseconds.
    pub fn total_micros(&self) -> Option<u64> {
        self.completed_micros
            .map(|c| c.saturating_sub(self.submitted_micros))
    }
}

/// Renders the trace as a human-readable tree: queue wait, then the
/// per-rung residencies interleaved with the transitions that moved the
/// frame between them.
impl fmt::Display for RequestTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req {} {}", self.id, self.function)?;
        match (self.total_micros(), self.expired) {
            (_, true) => write!(f, " — EXPIRED in queue")?,
            (Some(total), _) => write!(f, " — {total}us total")?,
            (None, _) => write!(f, " — in flight")?,
        }
        if let Some(wait) = self.queue_wait_micros() {
            write!(f, " (queue {wait}us)")?;
        }
        writeln!(f)?;
        let mut rungs = self.rung_nanos.iter();
        if let Some((tier, nanos)) = rungs.next() {
            writeln!(f, "  {tier}  {}us", nanos / 1_000)?;
        }
        for t in &self.transitions {
            write!(
                f,
                "  ├─ t+{}us {} {}→{} ({}, hop {}ns",
                t.at_micros.saturating_sub(self.submitted_micros),
                match t.direction {
                    Direction::Forward if t.reclimb => "re-climb",
                    Direction::Forward => "climb",
                    Direction::Backward => "deopt",
                },
                t.from,
                t.to,
                t.kind,
                t.hop_nanos,
            )?;
            match &t.deopt {
                Some(reason) => writeln!(f, "; {reason})")?,
                None => writeln!(f, ")")?,
            }
            if let Some((tier, nanos)) = rungs.next() {
                writeln!(f, "  {tier}  {}us", nanos / 1_000)?;
            }
        }
        Ok(())
    }
}

/// How many completed traces the store retains before evicting the
/// oldest.
pub const TRACE_CAPACITY: usize = 4096;

/// The engine's bounded trace store.
#[derive(Default)]
pub(crate) struct TraceStore {
    inner: Mutex<Traces>,
}

#[derive(Default)]
struct Traces {
    /// Insertion order, for eviction.
    order: VecDeque<u64>,
    by_id: HashMap<u64, RequestTrace>,
}

impl TraceStore {
    /// Opens a trace at submission time.
    pub(crate) fn begin(&self, id: u64, function: &str, submitted_micros: u64) {
        let mut inner = self.inner.lock().expect("trace lock");
        while inner.order.len() >= TRACE_CAPACITY {
            if let Some(evicted) = inner.order.pop_front() {
                inner.by_id.remove(&evicted);
            }
        }
        inner.order.push_back(id);
        inner.by_id.insert(
            id,
            RequestTrace {
                id,
                function: function.to_string(),
                submitted_micros,
                ..RequestTrace::default()
            },
        );
    }

    /// Stamps worker pickup.
    pub(crate) fn pickup(&self, id: u64, micros: u64) {
        if let Some(t) = self.inner.lock().expect("trace lock").by_id.get_mut(&id) {
            t.picked_up_micros = Some(micros);
        }
    }

    /// Attaches the transitions and per-rung times a finished execution
    /// produced.
    pub(crate) fn record_execution(
        &self,
        id: u64,
        transitions: Vec<TraceTransition>,
        rung_nanos: Vec<(Tier, u64)>,
    ) {
        if let Some(t) = self.inner.lock().expect("trace lock").by_id.get_mut(&id) {
            t.transitions = transitions;
            t.rung_nanos = rung_nanos;
        }
    }

    /// Stamps completion.
    pub(crate) fn complete(&self, id: u64, micros: u64) {
        if let Some(t) = self.inner.lock().expect("trace lock").by_id.get_mut(&id) {
            t.completed_micros = Some(micros);
        }
    }

    /// Marks an expired-in-queue request.
    pub(crate) fn expire(&self, id: u64) {
        if let Some(t) = self.inner.lock().expect("trace lock").by_id.get_mut(&id) {
            t.expired = true;
        }
    }

    /// A copy of the trace for `id`, at whatever lifecycle stage it has
    /// reached.
    pub(crate) fn get(&self, id: u64) -> Option<RequestTrace> {
        self.inner
            .lock()
            .expect("trace lock")
            .by_id
            .get(&id)
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_stamps_accumulate() {
        let store = TraceStore::default();
        store.begin(7, "hot", 100);
        store.pickup(7, 150);
        store.record_execution(
            7,
            vec![TraceTransition {
                at_micros: 180,
                from: Tier::BASELINE,
                to: Tier(1),
                direction: Direction::Forward,
                kind: TableKind::Direct,
                reclimb: false,
                deopt: None,
                hop_nanos: 900,
            }],
            vec![(Tier::BASELINE, 30_000), (Tier(1), 50_000)],
        );
        store.complete(7, 240);
        let t = store.get(7).expect("trace exists");
        assert_eq!(t.queue_wait_micros(), Some(50));
        assert_eq!(t.total_micros(), Some(140));
        assert_eq!(t.transitions.len(), 1);
        assert_eq!(t.rung_nanos.len(), 2);
        assert!(!t.expired);
        let tree = t.to_string();
        assert!(tree.contains("140us total"));
        assert!(tree.contains("climb O0→O1"));
        assert!(tree.contains("(direct, hop 900ns)"));
        assert!(store.get(8).is_none());
    }

    #[test]
    fn expired_requests_stay_marked() {
        let store = TraceStore::default();
        store.begin(1, "hot", 10);
        store.pickup(1, 3000);
        store.expire(1);
        let t = store.get(1).expect("trace exists");
        assert!(t.expired);
        assert_eq!(t.completed_micros, None);
        assert!(t.to_string().contains("EXPIRED"));
    }

    #[test]
    fn store_is_bounded() {
        let store = TraceStore::default();
        for id in 0..(TRACE_CAPACITY as u64 + 5) {
            store.begin(id, "hot", id);
        }
        assert!(store.get(0).is_none(), "oldest evicted");
        assert!(store.get(4).is_none(), "oldest evicted");
        assert!(store.get(5).is_some());
        assert!(store.get(TRACE_CAPACITY as u64 + 4).is_some());
    }
}
