//! The first-class assumption system: one vocabulary for everything the
//! engine speculates on, one key shape for everything the cache stores,
//! and one structured taxonomy for every guard-driven deopt.
//!
//! The engine speculates three ways — branch bias, stable argument
//! values, and inlined callees — and each speculative artifact bakes its
//! bets in as an ordered [`AssumptionSet`] of [`Assumption`]s.  A
//! [`VersionKey`] (`function` + `pipeline` + assumptions) is the *only*
//! way a compiled version is named anywhere in the workspace: the code
//! cache's slot map, the composed-table memo, the cache-hit probe
//! history and `prewarm` all key on it (the legacy `CacheKey` name is a
//! thin alias).  Invalidation is driven by [`Entity`]: each published
//! artifact registers the entities its assumptions depend on, and every
//! eviction — callee republish, value-stability dissolution, rung
//! republish — flows through [`crate::CodeCache::invalidate`].
//!
//! On the deopt side, [`DeoptReason::AssumptionViolated`] carries a
//! structured [`ViolatedAssumption`] whose [`AssumptionKind`] labels the
//! violated bet; the kind travels through `OsrEvent`, `EngineEvent` and
//! `RequestTrace`, and its [`AssumptionKind::label`] is the single
//! source of truth for the per-kind label strings.

use std::fmt;

use ssair::interp::Val;
use ssair::{BlockId, InstId};

pub use tinyvm::profile::AssumptionKind;

use crate::cache::PipelineSpec;

/// A value-speculation assumption: the listed parameter slots hold the
/// given constants.  An empty speculation is the unspecialized (generic)
/// artifact.
///
/// A speculation is one *view* of a [`VersionKey`]'s assumption set —
/// the cache holds one artifact per `(function, pipeline, assumptions)`
/// — and travels with the compiled artifact
/// ([`crate::CompiledVersion::speculation`]) as its *entry guard*: the
/// engine admits a frame into the specialized version only after
/// checking the frame's actual arguments against it (or, when it hops a
/// violating frame in deliberately, fires the guard at the landing
/// before a single specialized instruction runs).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct Speculation {
    /// `(parameter slot, speculated value)` pairs, sorted by slot.
    seeds: Vec<(usize, i64)>,
}

impl Speculation {
    /// The empty (generic, unspecialized) speculation.
    pub fn none() -> Self {
        Speculation::default()
    }

    /// A speculation over the given `(slot, value)` seeds (sorted and
    /// deduplicated by slot; the first value per slot wins).
    pub fn on(seeds: impl IntoIterator<Item = (usize, i64)>) -> Self {
        let mut seeds: Vec<(usize, i64)> = seeds.into_iter().collect();
        seeds.sort_by_key(|(slot, _)| *slot);
        seeds.dedup_by_key(|(slot, _)| *slot);
        Speculation { seeds }
    }

    /// Whether this is the empty speculation.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// The `(slot, value)` seeds, sorted by slot.
    pub fn seeds(&self) -> &[(usize, i64)] {
        &self.seeds
    }

    /// The entry-guard check: whether `args` satisfy every seed.
    pub fn matches(&self, args: &[Val]) -> bool {
        self.seeds
            .iter()
            .all(|(slot, v)| matches!(args.get(*slot), Some(Val::Int(n)) if n == v))
    }

    /// The first seed `args` violate, if any: `(slot, expected, actual)`
    /// — `actual` is `None` when the slot holds no integer at all (a
    /// missing argument or a pointer), so diagnostics never fabricate a
    /// concrete value.
    pub fn violation(&self, args: &[Val]) -> Option<(usize, i64, Option<i64>)> {
        self.seeds
            .iter()
            .find_map(|(slot, v)| match args.get(*slot) {
                Some(Val::Int(n)) if n == v => None,
                Some(Val::Int(n)) => Some((*slot, *v, Some(*n))),
                _ => Some((*slot, *v, None)),
            })
    }
}

impl fmt::Display for Speculation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (slot, v)) in self.seeds.iter().enumerate() {
            write!(f, "{}p{slot}={v}", if i == 0 { "" } else { "," })?;
        }
        Ok(())
    }
}

/// An inlining assumption: the listed call sites were spliced with the
/// named callees' bodies as they stood at the given *inline epochs*.
/// Like a [`Speculation`], this is a view of a [`VersionKey`]'s
/// assumption set, but its guard is version identity rather than
/// argument values: republishing a callee bumps its epoch
/// ([`crate::CodeCache::inline_epoch`]), which evicts — through
/// [`crate::CodeCache::invalidate`] — every caller artifact whose
/// assumptions reference an older epoch.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct InlineSpec {
    /// `(call-site pc, callee name, callee inline epoch)` triples, sorted
    /// by site pc.
    sites: Vec<(InstId, String, u64)>,
}

impl InlineSpec {
    /// The empty (no-inlining) spec.
    pub fn none() -> Self {
        InlineSpec::default()
    }

    /// A spec over the given `(site, callee, epoch)` triples (sorted and
    /// deduplicated by site; the first entry per site wins).
    pub fn on(sites: impl IntoIterator<Item = (InstId, String, u64)>) -> Self {
        let mut sites: Vec<(InstId, String, u64)> = sites.into_iter().collect();
        sites.sort_by_key(|(at, _, _)| *at);
        sites.dedup_by_key(|(at, _, _)| *at);
        InlineSpec { sites }
    }

    /// Whether this is the empty spec.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The `(site, callee, epoch)` triples, sorted by site pc.
    pub fn sites(&self) -> &[(InstId, String, u64)] {
        &self.sites
    }

    /// Whether any site splices `callee`.
    pub fn involves(&self, callee: &str) -> bool {
        self.sites.iter().any(|(_, c, _)| c == callee)
    }
}

impl fmt::Display for InlineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (_, callee, epoch)) in self.sites.iter().enumerate() {
            write!(f, "{}{callee}@{epoch}", if i == 0 { "" } else { "," })?;
        }
        Ok(())
    }
}

/// One speculative bet a compiled version bakes in.
///
/// Every variant carries enough identity to (a) participate in the cache
/// key of the artifact that assumed it and (b) name the [`Entity`] whose
/// change dissolves it.  The enum is deliberately open-ended: a future
/// memory-cell kind (`CellStable { cell, value }` — speculating on a
/// heap/global cell's content) slots in as a fourth variant without
/// touching the key or invalidation plumbing.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Assumption {
    /// Parameter `slot` holds the constant `value`
    /// ([`AssumptionKind::Value`]; guarded at entry, escaped via the
    /// vetted same-rung generic escape).
    ValueStable {
        /// The speculated parameter slot.
        slot: usize,
        /// The constant the artifact was seeded with.
        value: i64,
    },
    /// The call at `site` was spliced with `callee`'s body as published
    /// at inline-epoch `epoch` ([`AssumptionKind::Inline`]; dissolved by
    /// a callee republish, escaped across the former call boundary).
    InlinedCallee {
        /// The call-site pc that was spliced.
        site: InstId,
        /// The callee whose body was inlined.
        callee: String,
        /// The callee's inline epoch at splice time.
        epoch: u64,
    },
    /// The branch at `branch` overwhelmingly takes `hot_succ`
    /// ([`AssumptionKind::Bias`]; guarded by uncommon-path counting,
    /// escaped by a plain deopt).  Bias bets are profile-local — they
    /// shape code layout rather than the cache key — so today no
    /// published key carries one, but the variant keeps the taxonomy
    /// closed over every guard the engine fires.
    BiasGuard {
        /// The biased branch's block.
        branch: BlockId,
        /// The successor the profile bet on.
        hot_succ: BlockId,
    },
}

impl Assumption {
    /// The kind dimension of the taxonomy — the canonical label used by
    /// metrics, traces and the event stream.
    pub fn kind(&self) -> AssumptionKind {
        match self {
            Assumption::ValueStable { .. } => AssumptionKind::Value,
            Assumption::InlinedCallee { .. } => AssumptionKind::Inline,
            Assumption::BiasGuard { .. } => AssumptionKind::Bias,
        }
    }

    /// Whether `other` bets on the same *subject* (same slot, same call
    /// site, same branch) — the dedup dimension of an [`AssumptionSet`].
    fn same_subject(&self, other: &Assumption) -> bool {
        match (self, other) {
            (Assumption::ValueStable { slot: a, .. }, Assumption::ValueStable { slot: b, .. }) => {
                a == b
            }
            (
                Assumption::InlinedCallee { site: a, .. },
                Assumption::InlinedCallee { site: b, .. },
            ) => a == b,
            (Assumption::BiasGuard { branch: a, .. }, Assumption::BiasGuard { branch: b, .. }) => {
                a == b
            }
            _ => false,
        }
    }
}

impl fmt::Display for Assumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Assumption::ValueStable { slot, value } => write!(f, "p{slot}={value}"),
            Assumption::InlinedCallee { callee, epoch, .. } => write!(f, "{callee}@{epoch}"),
            Assumption::BiasGuard { branch, hot_succ } => {
                write!(f, "bias({branch:?}→{hot_succ:?})")
            }
        }
    }
}

/// An ordered, deduplicated set of [`Assumption`]s — the speculation
/// dimension of a [`VersionKey`].
///
/// Canonical order (sorted, one assumption per subject) makes equal bets
/// hash equal regardless of discovery order, which is what lets the set
/// serve as a cache-key dimension and a serializable version name.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct AssumptionSet {
    /// Sorted, subject-deduplicated assumptions.
    assumptions: Vec<Assumption>,
}

impl AssumptionSet {
    /// The empty set (the generic, assumption-free artifact).
    pub fn none() -> Self {
        AssumptionSet::default()
    }

    /// A set over the given assumptions (sorted; one bet per subject,
    /// the least under the derived order winning ties).
    pub fn on(assumptions: impl IntoIterator<Item = Assumption>) -> Self {
        let mut assumptions: Vec<Assumption> = assumptions.into_iter().collect();
        assumptions.sort();
        assumptions.dedup_by(|a, b| a.same_subject(b));
        AssumptionSet { assumptions }
    }

    /// The set equivalent to a legacy `(speculation, inline)` pair.
    pub fn compose(speculation: &Speculation, inline: &InlineSpec) -> Self {
        AssumptionSet::on(
            speculation
                .seeds()
                .iter()
                .map(|&(slot, value)| Assumption::ValueStable { slot, value })
                .chain(inline.sites().iter().map(|(site, callee, epoch)| {
                    Assumption::InlinedCallee {
                        site: *site,
                        callee: callee.clone(),
                        epoch: *epoch,
                    }
                })),
        )
    }

    /// Whether the set is empty (a generic artifact).
    pub fn is_empty(&self) -> bool {
        self.assumptions.is_empty()
    }

    /// Number of assumptions in the set.
    pub fn len(&self) -> usize {
        self.assumptions.len()
    }

    /// The assumptions, in canonical order.
    pub fn iter(&self) -> std::slice::Iter<'_, Assumption> {
        self.assumptions.iter()
    }

    /// The value-speculation view: every [`Assumption::ValueStable`] bet
    /// as a [`Speculation`].
    pub fn speculation(&self) -> Speculation {
        Speculation::on(self.assumptions.iter().filter_map(|a| match a {
            Assumption::ValueStable { slot, value } => Some((*slot, *value)),
            _ => None,
        }))
    }

    /// The inlining view: every [`Assumption::InlinedCallee`] bet as an
    /// [`InlineSpec`].
    pub fn inline_spec(&self) -> InlineSpec {
        InlineSpec::on(self.assumptions.iter().filter_map(|a| match a {
            Assumption::InlinedCallee {
                site,
                callee,
                epoch,
            } => Some((*site, callee.clone(), *epoch)),
            _ => None,
        }))
    }
}

impl<'a> IntoIterator for &'a AssumptionSet {
    type Item = &'a Assumption;
    type IntoIter = std::slice::Iter<'a, Assumption>;
    fn into_iter(self) -> Self::IntoIter {
        self.assumptions.iter()
    }
}

impl fmt::Display for AssumptionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.assumptions.iter().enumerate() {
            write!(f, "{}{a}", if i == 0 { "" } else { "," })?;
        }
        Ok(())
    }
}

/// The one way a compiled version is named: one function, one pipeline
/// rung, one assumption set.  Every map in the code cache — the slot
/// shards, the composed-table memo (as endpoint pairs), the cache-hit
/// probe history (as [`VersionKey::generic`] views) — and `prewarm` key
/// on this shape; the legacy `CacheKey` alias points here.
///
/// The `Display` form (`f:O2[p0=3]+inl[g@1]`) is canonical and stable —
/// a serializable version name suitable for persisted-artifact manifests.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct VersionKey {
    /// Function name in the engine's module.
    pub function: String,
    /// Pipeline the artifact was (or will be) produced by.
    pub pipeline: PipelineSpec,
    /// The speculative bets the artifact bakes in (empty for the generic
    /// artifact).
    pub assumptions: AssumptionSet,
}

impl VersionKey {
    /// Key for the generic (assumption-free) `function` artifact under
    /// `pipeline`.
    pub fn new(function: impl Into<String>, pipeline: PipelineSpec) -> Self {
        VersionKey {
            function: function.into(),
            pipeline,
            assumptions: AssumptionSet::none(),
        }
    }

    /// Key for `function`'s `speculation`-specialized artifact under
    /// `pipeline`.
    pub fn speculated(
        function: impl Into<String>,
        pipeline: PipelineSpec,
        speculation: Speculation,
    ) -> Self {
        VersionKey {
            function: function.into(),
            pipeline,
            assumptions: AssumptionSet::compose(&speculation, &InlineSpec::none()),
        }
    }

    /// Key for `function`'s artifact spliced under `inline` (on top of an
    /// optional value speculation).
    pub fn inlined(
        function: impl Into<String>,
        pipeline: PipelineSpec,
        speculation: Speculation,
        inline: InlineSpec,
    ) -> Self {
        VersionKey {
            function: function.into(),
            pipeline,
            assumptions: AssumptionSet::compose(&speculation, &inline),
        }
    }

    /// The value-speculation view of the key's assumptions.
    pub fn speculation(&self) -> Speculation {
        self.assumptions.speculation()
    }

    /// The inlining view of the key's assumptions.
    pub fn inline_spec(&self) -> InlineSpec {
        self.assumptions.inline_spec()
    }

    /// The assumption-free `(function, pipeline)` view — the key the
    /// probe history aggregates under.
    pub fn generic(&self) -> VersionKey {
        VersionKey::new(self.function.clone(), self.pipeline.clone())
    }

    /// Display label: the pipeline name, with the speculation suffixed
    /// for specialized artifacts (e.g. `O2[p0=3]`) and the inline spec
    /// for spliced ones (e.g. `O3+inl[helper@1]`) — what metrics and
    /// event streams show.
    pub fn pipeline_label(&self) -> String {
        let speculation = self.speculation();
        let inline = self.inline_spec();
        let mut label = pipeline_label(&self.pipeline, &speculation);
        if !inline.is_empty() {
            label.push_str(&format!("+inl[{inline}]"));
        }
        label
    }
}

impl fmt::Display for VersionKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.function, self.pipeline_label())
    }
}

/// The `O2[p0=3]`-style display label for a `(pipeline, speculation)`
/// pair; plain pipeline name when the speculation is empty.
pub fn pipeline_label(spec: &PipelineSpec, speculation: &Speculation) -> String {
    if speculation.is_empty() {
        spec.name().to_string()
    } else {
        format!("{}[{speculation}]", spec.name())
    }
}

/// Something a published artifact's assumptions depend on — the node
/// vocabulary of the cache's dependency registry.
///
/// At publish time, [`crate::CodeCache::publish`] registers the artifact
/// under one entity per assumption; [`crate::CodeCache::invalidate`]
/// walks the registry and evicts every dependent through the one shared
/// path, bumping the matching per-kind counter.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Entity {
    /// A callee's identity — invalidated when the callee is republished
    /// (its inline epoch advances), dissolving every
    /// [`Assumption::InlinedCallee`] that referenced the older body.
    Callee(String),
    /// A published rung itself — invalidated when the artifact at this
    /// key is replaced, dropping every memoized composed table routed
    /// through it.
    Rung(VersionKey),
    /// The profile-stability of one argument slot — invalidated when the
    /// profile stops reporting the slot stable, dissolving every
    /// [`Assumption::ValueStable`] bet on it.
    ValueStability {
        /// The specializing function.
        function: String,
        /// The dissolved parameter slot.
        slot: usize,
    },
}

/// The per-kind invalidation counters the cache's dependency registry
/// maintains — one counter per assumption family, summing to the
/// `assumption_invalidations` aggregate surfaced in
/// [`crate::MetricsSnapshot`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct InvalidationCounts {
    /// Composed tables dropped by [`Entity::Rung`] invalidations.
    pub composed: u64,
    /// Caller artifacts evicted (or abandoned in flight) by
    /// [`Entity::Callee`] invalidations.
    pub inline: u64,
    /// Value-specialized artifacts evicted by [`Entity::ValueStability`]
    /// invalidations.
    pub value: u64,
}

impl InvalidationCounts {
    /// The `assumption_invalidations` aggregate: every artifact or table
    /// the unified path invalidated, across all kinds.
    pub fn total(&self) -> u64 {
        self.composed + self.inline + self.value
    }
}

/// The structured identity of a violated assumption — what fired, where,
/// and with what evidence.  One taxonomy for all three guard families;
/// [`ViolatedAssumption::kind`] is the label dimension.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ViolatedAssumption {
    /// A branch-bias guard fired: the frame repeatedly entered `uncommon`
    /// times the branch successor the baseline profile bet against, at
    /// instruction `at` of the optimized version.
    Bias {
        /// The optimized-version instruction that witnessed the uncommon
        /// path when the guard fired.
        at: InstId,
        /// Uncommon-path hits accumulated by the frame when it fired.
        uncommon: u64,
    },
    /// A value guard fired: the frame entered a constant-seeded
    /// specialized version whose speculated argument its own arguments
    /// violate.  The guard fires at the entry landing — before a single
    /// specialized instruction executes — and the frame escapes to an
    /// unspecialized version, re-climbing without the stale assumption.
    Value {
        /// The specialized-version instruction the frame landed on when
        /// the guard fired.
        at: InstId,
        /// The violated parameter slot.
        slot: usize,
        /// The value the artifact speculated.
        expected: i64,
        /// The frame's actual argument (`None` when the slot held no
        /// integer — a missing argument or a pointer).
        actual: Option<i64>,
    },
    /// An inline guard fired: the frame runs a version with a hot call
    /// site spliced in, and it repeatedly (`uncommon` times) took a
    /// branch path inside the inlined region that the callee's baseline
    /// profile bet against.  The frame exits across the former call
    /// boundary — reconstructing the callee frame when the landing falls
    /// mid-region — and resumes in call-preserving code.
    Inline {
        /// The optimized-version instruction that witnessed the uncommon
        /// path when the guard fired.
        at: InstId,
        /// Uncommon-path hits accumulated by the frame when it fired.
        uncommon: u64,
    },
}

impl ViolatedAssumption {
    /// The kind dimension — the canonical label metrics, traces and the
    /// event stream bucket by.
    pub fn kind(&self) -> AssumptionKind {
        match self {
            ViolatedAssumption::Bias { .. } => AssumptionKind::Bias,
            ViolatedAssumption::Value { .. } => AssumptionKind::Value,
            ViolatedAssumption::Inline { .. } => AssumptionKind::Inline,
        }
    }
}

impl fmt::Display for ViolatedAssumption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolatedAssumption::Bias { at, uncommon } => {
                write!(f, "guard failure at {at} ({uncommon} uncommon hits)")
            }
            ViolatedAssumption::Value {
                at,
                slot,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "value guard at {at}: p{slot} speculated {expected}, got "
                )?;
                match actual {
                    Some(n) => write!(f, "{n}"),
                    None => write!(f, "a non-integer"),
                }
            }
            ViolatedAssumption::Inline { at, uncommon } => {
                write!(f, "inline guard failure at {at} ({uncommon} uncommon hits)")
            }
        }
    }
}

/// Why a frame tiered down: either a speculative assumption it was
/// running under was violated, or the debugger forced it to the
/// baseline.  The single guard/deopt taxonomy — every guard family maps
/// to an [`AssumptionViolated`](DeoptReason::AssumptionViolated) with
/// its structured [`ViolatedAssumption`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeoptReason {
    /// A speculative assumption was violated; the payload says which
    /// kind, where, and with what evidence.
    AssumptionViolated(ViolatedAssumption),
    /// A debugger attach ([`crate::ExecMode::Debug`]) forced the frame to
    /// the baseline at the first instrumented visit (§7).
    DebuggerAttach,
}

impl DeoptReason {
    /// A branch-bias guard failure ([`AssumptionKind::Bias`]).
    pub fn bias_guard(at: InstId, uncommon: u64) -> Self {
        DeoptReason::AssumptionViolated(ViolatedAssumption::Bias { at, uncommon })
    }

    /// A value-guard failure ([`AssumptionKind::Value`]).
    pub fn value_guard(at: InstId, slot: usize, expected: i64, actual: Option<i64>) -> Self {
        DeoptReason::AssumptionViolated(ViolatedAssumption::Value {
            at,
            slot,
            expected,
            actual,
        })
    }

    /// An inline-guard failure ([`AssumptionKind::Inline`]).
    pub fn inline_guard(at: InstId, uncommon: u64) -> Self {
        DeoptReason::AssumptionViolated(ViolatedAssumption::Inline { at, uncommon })
    }

    /// The violated assumption's kind, if this deopt fired a guard
    /// (`None` for a debugger attach).
    pub fn violated_kind(&self) -> Option<AssumptionKind> {
        match self {
            DeoptReason::AssumptionViolated(v) => Some(v.kind()),
            DeoptReason::DebuggerAttach => None,
        }
    }
}

impl fmt::Display for DeoptReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeoptReason::AssumptionViolated(v) => write!(f, "{v}"),
            DeoptReason::DebuggerAttach => write!(f, "debugger attach"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assumption_sets_are_canonical() {
        let a = AssumptionSet::on([
            Assumption::ValueStable { slot: 1, value: 7 },
            Assumption::ValueStable { slot: 0, value: 3 },
        ]);
        let b = AssumptionSet::on([
            Assumption::ValueStable { slot: 0, value: 3 },
            Assumption::ValueStable { slot: 1, value: 7 },
        ]);
        assert_eq!(a, b, "insertion order does not change the set");
        assert_eq!(a.to_string(), "p0=3,p1=7");
        assert_eq!(a.speculation(), Speculation::on([(0, 3), (1, 7)]));
        assert!(a.inline_spec().is_empty());
    }

    #[test]
    fn one_bet_per_subject() {
        let s = AssumptionSet::on([
            Assumption::ValueStable { slot: 0, value: 3 },
            Assumption::ValueStable { slot: 0, value: 9 },
        ]);
        assert_eq!(s.len(), 1, "one value bet per slot");
        let i = AssumptionSet::on([
            Assumption::InlinedCallee {
                site: InstId(4),
                callee: "g".into(),
                epoch: 0,
            },
            Assumption::InlinedCallee {
                site: InstId(4),
                callee: "h".into(),
                epoch: 2,
            },
        ]);
        assert_eq!(i.len(), 1, "one splice per call site");
    }

    #[test]
    fn version_keys_round_trip_their_views() {
        let spec = Speculation::on([(0, 3), (1, 7)]);
        let inline = InlineSpec::on([(InstId(5), "helper".to_string(), 1)]);
        let key = VersionKey::inlined("f", PipelineSpec::O3, spec.clone(), inline.clone());
        assert_eq!(key.speculation(), spec);
        assert_eq!(key.inline_spec(), inline);
        assert_eq!(key.pipeline_label(), "O3[p0=3,p1=7]+inl[helper@1]");
        assert_eq!(key.to_string(), "f:O3[p0=3,p1=7]+inl[helper@1]");
        let generic = key.generic();
        assert!(generic.assumptions.is_empty());
        assert_eq!(generic, VersionKey::new("f", PipelineSpec::O3));
        assert_ne!(key, generic);
    }

    #[test]
    fn the_taxonomy_kinds_and_labels_line_up() {
        let bias = DeoptReason::bias_guard(InstId(3), 4);
        let value = DeoptReason::value_guard(InstId(0), 1, 7, Some(9));
        let inline = DeoptReason::inline_guard(InstId(8), 4);
        assert_eq!(bias.violated_kind(), Some(AssumptionKind::Bias));
        assert_eq!(value.violated_kind(), Some(AssumptionKind::Value));
        assert_eq!(inline.violated_kind(), Some(AssumptionKind::Inline));
        assert_eq!(DeoptReason::DebuggerAttach.violated_kind(), None);
        assert_eq!(AssumptionKind::Bias.label(), "bias");
        assert_eq!(AssumptionKind::Value.label(), "value");
        assert_eq!(AssumptionKind::Inline.label(), "inline");
        assert_eq!(AssumptionKind::Memory.label(), "memory");
    }

    #[test]
    fn deopt_reasons_render_their_legacy_strings() {
        assert_eq!(
            DeoptReason::bias_guard(InstId(3), 4).to_string(),
            "guard failure at i3 (4 uncommon hits)"
        );
        assert_eq!(
            DeoptReason::value_guard(InstId(0), 0, 3, Some(5)).to_string(),
            "value guard at i0: p0 speculated 3, got 5"
        );
        assert_eq!(
            DeoptReason::value_guard(InstId(0), 0, 3, None).to_string(),
            "value guard at i0: p0 speculated 3, got a non-integer"
        );
        assert_eq!(
            DeoptReason::inline_guard(InstId(8), 4).to_string(),
            "inline guard failure at i8 (4 uncommon hits)"
        );
        assert_eq!(DeoptReason::DebuggerAttach.to_string(), "debugger attach");
    }
}
