//! Lock-free log-bucketed latency histograms.
//!
//! The engine records four latency distributions (request latency, queue
//! wait, compile latency, per-transition cost) without taking a lock or
//! allocating per observation. [`LogHistogram`] is a hand-rolled HDR-lite:
//! a fixed array of relaxed [`AtomicU64`] buckets laid out so that each
//! power of two is split into [`SUB_BUCKETS`] linear sub-buckets.
//!
//! # Error bounds
//!
//! Values below `2 * SUB_BUCKETS` land in exact single-value buckets.
//! Above that, a bucket covering `[lo, hi]` has width `lo / SUB_BUCKETS`,
//! so a reported quantile `q` overstates the true sorted-percentile value
//! `x` by at most `x / SUB_BUCKETS` (12.5% with the default 8 sub-buckets):
//! `x <= q <= x + x / SUB_BUCKETS`. Quantiles report the *upper* edge of
//! the bucket holding the target rank, clamped to the observed maximum, so
//! they are conservative and `p99 <= max` always holds.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power of two. Must be a power of two.
pub const SUB_BUCKETS: u64 = 8;
const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();
/// Enough buckets to index every `u64` value (see [`bucket_index`]).
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB_BUCKETS as usize;

/// Bucket index for a value: exact below `2 * SUB_BUCKETS`, logarithmic
/// with `SUB_BUCKETS` linear sub-buckets per octave above.
fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS {
        value as usize
    } else {
        let msb = 63 - value.leading_zeros();
        let shift = msb - SUB_BITS;
        (shift as usize) * SUB_BUCKETS as usize + (value >> shift) as usize
    }
}

/// Inclusive upper edge of bucket `index` (the largest value that maps to it).
fn bucket_upper_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUB_BUCKETS {
        index
    } else {
        let shift = index / SUB_BUCKETS - 1;
        let base = (index % SUB_BUCKETS + SUB_BUCKETS) << shift;
        base.saturating_add((1u64 << shift) - 1)
    }
}

/// A fixed-size, lock-free histogram with bounded relative error.
///
/// `record` is wait-free: one relaxed `fetch_add` on a bucket plus three
/// on the aggregate counters. No allocation, no locking, no ordering
/// constraints — safe to call from the interpreter-adjacent paths that the
/// engine's batched-flush discipline allows (hop boundaries, worker pickup,
/// compile completion), and cheap enough that it wouldn't matter if it ran
/// hotter.
pub struct LogHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    pub fn new() -> Self {
        LogHistogram {
            buckets: Box::new([const { AtomicU64::new(0) }; BUCKETS]),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one observation. Wait-free; relaxed atomics only.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Freeze the current contents into a [`HistogramSnapshot`].
    ///
    /// Concurrent `record`s may straddle the snapshot; each individual
    /// observation is either fully in or fully out up to the usual relaxed
    /// skew, which is fine for telemetry.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let max = self.max.load(Ordering::Relaxed);
        let sum = self.sum.load(Ordering::Relaxed);
        let mut counts = [0u64; BUCKETS];
        let mut seen = 0u64;
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
            seen += *slot;
        }
        // Quantile of rank r (1-based): upper edge of the bucket where the
        // cumulative count first reaches r, clamped to the observed max.
        let quantile = |q: f64| -> u64 {
            let rank = ((q * seen as f64).ceil() as u64).clamp(1, seen);
            let mut cumulative = 0u64;
            for (index, bucket_count) in counts.iter().enumerate() {
                cumulative += bucket_count;
                if cumulative >= rank {
                    return bucket_upper_edge(index).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum,
            max,
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time summary of a [`LogHistogram`]: counts plus conservative
/// p50/p90/p99 (upper bucket edges, error bound in the module docs).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.sum / self.count
        }
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut values: Vec<u64> = (0..64u32)
            .flat_map(|shift| {
                [0u64, 1, 2, 3]
                    .into_iter()
                    .map(move |offset| (1u64 << shift).saturating_add(offset))
            })
            .chain([0, u64::MAX - 1, u64::MAX])
            .collect();
        values.sort_unstable();
        let mut previous = 0usize;
        for value in values {
            let index = bucket_index(value);
            assert!(index < BUCKETS, "index {index} out of range for {value}");
            assert!(index >= previous, "bucketing not monotone at {value}");
            previous = index;
        }
    }

    #[test]
    fn upper_edge_bounds_its_bucket() {
        for value in (0..4096u64).chain([1 << 20, 1 << 40, u64::MAX / 2, u64::MAX]) {
            let index = bucket_index(value);
            let edge = bucket_upper_edge(index);
            assert!(edge >= value, "edge {edge} below value {value}");
            if edge < u64::MAX {
                assert!(
                    bucket_index(edge + 1) > index,
                    "edge {edge} not tight for bucket {index}"
                );
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = LogHistogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 16);
        assert_eq!(snap.max, 15);
        assert_eq!(snap.p50, 7);
        assert_eq!(snap.p99, 15);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = LogHistogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn one_sample() {
        let h = LogHistogram::new();
        h.record(12_345);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 12_345);
        assert_eq!(snap.p50, snap.p99);
        assert!(snap.p50 >= 12_345);
        assert!(snap.p50 <= 12_345 + 12_345 / SUB_BUCKETS);
    }

    #[test]
    fn saturating_extremes() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.p99, u64::MAX);
        assert_eq!(snap.p50, 0);
    }
}
