//! Persistent engine sessions: a long-lived worker pool fed by
//! [`EngineHandle::submit`], streaming [`ResultEvent`]s as requests
//! complete and engine events (transitions, compiles, composed-table
//! builds) occur — the sustained multi-tenant traffic shape `run_batch`'s
//! batch-scoped `thread::scope` could not model.
//!
//! ```text
//!   submit(Request) ─► work queue ─► N persistent workers ─► run_one
//!        │                                                     │
//!        ▼                                                     ▼
//!   RequestId                       events channel ◄── Completed / Engine(…)
//!        │                                │
//!        └── shutdown() drains in-flight ─┘
//! ```
//!
//! Multiple sessions may run concurrently over one [`Engine`]; they share
//! the code cache, profile counters, compile pool and metrics.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use ssair::interp::Val;
use ssair::reconstruct::Direction;

use crate::assume::AssumptionKind;
use crate::engine::{Engine, EngineCore, EngineError, Request};
use crate::metrics::{EngineEvent, MetricsSnapshot};

/// Identifies one submitted request within a session (monotonically
/// increasing in submission order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RequestId(pub u64);

/// Why a non-blocking submission was not accepted.
#[derive(Debug)]
pub enum SubmitError {
    /// The session's waiting-request queue is at
    /// [`crate::EnginePolicy::queue_depth`]; the rejected request is
    /// returned so the caller can retry or shed it.
    QueueFull(Request),
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull(r) => {
                write!(
                    f,
                    "session queue full; rejected request for `{}`",
                    r.function
                )
            }
        }
    }
}

impl std::error::Error for SubmitError {}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// One entry of a session's streamed event channel.
#[derive(Clone, Debug)]
pub enum ResultEvent {
    /// A submitted request finished.
    Completed {
        /// The id [`EngineHandle::submit`] returned.
        id: RequestId,
        /// The request's result.
        result: Result<Option<Val>, EngineError>,
    },
    /// A submitted request's [`crate::Request::deadline`] elapsed while
    /// it waited for a worker: it was dropped without executing (counted
    /// in [`crate::MetricsSnapshot::deadline_expired`]).
    DeadlineExpired {
        /// The id [`EngineHandle::submit`] returned.
        id: RequestId,
        /// Microseconds the request actually waited.
        waited: u64,
    },
    /// An engine event (transition, compile, composed-table build,
    /// rejection) observed while the session was live.
    Engine(EngineEvent),
}

/// What a session did, returned by [`EngineHandle::shutdown`].
#[derive(Debug)]
pub struct SessionReport {
    /// Requests submitted over the session's lifetime.
    pub submitted: u64,
    /// Every event still in the stream at shutdown (events already
    /// consumed via [`EngineHandle::next_event`] are not repeated).
    pub events: Vec<ResultEvent>,
    /// Cumulative engine metrics at shutdown.
    pub metrics: MetricsSnapshot,
}

impl SessionReport {
    /// The per-request results present in [`SessionReport::events`], in
    /// request-id order (deadline-dropped requests have no result — see
    /// [`SessionReport::expired`]).
    pub fn results(&self) -> BTreeMap<RequestId, &Result<Option<Val>, EngineError>> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ResultEvent::Completed { id, result } => Some((*id, result)),
                _ => None,
            })
            .collect()
    }

    /// Requests dropped on an expired deadline, in request-id order.
    pub fn expired(&self) -> Vec<RequestId> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ResultEvent::DeadlineExpired { id, .. } => Some(*id),
                _ => None,
            })
            .collect()
    }

    /// Transitions of the given direction present in the event stream.
    pub fn transitions(&self, direction: Direction) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, ResultEvent::Engine(EngineEvent::Transition { event, .. })
                         if event.direction == direction)
            })
            .count()
    }

    /// Deopts in the stream that violated an assumption of the given
    /// kind — the session-level view of the unified
    /// [`crate::DeoptReason::AssumptionViolated`] taxonomy.
    /// Debugger-attach deopts carry no kind and are never counted here.
    pub fn assumption_deopts(&self, kind: AssumptionKind) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, ResultEvent::Engine(EngineEvent::Deopt { reason, .. })
                         if reason.violated_kind() == Some(kind))
            })
            .count()
    }

    /// Tier-ups served by composed version-to-version tables.
    pub fn composed_transitions(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    ResultEvent::Engine(EngineEvent::Transition { composed: true, .. })
                )
            })
            .count()
    }
}

/// A live session over an [`Engine`]: submit requests, stream results,
/// shut down gracefully.  Dropping the handle without calling
/// [`EngineHandle::shutdown`] still drains in-flight work and joins the
/// workers.
pub struct EngineHandle {
    core: Arc<EngineCore>,
    work_tx: Option<Sender<(RequestId, Request, Instant)>>,
    events_rx: Receiver<ResultEvent>,
    subscription: Option<u64>,
    workers: Vec<JoinHandle<()>>,
    /// Ids submitted through *this* session (ids themselves are
    /// engine-global, so concurrent sessions never collide).
    mine: Arc<Mutex<std::collections::HashSet<u64>>>,
    submitted: AtomicU64,
    /// Requests submitted but not yet picked up by a worker — the
    /// back-pressure gauge [`EngineHandle::try_submit`] checks against
    /// [`crate::EnginePolicy::queue_depth`].
    waiting: Arc<WaitGauge>,
}

/// The bounded-queue gauge: how many requests are waiting for a worker,
/// plus the condvar blocked [`EngineHandle::submit`] callers sleep on
/// (workers signal it as they pick requests up, so a blocked producer
/// wakes exactly when room frees instead of polling).
#[derive(Default)]
struct WaitGauge {
    count: Mutex<u64>,
    freed: Condvar,
}

impl Engine {
    /// Starts a persistent session: spawns `policy.batch_workers` request
    /// workers that outlive any individual submission and stream
    /// [`ResultEvent`]s as work completes.
    pub fn start(&self) -> EngineHandle {
        let core = Arc::clone(&self.core);
        let (work_tx, work_rx) = channel::<(RequestId, Request, Instant)>();
        let (events_tx, events_rx) = channel::<ResultEvent>();
        let mine: Arc<Mutex<std::collections::HashSet<u64>>> = Arc::default();
        // Engine events are forwarded into the session's stream for as
        // long as it lives: per-request Transition events only for *this*
        // session's requests; engine-wide events (compiles, composed-table
        // builds, rejections) to every session, since any of them may be
        // serving the artifact.
        let sub_tx = events_tx.clone();
        let sub_mine = Arc::clone(&mine);
        let subscription = core.events.subscribe(move |timed| {
            // Per-request events are forwarded only when the request is
            // this session's own.
            if let EngineEvent::Transition { request, .. }
            | EngineEvent::Deopt { request, .. }
            | EngineEvent::Reclimb { request, .. } = &timed.event
            {
                if !sub_mine.lock().expect("session id lock").contains(request) {
                    return;
                }
            }
            let _ = sub_tx.send(ResultEvent::Engine(timed.event.clone()));
        });
        let work_rx = Arc::new(Mutex::new(work_rx));
        let waiting: Arc<WaitGauge> = Arc::default();
        let workers = (0..core.policy.batch_workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let work_rx = Arc::clone(&work_rx);
                let events_tx = events_tx.clone();
                let waiting = Arc::clone(&waiting);
                std::thread::Builder::new()
                    .name(format!("engine-worker-{i}"))
                    .spawn(move || worker_loop(&core, &work_rx, &events_tx, &waiting))
                    .expect("spawn session worker")
            })
            .collect();
        EngineHandle {
            core,
            work_tx: Some(work_tx),
            events_rx,
            subscription: Some(subscription),
            workers,
            mine,
            submitted: AtomicU64::new(0),
            waiting,
        }
    }
}

impl EngineHandle {
    /// Enqueues one request onto the session's persistent worker pool and
    /// returns its id; the matching [`ResultEvent::Completed`] arrives on
    /// the event stream once a worker finishes it.  Ids are unique across
    /// every session of the engine.
    ///
    /// The waiting queue is bounded by
    /// [`crate::EnginePolicy::queue_depth`]: when full, this call *blocks*
    /// until a worker makes room.  Use [`EngineHandle::try_submit`] to
    /// shed load instead of waiting.
    pub fn submit(&self, request: Request) -> RequestId {
        let depth = self.core.policy.queue_depth.max(1) as u64;
        let mut count = self.waiting.count.lock().expect("wait gauge lock");
        while *count >= depth {
            count = self.waiting.freed.wait(count).expect("wait gauge lock");
        }
        *count += 1;
        drop(count);
        self.enqueue(request)
    }

    /// Non-blocking [`EngineHandle::submit`]: enqueues the request unless
    /// the session already has [`crate::EnginePolicy::queue_depth`]
    /// requests waiting for a worker, in which case the request is handed
    /// back inside [`SubmitError::QueueFull`] — the back-pressure signal a
    /// load-shedding front end acts on.
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError::QueueFull`] when the waiting queue is at
    /// capacity.
    pub fn try_submit(&self, request: Request) -> Result<RequestId, SubmitError> {
        // Reserve a slot under the gauge lock so the bound cannot be
        // breached by racing submitters.
        let depth = self.core.policy.queue_depth.max(1) as u64;
        let mut count = self.waiting.count.lock().expect("wait gauge lock");
        if *count >= depth {
            return Err(SubmitError::QueueFull(request));
        }
        *count += 1;
        drop(count);
        Ok(self.enqueue(request))
    }

    /// Sends one slot-holding request to the workers (shared tail of
    /// [`EngineHandle::submit`] and [`EngineHandle::try_submit`]),
    /// stamping the submission instant its [`crate::Request::deadline`]
    /// counts from.
    fn enqueue(&self, request: Request) -> RequestId {
        let id = RequestId(self.core.next_request_id.fetch_add(1, Ordering::Relaxed));
        // Register before enqueueing so no event for this id can race past
        // the subscription filter.
        self.mine.lock().expect("session id lock").insert(id.0);
        self.submitted.fetch_add(1, Ordering::Relaxed);
        // Open the lifecycle trace before the workers can see the job, so
        // pickup can never be stamped on a missing trace.
        self.core
            .traces
            .begin(id.0, &request.function, self.core.events.now_micros());
        self.work_tx
            .as_ref()
            .expect("session is live until shutdown")
            .send((id, request, Instant::now()))
            .expect("session workers outlive the queue");
        id
    }

    /// Requests currently waiting for a worker.
    pub fn waiting(&self) -> u64 {
        *self.waiting.count.lock().expect("wait gauge lock")
    }

    /// Blocks for the next streamed event; `None` once the session is
    /// shut down and the stream is drained.
    pub fn next_event(&self) -> Option<ResultEvent> {
        self.events_rx.recv().ok()
    }

    /// The next streamed event, if one is already pending.
    pub fn try_event(&self) -> Option<ResultEvent> {
        self.events_rx.try_recv().ok()
    }

    /// Cumulative engine metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    /// The lifecycle trace of a submitted request, at whatever stage it
    /// has reached: submitted, picked up, expired, or completed (with its
    /// transitions and per-rung times).  `None` for ids this engine never
    /// saw or that the bounded store already evicted.
    pub fn trace(&self, id: RequestId) -> Option<crate::trace::RequestTrace> {
        self.core.traces.get(id.0)
    }

    /// Requests submitted through this session so far.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Closes the queue, drains every in-flight and still-queued request,
    /// joins the workers, and returns the remaining event stream plus
    /// final metrics.
    pub fn shutdown(mut self) -> SessionReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> SessionReport {
        // Closing the queue lets each worker drain remaining work and exit.
        self.work_tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(sub) = self.subscription.take() {
            self.core.events.unsubscribe(sub);
        }
        SessionReport {
            submitted: self.submitted(),
            events: self.events_rx.try_iter().collect(),
            metrics: self.core.snapshot(),
        }
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() || self.subscription.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

fn worker_loop(
    core: &EngineCore,
    work_rx: &Mutex<Receiver<(RequestId, Request, Instant)>>,
    events_tx: &Sender<ResultEvent>,
    waiting: &WaitGauge,
) {
    loop {
        // Hold the lock only while popping, never while executing.
        let job = match work_rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok((id, request, submitted_at)) = job else {
            return;
        };
        // Picked up: the request no longer occupies a waiting slot; wake
        // one blocked submitter.
        *waiting.count.lock().expect("wait gauge lock") -= 1;
        waiting.freed.notify_one();
        let waited = submitted_at.elapsed().as_micros() as u64;
        core.metrics.queue_wait.record(waited);
        core.traces.pickup(id.0, core.events.now_micros());
        // Deadline check at pickup: work whose queueing budget elapsed is
        // dropped, not executed — the caller stopped waiting, and running
        // it anyway would only steal this worker from live traffic.  A
        // request expires once it has waited *longer than* its budget; a
        // zero budget expires unconditionally (deterministically, not
        // only when the scheduler happens to burn a microsecond before
        // pickup — `waited > 0` is a coin flip at µs resolution).
        if let Some(deadline) = request.deadline {
            if deadline == 0 || waited > deadline {
                core.metrics
                    .deadline_expired
                    .fetch_add(1, Ordering::Relaxed);
                core.traces.expire(id.0);
                let _ = events_tx.send(ResultEvent::DeadlineExpired { id, waited });
                continue;
            }
        }
        // A panicking request (e.g. an engine-bug assertion in the compile
        // path) must not take the worker down: the `thread::scope` this
        // API replaced would re-raise the panic to the caller, but here a
        // silently dead worker would leave the submitter blocked forever
        // on a Completed event that never comes.  Convert it to an error
        // result instead.
        let result = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            core.run_one(id.0, &request)
        })) {
            Ok(result) => result,
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                Err(EngineError::Internal(format!(
                    "request worker panicked: {msg}"
                )))
            }
        };
        core.metrics
            .request_latency
            .record(submitted_at.elapsed().as_micros() as u64);
        core.traces.complete(id.0, core.events.now_micros());
        // A send can only fail after the handle is gone; the result is
        // then unobservable anyway.
        let _ = events_tx.send(ResultEvent::Completed { id, result });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EnginePolicy;
    use tinyvm::runtime::Vm;

    fn engine() -> Engine {
        let m = minic::compile(
            "fn hot(x, n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + x * x + i; }
                 return s;
             }",
        )
        .unwrap();
        Engine::new(
            m,
            EnginePolicy {
                compile_workers: 1,
                batch_workers: 2,
                ..EnginePolicy::two_tier(8, 24)
            },
        )
    }

    #[test]
    fn session_streams_completions_for_every_submission() {
        let engine = engine();
        let handle = engine.start();
        let ids: Vec<RequestId> = (0..10)
            .map(|k| handle.submit(Request::tiered("hot", vec![Val::Int(2), Val::Int(30 + k)])))
            .collect();
        assert_eq!(handle.submitted(), 10);
        let report = handle.shutdown();
        let results = report.results();
        assert_eq!(results.len(), 10, "every submission completed");
        let vm = Vm::new(engine.module().clone());
        for (i, id) in ids.iter().enumerate() {
            let expected = vm
                .run_plain(
                    vm.module.get("hot").unwrap(),
                    &[Val::Int(2), Val::Int(30 + i as i64)],
                )
                .unwrap();
            assert_eq!(results[id].as_ref().unwrap(), &expected);
        }
        assert_eq!(report.metrics.requests, 10);
    }

    #[test]
    fn events_can_be_consumed_while_the_session_runs() {
        let engine = engine();
        let handle = engine.start();
        let id = handle.submit(Request::tiered("hot", vec![Val::Int(1), Val::Int(20)]));
        // Block on the stream until our completion arrives.
        let mut seen = None;
        while let Some(event) = handle.next_event() {
            if let ResultEvent::Completed { id: got, result } = event {
                seen = Some((got, result));
                break;
            }
        }
        let (got, result) = seen.expect("completion streamed");
        assert_eq!(got, id);
        assert!(result.is_ok());
        let report = handle.shutdown();
        assert!(
            report.results().is_empty(),
            "already-consumed completions are not repeated"
        );
    }

    #[test]
    fn two_sessions_share_one_cache_but_not_request_events() {
        let engine = engine();
        engine.prewarm("hot").unwrap();
        let compiled_once = engine.metrics().compiles;
        let a = engine.start();
        let b = engine.start();
        let mut a_ids = std::collections::HashSet::new();
        let mut b_ids = std::collections::HashSet::new();
        for k in 0..6 {
            a_ids.insert(a.submit(Request::tiered("hot", vec![Val::Int(2), Val::Int(50 + k)])));
            b_ids.insert(b.submit(Request::tiered("hot", vec![Val::Int(3), Val::Int(50 + k)])));
        }
        assert!(
            a_ids.is_disjoint(&b_ids),
            "request ids are engine-global, never reused across sessions"
        );
        let ra = a.shutdown();
        let rb = b.shutdown();
        assert_eq!(ra.results().len(), 6);
        assert_eq!(rb.results().len(), 6);
        // Per-request transition events stay within their own session.
        let foreign = |report: &SessionReport, own: &std::collections::HashSet<RequestId>| {
            report
                .events
                .iter()
                .filter(|e| {
                    matches!(e, ResultEvent::Engine(EngineEvent::Transition { request, .. })
                             if !own.contains(&RequestId(*request)))
                })
                .count()
        };
        assert_eq!(foreign(&ra, &a_ids), 0, "a's stream has only a's requests");
        assert_eq!(foreign(&rb, &b_ids), 0, "b's stream has only b's requests");
        assert_eq!(
            engine.metrics().compiles,
            compiled_once,
            "prewarmed artifacts served both sessions"
        );
    }

    #[test]
    fn expired_deadlines_drop_work_and_stream_the_event() {
        use crate::engine::EngineError;
        use crate::tiers::LadderPolicy;
        let m = minic::compile(
            "fn spin(n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = (s + i * 7) % 65537; }
                 return s;
             }",
        )
        .unwrap();
        let engine = Engine::new(
            m,
            crate::engine::EnginePolicy {
                // Empty ladder + one worker: the long request keeps the
                // worker busy while the doomed request's budget elapses.
                tiers: std::sync::Arc::new(LadderPolicy::new(vec![])),
                compile_workers: 1,
                batch_workers: 1,
                ..crate::engine::EnginePolicy::default()
            },
        );
        let session = engine.start();
        let slow = session.submit(Request::tiered("spin", vec![Val::Int(300_000)]));
        // Zero-µs budget: always expired by the time a worker reaches it.
        let doomed = session.submit(Request::tiered("spin", vec![Val::Int(10)]).with_deadline(0));
        // Effectively-unbounded budget: must still run.
        let patient =
            session.submit(Request::tiered("spin", vec![Val::Int(10)]).with_deadline(u64::MAX));
        let report = session.shutdown();
        assert_eq!(report.expired(), vec![doomed], "the doomed request dropped");
        let results = report.results();
        assert!(results[&slow].is_ok());
        assert!(results[&patient].is_ok(), "a live deadline still executes");
        assert!(!results.contains_key(&doomed), "dropped work has no result");
        assert_eq!(report.metrics.deadline_expired, 1);
        assert_eq!(
            report.metrics.requests, 2,
            "the dropped request never reached run_one"
        );
        assert!(
            report.events.iter().any(|e| matches!(
                e,
                ResultEvent::DeadlineExpired { id, .. } if *id == doomed
            )),
            "the drop is observable on the stream"
        );
        // The compat wrapper surfaces the drop as a per-request error.
        let batch = engine.run_batch(&[
            Request::tiered("spin", vec![Val::Int(300_000)]),
            Request::tiered("spin", vec![Val::Int(10)]).with_deadline(0),
        ]);
        assert!(batch.results[0].is_ok());
        assert!(matches!(
            batch.results[1],
            Err(EngineError::DeadlineExpired)
        ));
    }

    #[test]
    fn zero_budget_deadline_expires_deterministically() {
        // Regression: expiry used to be `waited > deadline`, which made a
        // zero-budget request's fate depend on whether the worker burned
        // a microsecond before pickup.  A zero budget now always expires
        // — even on an idle session whose worker is ready immediately.
        let engine = engine();
        for _ in 0..16 {
            let session = engine.start();
            let doomed = session
                .submit(Request::tiered("hot", vec![Val::Int(1), Val::Int(5)]).with_deadline(0));
            let report = session.shutdown();
            assert_eq!(
                report.expired(),
                vec![doomed],
                "a zero budget expires even with an idle worker"
            );
            assert!(!report.results().contains_key(&doomed));
        }
        assert_eq!(engine.metrics().deadline_expired, 16);
        assert_eq!(engine.metrics().requests, 0, "nothing ever executed");
    }

    #[test]
    fn dropping_a_handle_drains_in_flight_work() {
        let engine = engine();
        let handle = engine.start();
        for k in 0..8 {
            handle.submit(Request::tiered("hot", vec![Val::Int(1), Val::Int(10 + k)]));
        }
        drop(handle); // must not wedge or leak workers
        assert_eq!(engine.metrics().requests, 8, "queued work still ran");
    }
}
