//! Aggregated engine metrics and the engine event stream.
//!
//! Events are appended to a shared [`EventLog`] (drained per batch by the
//! [`crate::Engine::run_batch`] compatibility wrapper) and simultaneously
//! fanned out to any live subscribers — which is how a persistent session
//! ([`crate::EngineHandle`]) streams them to its consumer.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use tinyvm::profile::Tier;
use tinyvm::runtime::OsrEvent;

use crate::assume::InvalidationCounts;
use crate::histogram::{HistogramSnapshot, LogHistogram};

/// Monotonic counters shared by interpreters, compile workers and the
/// session/batch drivers.  All updates are relaxed: the counters are
/// telemetry, not synchronization.
#[derive(Default)]
pub struct EngineMetrics {
    /// Requests executed.
    pub requests: AtomicU64,
    /// Optimizing (tier-up) transitions fired (all rungs).
    pub tier_ups: AtomicU64,
    /// Tier-ups served by a *composed* version-to-version table
    /// (`fopt → fopt'`, e.g. O1→O2) rather than a direct baseline table.
    pub composed_tier_ups: AtomicU64,
    /// Deoptimizing (tier-down) transitions fired.
    pub deopts: AtomicU64,
    /// Deopts fired by a speculation guard (a climbed frame repeatedly
    /// taking a branch path the baseline profile bet against).
    pub guard_failures: AtomicU64,
    /// Deopts fired by a *value* guard (a frame entered a constant-seeded
    /// specialized version whose speculated argument its own arguments
    /// violate; the guard fires at the landing, before any specialized
    /// instruction runs).
    pub value_guard_failures: AtomicU64,
    /// Tier-ups whose destination artifact is a value-specialized
    /// (constant-seeded) version.
    pub value_specialized_tier_ups: AtomicU64,
    /// Tier-ups whose destination artifact has hot call sites spliced
    /// (an inline-speculating version).
    pub inlined_tier_ups: AtomicU64,
    /// Deopts fired by an *inline* guard (a frame in a spliced version
    /// repeatedly taking a branch path the callee's profile bet against —
    /// the cross-function half of the speculation lifecycle).
    pub inline_guard_failures: AtomicU64,
    /// Upward transitions of frames that had previously deopted within
    /// the same request — the re-climb half of the speculation lifecycle.
    pub reclimbs: AtomicU64,
    /// Compiles that needed §5.2 keep-set recompile rounds to unblock
    /// deopt-critical backward entries.
    pub extension_recompiles: AtomicU64,
    /// Transition attempts that were infeasible at the attempted point.
    pub infeasible: AtomicU64,
    /// Requests dropped because their queueing deadline elapsed before a
    /// worker picked them up.
    pub deadline_expired: AtomicU64,
    /// Climb epochs whose threshold the cache hit rate *lowered*
    /// (compiles for that rung are routinely ready — climbing got
    /// cheaper, [`crate::TierPolicy::threshold_with_cache`]).
    pub threshold_lowers: AtomicU64,
    /// Climb epochs whose threshold sustained cache misses *raised*.
    pub threshold_raises: AtomicU64,
    /// Background + synchronous compiles performed.
    pub compiles: AtomicU64,
    /// Total wall-clock nanoseconds spent compiling (incl. precompute).
    pub compile_nanos: AtomicU64,
    /// Compile jobs currently queued or running.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
    /// End-to-end request latency (submit → completion), microseconds.
    /// One wait-free record per completed request.
    pub request_latency: LogHistogram,
    /// Time requests spent waiting for a worker (submit → pickup),
    /// microseconds.  One wait-free record per pickup.
    pub queue_wait: LogHistogram,
    /// Per-job compile latency (incl. precompute), microseconds — the
    /// distribution behind the `compile_nanos` total.
    pub compile_latency: LogHistogram,
    /// Cost of each OSR hop itself (landing-site resolution, compensation
    /// code, frame surgery — [`OsrEvent::nanos`]), nanoseconds.  One
    /// wait-free record per transition, never per loop iteration.
    pub transition_cost: LogHistogram,
}

impl EngineMetrics {
    /// Notes one enqueued compile job.
    pub fn job_enqueued(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(d, Ordering::Relaxed);
    }

    /// Notes one finished compile job.
    pub fn job_finished(&self, nanos: u64) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compile_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.compile_latency.record(nanos / 1_000);
    }

    /// A point-in-time copy of every counter (cache counters — hits,
    /// misses, and the per-kind [`InvalidationCounts`] from the unified
    /// invalidation path — are merged in by the engine, which owns the
    /// cache).
    pub fn snapshot(
        &self,
        cache_hits: u64,
        cache_misses: u64,
        invalidations: InvalidationCounts,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            tier_ups: self.tier_ups.load(Ordering::Relaxed),
            composed_tier_ups: self.composed_tier_ups.load(Ordering::Relaxed),
            deopts: self.deopts.load(Ordering::Relaxed),
            guard_failures: self.guard_failures.load(Ordering::Relaxed),
            value_guard_failures: self.value_guard_failures.load(Ordering::Relaxed),
            value_specialized_tier_ups: self.value_specialized_tier_ups.load(Ordering::Relaxed),
            inlined_tier_ups: self.inlined_tier_ups.load(Ordering::Relaxed),
            inline_guard_failures: self.inline_guard_failures.load(Ordering::Relaxed),
            composed_invalidations: invalidations.composed,
            inline_invalidations: invalidations.inline,
            value_invalidations: invalidations.value,
            assumption_invalidations: invalidations.total(),
            reclimbs: self.reclimbs.load(Ordering::Relaxed),
            extension_recompiles: self.extension_recompiles.load(Ordering::Relaxed),
            infeasible: self.infeasible.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            threshold_lowers: self.threshold_lowers.load(Ordering::Relaxed),
            threshold_raises: self.threshold_raises.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            compile_nanos: self.compile_nanos.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            request_latency: self.request_latency.snapshot(),
            queue_wait: self.queue_wait.snapshot(),
            compile_latency: self.compile_latency.snapshot(),
            transition_cost: self.transition_cost.snapshot(),
        }
    }
}

/// A point-in-time view of [`EngineMetrics`] plus cache counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests executed.
    pub requests: u64,
    /// Tier-up transitions fired (all rungs).
    pub tier_ups: u64,
    /// Tier-ups served by composed version-to-version tables (e.g. O1→O2).
    pub composed_tier_ups: u64,
    /// Tier-down transitions fired.
    pub deopts: u64,
    /// Deopts fired by a speculation guard.
    pub guard_failures: u64,
    /// Deopts fired by a value guard (a violating frame escaping a
    /// constant-seeded specialized version at its landing).
    pub value_guard_failures: u64,
    /// Tier-ups into value-specialized (constant-seeded) artifacts.
    pub value_specialized_tier_ups: u64,
    /// Tier-ups into inline-speculating (call-site-spliced) artifacts.
    pub inlined_tier_ups: u64,
    /// Deopts fired by an inline guard (a spliced frame contradicting the
    /// callee's profiled branch bias).
    pub inline_guard_failures: u64,
    /// Composed tables dropped by [`crate::Entity::Rung`] invalidations
    /// (rung republications; merged in from the code cache).
    pub composed_invalidations: u64,
    /// Inlined artifacts evicted because their callee was republished
    /// ([`crate::Entity::Callee`] invalidations; merged in from the code
    /// cache, which owns the epoch counter).
    pub inline_invalidations: u64,
    /// Value-specialized artifacts evicted by stability dissolution
    /// ([`crate::Entity::ValueStability`] invalidations; merged in from
    /// the code cache).
    pub value_invalidations: u64,
    /// The aggregate of the unified invalidation path: the per-kind
    /// counters above sum to this (the bench gate checks the identity).
    pub assumption_invalidations: u64,
    /// Upward transitions of frames that had previously deopted within
    /// the same request.
    pub reclimbs: u64,
    /// Compiles that needed §5.2 keep-set recompile rounds.
    pub extension_recompiles: u64,
    /// Infeasible transition attempts.
    pub infeasible: u64,
    /// Requests dropped on an expired queueing deadline.
    pub deadline_expired: u64,
    /// Climb epochs whose threshold the cache hit rate lowered.
    pub threshold_lowers: u64,
    /// Climb epochs whose threshold sustained cache misses raised.
    pub threshold_raises: u64,
    /// Compiles performed.
    pub compiles: u64,
    /// Total compile latency in nanoseconds.
    pub compile_nanos: u64,
    /// Compile jobs queued or running at snapshot time.
    pub queue_depth: u64,
    /// High-water mark of the compile queue.
    pub queue_peak: u64,
    /// Request-level cache hits.
    pub cache_hits: u64,
    /// Request-level cache misses.
    pub cache_misses: u64,
    /// End-to-end request latency distribution, microseconds.
    pub request_latency: HistogramSnapshot,
    /// Queue-wait (submit → pickup) distribution, microseconds.
    pub queue_wait: HistogramSnapshot,
    /// Per-job compile latency distribution, microseconds.
    pub compile_latency: HistogramSnapshot,
    /// Per-hop transition cost distribution, nanoseconds.
    pub transition_cost: HistogramSnapshot,
}

impl MetricsSnapshot {
    /// Mean compile latency in microseconds (0 when nothing compiled).
    pub fn mean_compile_micros(&self) -> u64 {
        self.compile_nanos.checked_div(self.compiles).unwrap_or(0) / 1_000
    }

    /// Every scalar the snapshot carries, as `(name, value)` pairs:
    /// the counters, then each histogram's count/p50/p90/p99/max.
    ///
    /// This is the one place that enumerates the snapshot — the perf-gate
    /// JSON writer serializes it and the completeness test pins it, so a
    /// counter added to the struct without being listed here fails a test
    /// instead of silently vanishing from both.
    pub fn fields(&self) -> Vec<(String, u64)> {
        // Destructured without `..` so adding a snapshot field refuses to
        // compile until this list (and its consumers) see it.
        let MetricsSnapshot {
            requests,
            tier_ups,
            composed_tier_ups,
            deopts,
            guard_failures,
            value_guard_failures,
            value_specialized_tier_ups,
            inlined_tier_ups,
            inline_guard_failures,
            composed_invalidations,
            inline_invalidations,
            value_invalidations,
            assumption_invalidations,
            reclimbs,
            extension_recompiles,
            infeasible,
            deadline_expired,
            threshold_lowers,
            threshold_raises,
            compiles,
            compile_nanos,
            queue_depth,
            queue_peak,
            cache_hits,
            cache_misses,
            request_latency,
            queue_wait,
            compile_latency,
            transition_cost,
        } = self;
        let mut out: Vec<(String, u64)> = [
            ("requests", *requests),
            ("tier_ups", *tier_ups),
            ("composed_tier_ups", *composed_tier_ups),
            ("deopts", *deopts),
            ("guard_failures", *guard_failures),
            ("value_guard_failures", *value_guard_failures),
            ("value_specialized_tier_ups", *value_specialized_tier_ups),
            ("inlined_tier_ups", *inlined_tier_ups),
            ("inline_guard_failures", *inline_guard_failures),
            ("composed_invalidations", *composed_invalidations),
            ("inline_invalidations", *inline_invalidations),
            ("value_invalidations", *value_invalidations),
            ("assumption_invalidations", *assumption_invalidations),
            ("reclimbs", *reclimbs),
            ("extension_recompiles", *extension_recompiles),
            ("infeasible", *infeasible),
            ("deadline_expired", *deadline_expired),
            ("threshold_lowers", *threshold_lowers),
            ("threshold_raises", *threshold_raises),
            ("compiles", *compiles),
            ("compile_nanos", *compile_nanos),
            ("queue_depth", *queue_depth),
            ("queue_peak", *queue_peak),
            ("cache_hits", *cache_hits),
            ("cache_misses", *cache_misses),
        ]
        .into_iter()
        .map(|(name, value)| (name.to_string(), value))
        .collect();
        for (prefix, h) in [
            ("request_latency_micros", request_latency),
            ("queue_wait_micros", queue_wait),
            ("compile_latency_micros", compile_latency),
            ("transition_cost_nanos", transition_cost),
        ] {
            for (suffix, value) in [
                ("count", h.count),
                ("p50", h.p50),
                ("p90", h.p90),
                ("p99", h.p99),
                ("max", h.max),
            ] {
                out.push((format!("{prefix}.{suffix}"), value));
            }
        }
        out
    }

    /// The snapshot's latency histograms, as `(name, snapshot)` pairs —
    /// names match the [`MetricsSnapshot::fields`] prefixes and the
    /// `BENCH_engine.json` keys.
    pub fn histograms(&self) -> [(&'static str, &HistogramSnapshot); 4] {
        [
            ("request_latency_micros", &self.request_latency),
            ("queue_wait_micros", &self.queue_wait),
            ("compile_latency_micros", &self.compile_latency),
            ("transition_cost_nanos", &self.transition_cost),
        ]
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} (expired={}) tier_ups={} (composed={}, specialized={}, inlined={}, \
             reclimbs={}) deopts={} (guard={}, value_guard={}, inline_guard={}) infeasible={} \
             compiles={} (ext={}) \
             mean_compile={}us thresholds(lowered={}, raised={}) \
             queue(depth={}, peak={}) cache(hits={}, misses={}) \
             invalidated(composed={}, inline={}, value={}, total={}) \
             latency_us(p50={}, p99={}) queue_wait_us(p50={}, p99={}) \
             compile_us(p50={}, p99={}) hop_ns(p50={}, p99={})",
            self.requests,
            self.deadline_expired,
            self.tier_ups,
            self.composed_tier_ups,
            self.value_specialized_tier_ups,
            self.inlined_tier_ups,
            self.reclimbs,
            self.deopts,
            self.guard_failures,
            self.value_guard_failures,
            self.inline_guard_failures,
            self.infeasible,
            self.compiles,
            self.extension_recompiles,
            self.mean_compile_micros(),
            self.threshold_lowers,
            self.threshold_raises,
            self.queue_depth,
            self.queue_peak,
            self.cache_hits,
            self.cache_misses,
            self.composed_invalidations,
            self.inline_invalidations,
            self.value_invalidations,
            self.assumption_invalidations,
            self.request_latency.p50,
            self.request_latency.p99,
            self.queue_wait.p50,
            self.queue_wait.p99,
            self.compile_latency.p50,
            self.compile_latency.p99,
            self.transition_cost.p50,
            self.transition_cost.p99,
        )
    }
}

// The guard/deopt taxonomy lives in the assumption system; re-exported
// here so metrics-facing paths (`crate::metrics::DeoptReason`) keep
// reading naturally.
pub use crate::assume::{DeoptReason, ViolatedAssumption};

/// One entry of the engine's event stream.
#[derive(Clone, Debug)]
pub enum EngineEvent {
    /// A transition fired while serving a request.
    Transition {
        /// Id of the request (a [`crate::RequestId`] value; the index for
        /// `run_batch` submissions).
        request: u64,
        /// Function the request executed.
        function: String,
        /// Rung the frame left.
        from_tier: Tier,
        /// Rung the frame entered.
        to_tier: Tier,
        /// Whether the hop was served by a composed version-to-version
        /// table (never re-entering the baseline) rather than a direct
        /// table.
        composed: bool,
        /// Whether the version entered is a value-specialized
        /// (constant-seeded) artifact.
        speculated: bool,
        /// Whether the version entered has hot call sites spliced in (an
        /// inline-speculating artifact).
        inlined: bool,
        /// The underlying VM event (direction distinguishes tier-up from
        /// deopt; [`OsrEvent::callee`] names the callee frame an inline
        /// exit reconstructed).
        event: OsrEvent,
    },
    /// A compile job was published to the code cache.
    Compiled {
        /// Function compiled.
        function: String,
        /// Pipeline spec name.
        pipeline: String,
        /// Compile + precompute latency in microseconds.
        micros: u64,
    },
    /// A composed version-to-version table was built, validated and
    /// memoized in the code cache.
    Composed {
        /// Function the table belongs to.
        function: String,
        /// Source rung's pipeline name.
        from: String,
        /// Destination rung's pipeline name.
        to: String,
        /// Number of OSR points the composed table serves.
        points: usize,
    },
    /// A frame tiered down (emitted alongside the backward
    /// [`EngineEvent::Transition`], with the *why*).
    Deopt {
        /// Id of the deopting request.
        request: u64,
        /// Function the request executed.
        function: String,
        /// Rung the frame fell from.
        from_tier: Tier,
        /// Rung the frame landed on.
        to_tier: Tier,
        /// Why the frame tiered down.
        reason: DeoptReason,
    },
    /// A frame that had deopted earlier in the same request climbed again
    /// (emitted alongside the forward [`EngineEvent::Transition`]).
    Reclimb {
        /// Id of the re-climbing request.
        request: u64,
        /// Function the request executed.
        function: String,
        /// Rung the frame left.
        from_tier: Tier,
        /// Rung the frame re-entered.
        to_tier: Tier,
    },
    /// A compile needed §5.2 keep-set recompile rounds before its
    /// backward table served every deopt-critical (loop-header) entry.
    ExtensionRecompiled {
        /// Function compiled.
        function: String,
        /// Pipeline spec name.
        pipeline: String,
        /// Recompile rounds performed.
        rounds: usize,
        /// Values kept alive through dead-code elimination.
        kept: usize,
    },
    /// A compile (or composed-table build) was rejected by validation.
    CompileRejected {
        /// Function whose artifact was rejected.
        function: String,
        /// Failure description.
        reason: String,
    },
}

impl fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineEvent::Transition {
                request,
                function,
                from_tier,
                to_tier,
                composed,
                speculated,
                inlined,
                event,
            } => write!(
                f,
                "[req {request}] {function}: {from_tier}→{to_tier}{}{}{} {event}",
                if *composed { " (composed)" } else { "" },
                if *speculated { " (specialized)" } else { "" },
                if *inlined { " (inlined)" } else { "" }
            ),
            EngineEvent::Compiled {
                function,
                pipeline,
                micros,
            } => write!(f, "[compile] {function} ({pipeline}) in {micros}us"),
            EngineEvent::Composed {
                function,
                from,
                to,
                points,
            } => write!(
                f,
                "[compose] {function} {from}→{to}: {points} points validated"
            ),
            EngineEvent::Deopt {
                request,
                function,
                from_tier,
                to_tier,
                reason,
            } => write!(
                f,
                "[req {request}] {function}: deopt {from_tier}→{to_tier} ({reason})"
            ),
            EngineEvent::Reclimb {
                request,
                function,
                from_tier,
                to_tier,
            } => write!(
                f,
                "[req {request}] {function}: re-climb {from_tier}→{to_tier}"
            ),
            EngineEvent::ExtensionRecompiled {
                function,
                pipeline,
                rounds,
                kept,
            } => write!(
                f,
                "[compile] {function} ({pipeline}) §5.2 keep-set recompile: \
                 {rounds} round(s), {kept} value(s) kept"
            ),
            EngineEvent::CompileRejected { function, reason } => {
                write!(f, "[compile] {function} REJECTED: {reason}")
            }
        }
    }
}

/// An [`EngineEvent`] stamped with when it happened, in microseconds
/// since the owning [`EventLog`]'s creation (the engine epoch — the same
/// clock [`crate::RequestTrace`] timestamps use, so events and traces
/// line up).
#[derive(Clone, Debug)]
pub struct TimedEngineEvent {
    /// Microseconds since the engine epoch.
    pub micros: u64,
    /// The event.
    pub event: EngineEvent,
}

impl fmt::Display for TimedEngineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[t+{}us] {}", self.micros, self.event)
    }
}

type Subscriber = Box<dyn Fn(&TimedEngineEvent) + Send + Sync>;

/// How many undrained events the log retains.  Sessions stream events and
/// may never drain the log, so the backing store is a bounded ring: once
/// full, the oldest events are discarded (and counted in
/// [`EventLog::dropped`]).  A `run_batch` drains after every batch and
/// stays far below the cap.
pub const EVENT_LOG_CAPACITY: usize = 1 << 16;

/// A shared, bounded event log, drained per batch and fanned out to
/// session subscribers as events arrive.  Every event is stamped against
/// the log's creation instant (the engine epoch).
pub struct EventLog {
    epoch: Instant,
    events: Mutex<std::collections::VecDeque<TimedEngineEvent>>,
    subscribers: Mutex<Vec<(u64, Subscriber)>>,
    next_subscriber: AtomicU64,
    dropped: AtomicU64,
}

impl Default for EventLog {
    fn default() -> Self {
        EventLog {
            epoch: Instant::now(),
            events: Mutex::default(),
            subscribers: Mutex::default(),
            next_subscriber: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }
}

impl EventLog {
    /// Microseconds elapsed since the engine epoch — the monotone clock
    /// every timestamp in the observability layer is measured on.
    pub fn now_micros(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Stamps and appends one event, forwarding a copy to every
    /// subscriber; the oldest undrained event is discarded once the log
    /// holds [`EVENT_LOG_CAPACITY`] entries.
    pub fn push(&self, e: EngineEvent) {
        let timed = TimedEngineEvent {
            micros: self.now_micros(),
            event: e,
        };
        for (_, s) in self.subscribers.lock().expect("subscriber lock").iter() {
            s(&timed);
        }
        let mut events = self.events.lock().expect("event lock");
        if events.len() >= EVENT_LOG_CAPACITY {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(timed);
    }

    /// Takes every event recorded since the last drain (timestamps
    /// stripped; see [`EventLog::drain_timed`]).
    pub fn drain(&self) -> Vec<EngineEvent> {
        self.drain_timed().into_iter().map(|t| t.event).collect()
    }

    /// Takes every timestamped event recorded since the last drain.
    pub fn drain_timed(&self) -> Vec<TimedEngineEvent> {
        std::mem::take(&mut *self.events.lock().expect("event lock")).into()
    }

    /// Events discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Registers a live-event subscriber (called with each event and its
    /// epoch-relative timestamp); returns a token for
    /// [`EventLog::unsubscribe`].
    pub fn subscribe(&self, f: impl Fn(&TimedEngineEvent) + Send + Sync + 'static) -> u64 {
        let id = self.next_subscriber.fetch_add(1, Ordering::Relaxed);
        self.subscribers
            .lock()
            .expect("subscriber lock")
            .push((id, Box::new(f)));
        id
    }

    /// Removes a subscriber registered by [`EventLog::subscribe`].
    pub fn unsubscribe(&self, id: u64) {
        self.subscribers
            .lock()
            .expect("subscriber lock")
            .retain(|(sid, _)| *sid != id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_tracks_peak() {
        let m = EngineMetrics::default();
        m.job_enqueued();
        m.job_enqueued();
        m.job_finished(1_000);
        m.job_enqueued();
        let s = m.snapshot(0, 0, InvalidationCounts::default());
        assert_eq!(s.queue_peak, 2);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.compiles, 1);
    }

    #[test]
    fn snapshot_formats() {
        let m = EngineMetrics::default();
        m.job_enqueued();
        m.job_finished(2_000_000);
        let s = m.snapshot(3, 1, InvalidationCounts::default());
        let text = s.to_string();
        assert!(text.contains("hits=3"));
        assert!(text.contains("mean_compile=2000us"));
        assert!(text.contains("composed=0"));
        assert!(text.contains("latency_us(p50="));
        assert!(text.contains("hop_ns(p50="));
    }

    #[test]
    fn job_finished_feeds_the_compile_histogram() {
        let m = EngineMetrics::default();
        m.job_enqueued();
        m.job_finished(2_000_000);
        m.job_enqueued();
        m.job_finished(4_000_000);
        let s = m.snapshot(0, 0, InvalidationCounts::default());
        assert_eq!(s.compile_latency.count, 2);
        assert!(s.compile_latency.p50 >= 2_000, "micros, not nanos");
        assert!(s.compile_latency.max >= 4_000);
        assert!(s.compile_latency.p50 <= s.compile_latency.p99);
    }

    /// The completeness pin (ISSUE 6 satellite): every snapshot counter —
    /// including everything PRs 3–5 added (`value_guard_failures`,
    /// `threshold_lowers`/`raises`, `deadline_expired`, `reclimbs`,
    /// `extension_recompiles`, …) — must surface in
    /// [`MetricsSnapshot::fields`] *and* in the `Display` output.  The
    /// exhaustive destructuring inside `fields()` already refuses to
    /// compile when a struct field is missing from the list; this test
    /// closes the remaining gap by checking each listed value is visible
    /// in the rendered text.
    #[test]
    fn no_snapshot_field_is_silently_dropped() {
        // Distinct primes per counter so each value is identifiable.
        let m = EngineMetrics::default();
        m.requests.store(2, Ordering::Relaxed);
        m.tier_ups.store(3, Ordering::Relaxed);
        m.composed_tier_ups.store(5, Ordering::Relaxed);
        m.deopts.store(7, Ordering::Relaxed);
        m.guard_failures.store(11, Ordering::Relaxed);
        m.value_guard_failures.store(13, Ordering::Relaxed);
        m.value_specialized_tier_ups.store(17, Ordering::Relaxed);
        m.inlined_tier_ups.store(71, Ordering::Relaxed);
        m.inline_guard_failures.store(73, Ordering::Relaxed);
        m.reclimbs.store(19, Ordering::Relaxed);
        m.extension_recompiles.store(23, Ordering::Relaxed);
        m.infeasible.store(29, Ordering::Relaxed);
        m.deadline_expired.store(31, Ordering::Relaxed);
        m.threshold_lowers.store(37, Ordering::Relaxed);
        m.threshold_raises.store(41, Ordering::Relaxed);
        m.compiles.store(43, Ordering::Relaxed);
        m.compile_nanos.store(47_000 * 43, Ordering::Relaxed);
        m.queue_depth.store(53, Ordering::Relaxed);
        m.queue_peak.store(59, Ordering::Relaxed);
        let s = m.snapshot(
            61,
            67,
            InvalidationCounts {
                composed: 79,
                inline: 83,
                value: 89,
            },
        );
        assert_eq!(
            s.assumption_invalidations,
            s.composed_invalidations + s.inline_invalidations + s.value_invalidations,
            "per-kind counters sum to the aggregate"
        );

        let fields = s.fields();
        let scalar_count = 25;
        let histogram_count = 4 * 5;
        assert_eq!(
            fields.len(),
            scalar_count + histogram_count,
            "fields() must enumerate every snapshot scalar"
        );
        for name in [
            "value_guard_failures",
            "threshold_lowers",
            "threshold_raises",
            "deadline_expired",
            "reclimbs",
            "extension_recompiles",
            "inlined_tier_ups",
            "inline_guard_failures",
            "composed_invalidations",
            "inline_invalidations",
            "value_invalidations",
            "assumption_invalidations",
            "request_latency_micros.p99",
            "queue_wait_micros.p50",
            "compile_latency_micros.count",
            "transition_cost_nanos.max",
        ] {
            assert!(
                fields.iter().any(|(n, _)| n == name),
                "{name} missing from fields()"
            );
        }

        // Every *distinct* counter value must appear in the Display text —
        // a field dropped from the format string fails here.
        let text = s.to_string();
        for (name, value) in fields.iter().filter(|(n, _)| !n.contains('.')) {
            if *name == "compile_nanos" {
                // Rendered as mean_compile micros instead.
                assert!(
                    text.contains(&format!("mean_compile={}us", s.mean_compile_micros())),
                    "compile_nanos not rendered as a mean"
                );
                continue;
            }
            assert!(
                text.contains(&value.to_string()),
                "{name}={value} missing from Display: {text}"
            );
        }
    }

    #[test]
    fn events_are_stamped_monotonically_against_the_epoch() {
        let log = EventLog::default();
        for i in 0..3u64 {
            log.push(EngineEvent::Compiled {
                function: "f".into(),
                pipeline: "O1".into(),
                micros: i,
            });
        }
        let timed = log.drain_timed();
        assert_eq!(timed.len(), 3);
        for pair in timed.windows(2) {
            assert!(pair[0].micros <= pair[1].micros, "stamps are monotone");
        }
        assert!(log.now_micros() >= timed[2].micros);
        assert!(timed[0].to_string().starts_with("[t+"));
    }

    #[test]
    fn event_log_is_bounded() {
        let log = EventLog::default();
        for i in 0..(EVENT_LOG_CAPACITY as u64 + 10) {
            log.push(EngineEvent::Compiled {
                function: "f".into(),
                pipeline: "O1".into(),
                micros: i,
            });
        }
        assert_eq!(log.dropped(), 10, "oldest events discarded at capacity");
        let drained = log.drain();
        assert_eq!(drained.len(), EVENT_LOG_CAPACITY);
        assert!(
            matches!(drained[0], EngineEvent::Compiled { micros: 10, .. }),
            "ring dropped from the front"
        );
    }

    #[test]
    fn subscribers_receive_pushes_until_unsubscribed() {
        use std::sync::mpsc::channel;
        let log = EventLog::default();
        let (tx, rx) = channel();
        let id = log.subscribe(move |e| {
            let _ = tx.send(e.event.to_string());
        });
        log.push(EngineEvent::Compiled {
            function: "f".into(),
            pipeline: "O2".into(),
            micros: 7,
        });
        assert!(rx.recv().unwrap().contains("(O2)"));
        log.unsubscribe(id);
        log.push(EngineEvent::CompileRejected {
            function: "f".into(),
            reason: "nope".into(),
        });
        assert!(rx.try_recv().is_err(), "unsubscribed");
        assert_eq!(log.drain().len(), 2, "log keeps everything");
    }
}
