//! Aggregated engine metrics and the per-batch event stream.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use tinyvm::runtime::OsrEvent;

/// Monotonic counters shared by interpreters, compile workers and the
/// batch driver.  All updates are relaxed: the counters are telemetry,
/// not synchronization.
#[derive(Default)]
pub struct EngineMetrics {
    /// Requests executed.
    pub requests: AtomicU64,
    /// Optimizing (tier-up) transitions fired.
    pub tier_ups: AtomicU64,
    /// Deoptimizing (tier-down) transitions fired.
    pub deopts: AtomicU64,
    /// Transition attempts that were infeasible at the attempted point.
    pub infeasible: AtomicU64,
    /// Background + synchronous compiles performed.
    pub compiles: AtomicU64,
    /// Total wall-clock nanoseconds spent compiling (incl. precompute).
    pub compile_nanos: AtomicU64,
    /// Compile jobs currently queued or running.
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub queue_peak: AtomicU64,
}

impl EngineMetrics {
    /// Notes one enqueued compile job.
    pub fn job_enqueued(&self) {
        let d = self.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.queue_peak.fetch_max(d, Ordering::Relaxed);
    }

    /// Notes one finished compile job.
    pub fn job_finished(&self, nanos: u64) {
        self.queue_depth.fetch_sub(1, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        self.compile_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// A point-in-time copy of every counter (cache counters are merged in
    /// by the engine, which owns the cache).
    pub fn snapshot(&self, cache_hits: u64, cache_misses: u64) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            tier_ups: self.tier_ups.load(Ordering::Relaxed),
            deopts: self.deopts.load(Ordering::Relaxed),
            infeasible: self.infeasible.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            compile_nanos: self.compile_nanos.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            queue_peak: self.queue_peak.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
        }
    }
}

/// A point-in-time view of [`EngineMetrics`] plus cache counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Requests executed.
    pub requests: u64,
    /// Tier-up transitions fired.
    pub tier_ups: u64,
    /// Tier-down transitions fired.
    pub deopts: u64,
    /// Infeasible transition attempts.
    pub infeasible: u64,
    /// Compiles performed.
    pub compiles: u64,
    /// Total compile latency in nanoseconds.
    pub compile_nanos: u64,
    /// Compile jobs queued or running at snapshot time.
    pub queue_depth: u64,
    /// High-water mark of the compile queue.
    pub queue_peak: u64,
    /// Request-level cache hits.
    pub cache_hits: u64,
    /// Request-level cache misses.
    pub cache_misses: u64,
}

impl MetricsSnapshot {
    /// Mean compile latency in microseconds (0 when nothing compiled).
    pub fn mean_compile_micros(&self) -> u64 {
        self.compile_nanos.checked_div(self.compiles).unwrap_or(0) / 1_000
    }
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} tier_ups={} deopts={} infeasible={} compiles={} \
             mean_compile={}us queue(depth={}, peak={}) cache(hits={}, misses={})",
            self.requests,
            self.tier_ups,
            self.deopts,
            self.infeasible,
            self.compiles,
            self.mean_compile_micros(),
            self.queue_depth,
            self.queue_peak,
            self.cache_hits,
            self.cache_misses,
        )
    }
}

/// One entry of the engine's event stream.
#[derive(Clone, Debug)]
pub enum EngineEvent {
    /// A transition fired while serving a request.
    Transition {
        /// Index of the request in its batch.
        request: usize,
        /// Function the request executed.
        function: String,
        /// The underlying VM event (direction distinguishes tier-up from
        /// deopt).
        event: OsrEvent,
    },
    /// A compile job was published to the code cache.
    Compiled {
        /// Function compiled.
        function: String,
        /// Pipeline name.
        pipeline: &'static str,
        /// Compile + precompute latency in microseconds.
        micros: u64,
    },
    /// A compile was rejected by entry-table validation.
    CompileRejected {
        /// Function whose artifact was rejected.
        function: String,
        /// Failure description.
        reason: String,
    },
}

impl fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineEvent::Transition {
                request,
                function,
                event,
            } => write!(f, "[req {request}] {function}: {event}"),
            EngineEvent::Compiled {
                function,
                pipeline,
                micros,
            } => write!(f, "[compile] {function} ({pipeline}) in {micros}us"),
            EngineEvent::CompileRejected { function, reason } => {
                write!(f, "[compile] {function} REJECTED: {reason}")
            }
        }
    }
}

/// A shared, append-only event log drained per batch.
#[derive(Default)]
pub struct EventLog {
    events: Mutex<Vec<EngineEvent>>,
}

impl EventLog {
    /// Appends one event.
    pub fn push(&self, e: EngineEvent) {
        self.events.lock().expect("event lock").push(e);
    }

    /// Takes every event recorded since the last drain.
    pub fn drain(&self) -> Vec<EngineEvent> {
        std::mem::take(&mut *self.events.lock().expect("event lock"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_depth_tracks_peak() {
        let m = EngineMetrics::default();
        m.job_enqueued();
        m.job_enqueued();
        m.job_finished(1_000);
        m.job_enqueued();
        let s = m.snapshot(0, 0);
        assert_eq!(s.queue_peak, 2);
        assert_eq!(s.queue_depth, 2);
        assert_eq!(s.compiles, 1);
    }

    #[test]
    fn snapshot_formats() {
        let m = EngineMetrics::default();
        m.job_enqueued();
        m.job_finished(2_000_000);
        let s = m.snapshot(3, 1);
        let text = s.to_string();
        assert!(text.contains("hits=3"));
        assert!(text.contains("mean_compile=2000us"));
    }
}
