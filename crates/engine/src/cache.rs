//! The shared code cache: compiled function versions with precomputed,
//! validated OSR entry tables, keyed by `(function, pass pipeline)`.
//!
//! The cache is the rendezvous point between interpreters and the
//! background compiler pool: interpreters probe it on every hot visit,
//! compile workers publish into it, and both tier-up and tier-down
//! transitions are served from the precomputed tables it stores (so a
//! transition at run time is a table lookup, never a reconstruction).

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ssair::feasibility::{precompute_entries, EntryTable};
use ssair::passes::Pipeline;
use ssair::reconstruct::{CompStep, Direction, Variant};
use ssair::{Function, ValueDef, ValueId};
use tinyvm::FunctionVersions;

/// Which optimization pipeline a cached artifact was produced by.
///
/// Identified by name so the key stays hashable; workers materialize the
/// actual [`Pipeline`] (which holds trait objects) on their own thread.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PipelineSpec {
    /// The §5.4 standard pass mix.
    Standard,
}

impl PipelineSpec {
    /// Builds the pipeline this spec names.
    pub fn build(self) -> Pipeline {
        match self {
            PipelineSpec::Standard => Pipeline::standard(),
        }
    }

    /// Stable display name (used in metrics and cache keys).
    pub fn name(self) -> &'static str {
        match self {
            PipelineSpec::Standard => "standard",
        }
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Cache key: one function under one pipeline.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    /// Function name in the engine's module.
    pub function: String,
    /// Pipeline the artifact was (or will be) produced by.
    pub pipeline: PipelineSpec,
}

impl CacheKey {
    /// Key for `function` under the standard pipeline.
    pub fn standard(function: impl Into<String>) -> Self {
        CacheKey {
            function: function.into(),
            pipeline: PipelineSpec::Standard,
        }
    }
}

/// A compiled artifact: the version pair plus both precomputed OSR entry
/// tables and compile-time metadata.
pub struct CompiledVersion {
    /// Baseline/optimized pair with the recorded action mapper.
    pub versions: Arc<FunctionVersions>,
    /// Forward (tier-up) entries: baseline point → compensation.
    pub tier_up: Arc<EntryTable>,
    /// Backward (tier-down / deopt) entries: optimized point → compensation.
    pub tier_down: Arc<EntryTable>,
    /// Wall-clock compile + precompute latency.
    pub compile_nanos: u64,
}

/// Why a compiled version was rejected from the cache.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// A precomputed entry table failed its structural validation.
    InvalidTable {
        /// Which direction's table failed.
        direction: Direction,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidTable { direction, reason } => {
                write!(f, "invalid {direction:?} entry table: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Compiles `base` under `spec`: optimizes, precomputes both OSR entry
/// tables, and validates them structurally (see [`validate_table`]).
///
/// # Errors
///
/// Returns [`CompileError`] if a precomputed table fails validation — the
/// artifact must then stay out of the cache.
pub fn compile_function(
    base: Function,
    spec: PipelineSpec,
    variant: Variant,
) -> Result<CompiledVersion, CompileError> {
    let t0 = Instant::now();
    let versions = FunctionVersions::new(base, &spec.build());
    let pair = versions.pair();
    let tier_up = precompute_entries(&pair, Direction::Forward, variant);
    let tier_down = precompute_entries(&pair, Direction::Backward, variant);
    validate_table(&tier_up, &versions.base, &versions.opt)?;
    validate_table(&tier_down, &versions.opt, &versions.base)?;
    drop(pair);
    Ok(CompiledVersion {
        versions: Arc::new(versions),
        tier_up: Arc::new(tier_up),
        tier_down: Arc::new(tier_down),
        compile_nanos: t0.elapsed().as_nanos() as u64,
    })
}

/// Structural validation of a precomputed entry table: every step of every
/// entry must be executable against *some* source frame — transfers read
/// values the source version defines, copies and emits only consume values
/// produced by earlier steps, and each landing location is live in the
/// target version.  (Semantic correctness is Algorithm 1's theorem; this
/// check catches table corruption before the artifact is shared.)
pub fn validate_table(
    table: &EntryTable,
    src_fn: &Function,
    dst_fn: &Function,
) -> Result<(), CompileError> {
    let fail = |reason: String| {
        Err(CompileError::InvalidTable {
            direction: table.direction,
            reason,
        })
    };
    for (at, (landing, entry)) in &table.entries {
        if !dst_fn.inst_is_live(landing.loc) {
            return fail(format!(
                "landing {} for {at} not live in target",
                landing.loc
            ));
        }
        let mut produced: std::collections::BTreeSet<ValueId> = Default::default();
        for step in &entry.comp.steps {
            match step {
                CompStep::Transfer { src, dst } => {
                    if (src.0 as usize) >= src_fn.value_count() {
                        return fail(format!("transfer of {src} undefined in source"));
                    }
                    if let ValueDef::Inst(i) = src_fn.value_def(*src) {
                        if !src_fn.inst_is_live(i) {
                            return fail(format!("transfer of dead source value {src}"));
                        }
                    }
                    produced.insert(*dst);
                }
                CompStep::CopyDst { from, to } => {
                    if !produced.contains(from) {
                        return fail(format!("copy of unproduced value {from} at {at}"));
                    }
                    produced.insert(*to);
                }
                CompStep::Emit { inst } | CompStep::Materialize { inst } => {
                    let data = dst_fn.inst(*inst);
                    for op in data.kind.operands() {
                        // Loads may read memory cells; pure operands must
                        // have been produced by earlier steps.
                        if !produced.contains(&op)
                            && !matches!(data.kind, ssair::InstKind::Load { .. })
                        {
                            return fail(format!("emit at {at} reads unproduced {op}"));
                        }
                    }
                    if let Some(r) = data.result {
                        produced.insert(r);
                    }
                }
            }
        }
    }
    Ok(())
}

/// State of one cache slot.
enum Slot {
    /// A compile job has been claimed/enqueued but not yet published.
    Compiling,
    /// Ready to serve transitions.
    Ready(Arc<CompiledVersion>),
}

/// The concurrent code cache.
///
/// Lookups are counted once per *request* by the engine (not once per
/// probe), so hit/miss counters reflect request-level cache behaviour.
#[derive(Default)]
pub struct CodeCache {
    slots: Mutex<HashMap<CacheKey, Slot>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl CodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        CodeCache::default()
    }

    /// Returns the ready artifact for `key`, if published.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompiledVersion>> {
        match self.slots.lock().expect("cache lock").get(key) {
            Some(Slot::Ready(cv)) => Some(Arc::clone(cv)),
            _ => None,
        }
    }

    /// Records a request-level hit.
    pub fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request-level miss.
    pub fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Atomically claims the right to compile `key`.  Returns `true` when
    /// the caller must enqueue (or perform) the compile; `false` when the
    /// artifact is ready or someone else already claimed it.
    pub fn claim(&self, key: &CacheKey) -> bool {
        let mut slots = self.slots.lock().expect("cache lock");
        if slots.contains_key(key) {
            return false;
        }
        slots.insert(key.clone(), Slot::Compiling);
        true
    }

    /// Publishes a compiled artifact (fulfilling a prior [`CodeCache::claim`]).
    pub fn publish(&self, key: &CacheKey, cv: Arc<CompiledVersion>) {
        self.slots
            .lock()
            .expect("cache lock")
            .insert(key.clone(), Slot::Ready(cv));
    }

    /// Drops a claim without publishing (compile failed validation).
    pub fn abandon(&self, key: &CacheKey) {
        let mut slots = self.slots.lock().expect("cache lock");
        if let Some(Slot::Compiling) = slots.get(key) {
            slots.remove(key);
        }
    }

    /// Number of ready artifacts.
    pub fn ready_count(&self) -> usize {
        self.slots
            .lock()
            .expect("cache lock")
            .values()
            .filter(|s| matches!(s, Slot::Ready(_)))
            .count()
    }

    /// Request-level (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled() -> CompiledVersion {
        let m = minic::compile(
            "fn f(x, n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + x * x + i; }
                 return s;
             }",
        )
        .unwrap();
        compile_function(
            m.get("f").unwrap().clone(),
            PipelineSpec::Standard,
            Variant::Avail,
        )
        .expect("compiles and validates")
    }

    #[test]
    fn compile_precomputes_both_tables() {
        let cv = compiled();
        assert!(cv.tier_up.coverage() > 0.8, "forward mostly feasible");
        assert!(cv.tier_down.coverage() > 0.8, "backward mostly feasible");
        assert!(cv.compile_nanos > 0);
    }

    #[test]
    fn cache_claim_publish_lookup() {
        let cache = CodeCache::new();
        let key = CacheKey::standard("f");
        assert!(cache.get(&key).is_none());
        assert!(cache.claim(&key), "first claim wins");
        assert!(!cache.claim(&key), "second claim loses");
        assert!(cache.get(&key).is_none(), "not ready while compiling");
        cache.publish(&key, Arc::new(compiled()));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.ready_count(), 1);
    }

    #[test]
    fn abandon_releases_claim() {
        let cache = CodeCache::new();
        let key = CacheKey::standard("g");
        assert!(cache.claim(&key));
        cache.abandon(&key);
        assert!(cache.claim(&key), "claim available again");
    }
}
