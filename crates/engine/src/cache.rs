//! The shared code cache: per-tier compiled function versions with
//! precomputed, validated OSR entry tables, keyed by the unified
//! [`VersionKey`] (`function` + `pipeline` + assumption set — see
//! [`crate::assume`]), plus lazily-built composed version-to-version
//! tables and the dependency registry every invalidation flows through.
//!
//! The cache is the rendezvous point between interpreters and the
//! background compiler pool: interpreters probe it on every hot visit,
//! compile workers publish into it, and every transition — tier-up,
//! tier-down, and composed `fopt → fopt'` hops — is served from the
//! precomputed tables it stores (a transition at run time is a table
//! lookup, never a reconstruction).
//!
//! The slot map is sharded by key hash (8 `Mutex`-guarded shards) so that
//! hot-path probes from many request workers do not serialize on one lock.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use ssair::feasibility::{
    compose_entries_chain, compose_table_pair, extension_candidates, precompute_entries,
    precompute_entries_collecting, EntryTable,
};
use ssair::interp::{run_frame, run_function, Frame, Machine, StepOutcome, Val};
use ssair::passes::{BlockFrequencies, LayoutBlocks, PassId, Pipeline};
use ssair::reconstruct::{apply_comp, CompStep, Direction, Variant};
use ssair::{Function, InstId, Module, ValueDef, ValueId};
use tinyvm::profile::loop_header_points;
use tinyvm::FunctionVersions;

/// Which optimization pipeline a cached artifact was produced by — one
/// rung of the engine's tier ladder.
///
/// Identified by name/pass-list (hashable) rather than by a built
/// [`Pipeline`] (which holds trait objects); workers materialize the
/// actual pipeline on their own thread via [`PipelineSpec::build`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum PipelineSpec {
    /// Light CSE + DCE-style mix (`ssair::passes::Pipeline::light`): cheap
    /// to run, cheap to OSR out of — the first optimized rung.
    O1,
    /// The §5.4 standard mix including LICM hoisting
    /// (`ssair::passes::Pipeline::standard`).
    O2,
    /// The aggressive mix (`ssair::passes::Pipeline::aggressive`): the
    /// standard passes plus a second SCCP + sinking round — the top rung
    /// of the default transition graph, hardest to OSR out of.
    O3,
    /// The machine rung: the same aggressive mix as
    /// [`PipelineSpec::O3`], but *executed on the register-allocated
    /// machine substrate* — the optimized SSA is lowered to linear
    /// micro-IR ([`ssair::machine`]), colored onto a fixed register
    /// file, and dispatched without per-value hashing.  All OSR entry
    /// tables are the SSA tables unchanged; the artifact's location
    /// maps bridge registers and SSA values at every lowered point.
    O4,
    /// A named custom pass list (see [`PipelineSpec::custom`]).
    Custom {
        /// Stable display name (used in metrics and cache keys).
        name: String,
        /// The passes to run, in order.
        passes: Vec<PassId>,
    },
}

impl PipelineSpec {
    /// A named custom-pass-list spec.
    pub fn custom(name: impl Into<String>, passes: Vec<PassId>) -> Self {
        PipelineSpec::Custom {
            name: name.into(),
            passes,
        }
    }

    /// Builds the pipeline this spec names.
    pub fn build(&self) -> Pipeline {
        self.build_keeping(&Default::default())
    }

    /// Builds the pipeline with a §5.2 liveness-extension keep-set: the
    /// listed values survive dead-code elimination and sinking, which is
    /// how a blocked deoptimization entry gets its needed state back at
    /// the cost of keeping a few extra values live.
    pub fn build_keeping(&self, keep: &std::collections::BTreeSet<ValueId>) -> Pipeline {
        match self {
            PipelineSpec::O1 => Pipeline::light_keeping(keep),
            PipelineSpec::O2 => Pipeline::standard_keeping(keep.clone()),
            PipelineSpec::O3 | PipelineSpec::O4 => Pipeline::aggressive_keeping(keep),
            PipelineSpec::Custom { passes, .. } => Pipeline::from_ids_keeping(passes, keep),
        }
    }

    /// Stable display name (used in metrics and event streams).
    pub fn name(&self) -> &str {
        match self {
            PipelineSpec::O1 => "O1",
            PipelineSpec::O2 => "O2",
            PipelineSpec::O3 => "O3",
            PipelineSpec::O4 => "O4",
            PipelineSpec::Custom { name, .. } => name,
        }
    }
}

impl fmt::Display for PipelineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

pub use crate::assume::{
    pipeline_label, Assumption, AssumptionKind, AssumptionSet, Entity, InlineSpec,
    InvalidationCounts, Speculation, VersionKey,
};

/// The legacy name for [`VersionKey`] — kept as a thin alias so
/// cache-facing call sites read naturally.  The key shape itself (and
/// the `Speculation`/`InlineSpec` views re-exported above) lives in
/// [`crate::assume`]; nothing outside that module defines a key.
pub type CacheKey = VersionKey;

/// A compiled artifact: the `(baseline, optimized)` version pair for one
/// ladder rung plus both precomputed OSR entry tables and compile-time
/// metadata.
pub struct CompiledVersion {
    /// The spec this artifact was produced by.
    pub spec: PipelineSpec,
    /// The value speculation this artifact is specialized on — its entry
    /// guard.  Empty for generic artifacts.
    pub speculation: Speculation,
    /// The instrumented (loop-header) OSR points of the optimized
    /// version, precomputed so the engine's value-guard vetting never
    /// recomputes loop info on a hot path.
    pub header_points: Vec<InstId>,
    /// Baseline/optimized pair with the recorded action mapper.
    pub versions: Arc<FunctionVersions>,
    /// The optimized version, shared so ladder hops can continue executing
    /// it (`versions.opt` under an `Arc`).
    pub opt: Arc<Function>,
    /// The baseline version, shared so a guard-driven tier-down can hop a
    /// live frame back into it (`versions.base` under an `Arc`).
    pub base: Arc<Function>,
    /// Forward (tier-up) entries: baseline point → compensation.
    pub tier_up: Arc<EntryTable>,
    /// Backward (tier-down / deopt) entries: optimized point → compensation.
    pub tier_down: Arc<EntryTable>,
    /// §5.2 liveness-extension keep-set size: values kept alive through
    /// dead-code elimination so blocked deopt entries become feasible
    /// (`0` when the plain pipeline sufficed).
    pub keep: usize,
    /// Keep-set recompile rounds performed (`0` when the plain pipeline's
    /// backward table already served every loop-header entry).
    pub extension_rounds: usize,
    /// Wall-clock compile + precompute latency.
    pub compile_nanos: u64,
    /// Digest of the [`BlockFrequencies`] snapshot that shaped this
    /// artifact's block layout — `(branch block, hot successor)` pairs,
    /// sorted.  Empty when no layout ran (no profile yet, layout
    /// disabled, or a rung below O3).  A republish under a shifted
    /// profile produces a different digest, which is how layout-stale
    /// artifacts are told apart from fresh ones.
    pub layout_digest: Vec<(ssair::BlockId, ssair::BlockId)>,
    /// The register-allocated machine artifact backing `opt` when this
    /// rung executes on the machine substrate ([`PipelineSpec::O4`]);
    /// `None` for SSA-interpreted rungs.  The artifact's shadow roots
    /// are the backward table's transfer sources plus the keep set, so
    /// a deopt out of registers can always rebuild the SSA environment
    /// the validated tables read.
    pub machine: Option<Arc<ssair::machine::MachineArtifact>>,
    /// The inlining assumption this artifact was spliced under (part of
    /// its cache-key identity; empty for call-preserving artifacts).
    pub inline_spec: InlineSpec,
    /// The cross-function deopt plan when any site was actually spliced:
    /// everything a runtime needs to exit an inlined region into a
    /// reconstructed callee frame.  `None` when `inline_spec` is empty
    /// *or* every requested site declined to splice.
    pub inline: Option<Arc<InlinePlan>>,
}

/// The cross-function deopt plan of an inlined artifact.
///
/// A guard deopt at an optimized pc inside a spliced region cannot use the
/// ordinary backward table: the caller baseline has no pc for the middle
/// of a callee that, in baseline terms, is still a single `Call`.  The
/// plan carries a second validated backward table targeting the *spliced*
/// snapshot (the function as it stood right after [`ssair::passes::InlineCalls`] ran,
/// where region pcs are real instructions), plus the per-splice
/// [`ssair::passes::InlineRegion`] records that translate a spliced-frame environment
/// into a reconstructed *callee* frame and a caller resumption at the
/// call's continuation.
pub struct InlinePlan {
    /// The spliced (pre-optimization) caller the exit table lands in.
    pub spliced: Arc<Function>,
    /// Backward entries `optimized pc → spliced-snapshot compensation`,
    /// structurally and differentially validated like every other table.
    pub to_spliced: Arc<EntryTable>,
    /// One record per performed splice.
    pub regions: Vec<ssair::passes::InlineRegion>,
    /// Callee body snapshots (what was spliced), by name — the function a
    /// mid-region deopt re-enters.
    pub callees: std::collections::BTreeMap<String, Arc<Function>>,
    /// Speculatively biased branches that survived into the optimized
    /// CFG: `(branch block, hot successor)` in optimized coordinates.  A
    /// run that keeps taking a cold arm violates the inline speculation
    /// and deopts with an inline-kind
    /// [`crate::DeoptReason::AssumptionViolated`].
    pub guards: Vec<(ssair::BlockId, ssair::BlockId)>,
}

impl InlinePlan {
    /// The region containing the spliced-snapshot pc `at`, if any — a
    /// landing inside it must reconstruct that region's callee frame.
    pub fn region_at(&self, at: InstId) -> Option<&ssair::passes::InlineRegion> {
        self.regions.iter().find(|r| r.pc_map.contains_key(&at))
    }
}

/// Why a compiled version (or composed table) was rejected from the cache.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CompileError {
    /// A precomputed entry table failed its structural validation.
    InvalidTable {
        /// Which direction's table failed.
        direction: Direction,
        /// Human-readable reason.
        reason: String,
    },
    /// Differential validation replayed an entry's compensation steps on a
    /// sampled concrete frame and the transitioned run diverged from the
    /// reference run.
    Divergence {
        /// The OSR point whose entry diverged.
        at: InstId,
        /// Human-readable description of the divergence.
        reason: String,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::InvalidTable { direction, reason } => {
                write!(f, "invalid {direction:?} entry table: {reason}")
            }
            CompileError::Divergence { at, reason } => {
                write!(f, "differential validation diverged at {at}: {reason}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Maximum §5.2 keep-set recompile rounds per compile job.
pub const MAX_EXTENSION_ROUNDS: usize = 3;

/// Compiles `base` under `spec`: optimizes, precomputes both OSR entry
/// tables, and validates them structurally (see [`validate_table`]).
///
/// A compile job must produce an artifact every climbed frame can *leave*
/// again: deoptimization fires at the optimized version's loop-header OSR
/// points, so when the backward table cannot serve a header entry —
/// typically because a baseline φ is dead in the optimized code yet
/// needed on the loop's exit path (§5.2) — the function is recompiled
/// with the blocking values in a liveness-extension keep-set
/// ([`PipelineSpec::build_keeping`]) and the precompute retried, up to
/// [`MAX_EXTENSION_ROUNDS`] times.  The published artifact is then the
/// keep-set recompiled version, not the plain pipeline's output; its
/// [`CompiledVersion::extension_rounds`] and [`CompiledVersion::keep`]
/// record the recompile.
///
/// # Errors
///
/// Returns [`CompileError`] if a precomputed table fails validation — the
/// artifact must then stay out of the cache.
pub fn compile_function(
    base: Function,
    spec: &PipelineSpec,
    variant: Variant,
) -> Result<CompiledVersion, CompileError> {
    compile_speculated(base, spec, &Speculation::none(), None, variant)
}

/// Like [`compile_function`], specialized on a value speculation: the
/// speculated parameter slots are seeded as constants
/// ([`ssair::passes::SeedValues`] prepended to the rung's normal mix, so
/// SCCP/DCE/branch folding run over the seeded constants) and the
/// speculation is recorded on the artifact as its entry guard.  The
/// *baseline* half of the pair stays the unspecialized original — the
/// version a violating frame deopts back into.
///
/// # Errors
///
/// Returns [`CompileError`] if a precomputed table fails validation.
pub fn compile_speculated(
    base: Function,
    spec: &PipelineSpec,
    speculation: &Speculation,
    frequencies: Option<&BlockFrequencies>,
    variant: Variant,
) -> Result<CompiledVersion, CompileError> {
    compile_inlined(
        base,
        spec,
        speculation,
        frequencies,
        variant,
        Vec::new(),
        InlineSpec::none(),
    )
}

/// Like [`compile_speculated`], with hot call sites spliced:
/// [`ssair::passes::InlineCalls`] runs ahead of the rung's normal mix
/// (before value seeding, so CP/CSE/SCCP optimize across the former call
/// boundary), and the artifact carries an [`InlinePlan`] — a validated
/// backward table into the spliced snapshot plus the region records a
/// cross-function deopt reads.  `inline_spec` becomes the artifact's
/// cache-key identity; sites that decline to splice (callee republished
/// into something uninlinable, site optimized away) are simply absent
/// from the plan.
///
/// # Errors
///
/// Returns [`CompileError`] if any precomputed table — including the
/// inline exit table — fails validation.
pub fn compile_inlined(
    base: Function,
    spec: &PipelineSpec,
    speculation: &Speculation,
    frequencies: Option<&BlockFrequencies>,
    variant: Variant,
    sites: Vec<ssair::passes::InlineSite>,
    inline_spec: InlineSpec,
) -> Result<CompiledVersion, CompileError> {
    let t0 = Instant::now();
    // Profile-guided layout runs only on the hottest rungs (O3 and the
    // machine rung it feeds) and only with a usable frequency summary —
    // lower rungs recompile too often for a layout snapshot to pay off.
    let layout = frequencies
        .filter(|fr| !fr.is_empty() && matches!(spec, PipelineSpec::O3 | PipelineSpec::O4));
    let seeds: Vec<(ValueId, i64)> = speculation
        .seeds()
        .iter()
        .filter(|(slot, _)| *slot < base.params.len())
        .map(|(slot, v)| (base.param_value(*slot), *v))
        .collect();
    let mut keep: std::collections::BTreeSet<ValueId> = Default::default();
    let mut rounds = 0;
    loop {
        let mut pipeline = spec.build_keeping(&keep);
        if !seeds.is_empty() {
            pipeline = pipeline.prepended(Box::new(ssair::passes::SeedValues::new(seeds.clone())));
        }
        // Splicing runs first (prepended last): seeds and the rest of the
        // mix then optimize over the spliced body.
        let inline_slot = if sites.is_empty() {
            None
        } else {
            let pass = ssair::passes::InlineCalls::new(sites.clone());
            let slot = pass.outcome_slot();
            pipeline = pipeline.prepended(Box::new(pass));
            Some(slot)
        };
        if let Some(fr) = layout {
            pipeline = pipeline.appended(Box::new(LayoutBlocks::new(fr.clone())));
        }
        let versions = FunctionVersions::new(base.clone(), &pipeline);
        let pair = versions.pair();
        let tier_up = precompute_entries(&pair, Direction::Forward, variant);
        let (tier_down, wanted) =
            precompute_entries_collecting(&pair, Direction::Backward, variant);
        drop(pair);
        // §5.2 keep-set recompile: a deopt-critical (loop-header) backward
        // entry is blocked — keep the values blocking *those* entries
        // alive and recompile.  Blockers of non-header points are left
        // alone: keeping them would pessimize the optimized code for
        // entries no deopt fires from.
        let headers = loop_header_points(&versions.opt);
        let header_blocked = headers.iter().any(|h| tier_down.get(*h).is_none());
        if header_blocked && rounds < MAX_EXTENSION_ROUNDS {
            let header_blockers = wanted
                .into_iter()
                .filter(|(p, _)| headers.contains(p))
                .map(|(_, v)| v);
            let fresh = extension_candidates(&versions.base, header_blockers, &keep);
            if !fresh.is_empty() {
                keep.extend(fresh);
                rounds += 1;
                continue;
            }
        }
        validate_table(&tier_up, &versions.base, &versions.opt)?;
        validate_table(&tier_down, &versions.opt, &versions.base)?;
        let inline_plan = build_inline_plan(
            inline_slot.as_ref(),
            &versions,
            &sites,
            speculation,
            variant,
        )?;
        let machine = if matches!(spec, PipelineSpec::O4) {
            let mut tables: Vec<&EntryTable> = vec![&tier_down];
            if let Some(plan) = &inline_plan {
                // A deopt out of registers inside a spliced region reads
                // the exit table's sources too — they must stay shadowed.
                tables.push(&plan.to_spliced);
            }
            Some(Arc::new(lower_machine(
                &versions.opt,
                &tables,
                &keep,
                speculation,
            )?))
        } else {
            None
        };
        let opt = Arc::new(versions.opt.clone());
        let base = Arc::new(versions.base.clone());
        return Ok(CompiledVersion {
            spec: spec.clone(),
            speculation: speculation.clone(),
            header_points: headers,
            versions: Arc::new(versions),
            opt,
            base,
            tier_up: Arc::new(tier_up),
            tier_down: Arc::new(tier_down),
            keep: keep.len(),
            extension_rounds: rounds,
            compile_nanos: t0.elapsed().as_nanos() as u64,
            layout_digest: layout.map(BlockFrequencies::digest).unwrap_or_default(),
            machine,
            inline_spec: inline_spec.clone(),
            inline: inline_plan.map(Arc::new),
        });
    }
}

/// Builds and validates the [`InlinePlan`] of a spliced compile, or `None`
/// when nothing was spliced.
///
/// The spliced-base → optimized mapper is recovered by replaying the
/// pipeline log's *suffix* (everything after [`InlineCalls`] deposited its
/// outcome) into a fresh mapper — see `osr::CodeMapper::replay`.  The
/// backward table precomputed from that pair lands mid-region deopts in
/// the spliced snapshot, where region pcs are real instructions; it is
/// validated structurally and differentially replayed (module-free, like
/// machine lowering — entries whose runs need other functions are covered
/// by the engine's tier-level replay instead).
fn build_inline_plan(
    inline_slot: Option<&std::sync::Arc<Mutex<Option<ssair::passes::InlineOutcome>>>>,
    versions: &FunctionVersions,
    sites: &[ssair::passes::InlineSite],
    speculation: &Speculation,
    variant: Variant,
) -> Result<Option<InlinePlan>, CompileError> {
    let Some(outcome) = inline_slot.and_then(|s| s.lock().expect("inline outcome lock").take())
    else {
        return Ok(None);
    };
    if outcome.regions.is_empty() {
        return Ok(None);
    }
    let mut suffix = ssair::SsaMapper::new();
    suffix.replay(&versions.cm.log()[outcome.prefix_actions..]);
    let spliced = outcome.spliced;
    let pair = ssair::reconstruct::OsrPair::new(&spliced, &versions.opt, &suffix);
    let to_spliced = precompute_entries(&pair, Direction::Backward, variant);
    drop(pair);
    validate_table(&to_spliced, &versions.opt, &spliced)?;
    differential_validate_pinned(
        &to_spliced,
        &versions.opt,
        &spliced,
        &Module::new(),
        3,
        speculation,
    )?;
    let callees = sites
        .iter()
        .map(|s| (s.callee.name.clone(), s.callee.clone()))
        .collect();
    // Speculatively biased callee branches that survived into the
    // optimized CFG keep their cloned block ids; everything folded or
    // threaded away needs no guard.
    let guards = outcome
        .regions
        .iter()
        .flat_map(|r| r.hot_arms.iter().copied())
        .filter(|(b, hot)| {
            versions.opt.block_exists(*b)
                && match versions.opt.block(*b).term {
                    ssair::Terminator::CondBr {
                        then_bb, else_bb, ..
                    } => then_bb == *hot || else_bb == *hot,
                    _ => false,
                }
        })
        .collect();
    Ok(Some(InlinePlan {
        spliced: Arc::new(spliced),
        to_spliced: Arc::new(to_spliced),
        regions: outcome.regions,
        callees,
        guards,
    }))
}

/// Lowers the optimized version onto the register-allocated machine
/// substrate and differentially validates the artifact before it may
/// ship inside a [`CompiledVersion`].
///
/// The shadow-root set — SSA values the artifact must keep reachable in
/// spill slots after their registers die — is the union of the backward
/// (deopt) table's transfer sources and the §5.2 keep set: exactly the
/// state a deopt out of registers reads when rebuilding the SSA
/// environment the validated entry tables consume.
///
/// Validation replays the machine entry-to-return against the SSA
/// interpreter on small deterministic arguments (speculated slots
/// pinned).  Functions whose reference run needs other functions are
/// skipped here — no module is in scope at compile time — and are
/// covered instead by the engine's tier-level differential replay of
/// every table that routes through the rung.
fn lower_machine(
    opt: &Function,
    tables: &[&EntryTable],
    keep: &std::collections::BTreeSet<ValueId>,
    pin: &Speculation,
) -> Result<ssair::machine::MachineArtifact, CompileError> {
    let mut roots: std::collections::BTreeSet<ValueId> = keep.clone();
    for table in tables {
        for (_, entry) in table.entries.values() {
            for step in &entry.comp.steps {
                if let CompStep::Transfer { src, .. } = step {
                    roots.insert(*src);
                }
            }
        }
    }
    let art = ssair::machine::lower_function(opt, &roots);
    const FUEL: usize = 2_000_000;
    let empty = Module::new();
    for k in [2i64, 3, 5] {
        let args: Vec<Val> = (0..opt.params.len())
            .map(|i| {
                let seeded = pin.seeds().iter().find(|(slot, _)| *slot == i);
                Val::Int(seeded.map_or(k + i as i64, |(_, v)| *v))
            })
            .collect();
        let Ok(expected) = run_function(opt, &args, &empty, FUEL) else {
            continue; // needs a module (calls) or faults: not comparable here
        };
        let mut machine = Machine::new(FUEL);
        let mut frame = art.enter_args(&args);
        match art.run_machine(art.entry_pc, &mut frame, &mut machine, &empty) {
            Ok(got) if got == expected => {}
            Ok(got) => {
                return Err(CompileError::Divergence {
                    at: art.pc_of.keys().next().copied().unwrap_or(InstId(0)),
                    reason: format!(
                        "machine lowering: args {args:?}: got {got:?}, expected {expected:?}"
                    ),
                })
            }
            Err(e) => {
                return Err(CompileError::Divergence {
                    at: art.pc_of.keys().next().copied().unwrap_or(InstId(0)),
                    reason: format!("machine lowering: args {args:?}: execution failed: {e}"),
                })
            }
        }
    }
    Ok(art)
}

/// Structural validation of a precomputed entry table: every step of every
/// entry must be executable against *some* source frame — transfers read
/// values the source version defines, copies and emits only consume values
/// produced by earlier steps, and each landing location is live in the
/// target version.  (Semantic correctness is Algorithm 1's theorem; this
/// check catches table corruption before the artifact is shared.)
pub fn validate_table(
    table: &EntryTable,
    src_fn: &Function,
    dst_fn: &Function,
) -> Result<(), CompileError> {
    let fail = |reason: String| {
        Err(CompileError::InvalidTable {
            direction: table.direction,
            reason,
        })
    };
    for (at, (landing, entry)) in &table.entries {
        if !dst_fn.inst_is_live(landing.loc) {
            return fail(format!(
                "landing {} for {at} not live in target",
                landing.loc
            ));
        }
        let mut produced: std::collections::BTreeSet<ValueId> = Default::default();
        for step in &entry.comp.steps {
            match step {
                CompStep::Transfer { src, dst } => {
                    if (src.0 as usize) >= src_fn.value_count() {
                        return fail(format!("transfer of {src} undefined in source"));
                    }
                    if let ValueDef::Inst(i) = src_fn.value_def(*src) {
                        if !src_fn.inst_is_live(i) {
                            return fail(format!("transfer of dead source value {src}"));
                        }
                    }
                    produced.insert(*dst);
                }
                CompStep::CopyDst { from, to } => {
                    if !produced.contains(from) {
                        return fail(format!("copy of unproduced value {from} at {at}"));
                    }
                    produced.insert(*to);
                }
                CompStep::Emit { inst } | CompStep::Materialize { inst } => {
                    let data = dst_fn.inst(*inst);
                    for op in data.kind.operands() {
                        // Loads may read memory cells; pure operands must
                        // have been produced by earlier steps.
                        if !produced.contains(&op)
                            && !matches!(data.kind, ssair::InstKind::Load { .. })
                        {
                            return fail(format!("emit at {at} reads unproduced {op}"));
                        }
                    }
                    if let Some(r) = data.result {
                        produced.insert(r);
                    }
                }
                // Instructions captured inline by table composition: the
                // kind is self-contained, so every operand — including a
                // load's address — must come from earlier steps.
                CompStep::Inline { kind, result } => {
                    for op in kind.operands() {
                        if !produced.contains(&op) {
                            return fail(format!("inline emit at {at} reads unproduced {op}"));
                        }
                    }
                    if let Some(r) = result {
                        produced.insert(*r);
                    }
                }
            }
        }
    }
    Ok(())
}

/// Differential validation — the SSA analogue of `osr::validate_mapping`:
/// replays up to `samples` of the table's entries on *concrete* frames.
/// For each sampled OSR point, the source version is run on small
/// deterministic arguments until the point is reached (preferring a
/// second, mid-loop visit), the entry's compensation steps are applied to
/// the live frame, execution finishes in the target version from the
/// landing site, and the result is compared against a pure source-version
/// run.
///
/// # Errors
///
/// Returns [`CompileError::Divergence`] when a transitioned run disagrees
/// with the reference run (or the compensation code fails to execute on a
/// reached frame).  Samples whose point is never reached are skipped.
pub fn differential_validate(
    table: &EntryTable,
    src_fn: &Function,
    dst_fn: &Function,
    module: &Module,
    samples: usize,
) -> Result<(), CompileError> {
    differential_validate_pinned(table, src_fn, dst_fn, module, samples, &Speculation::none())
}

/// [`differential_validate`] with speculated argument slots *pinned* to
/// their seeded values.  A table whose endpoint is a constant-seeded
/// specialized version is only claimed correct for conforming frames (the
/// engine's value guard keeps violating frames out), so the replay must
/// sample conforming arguments — free-running samples would "diverge"
/// on exactly the inputs the speculation excludes.
pub fn differential_validate_pinned(
    table: &EntryTable,
    src_fn: &Function,
    dst_fn: &Function,
    module: &Module,
    samples: usize,
    pin: &Speculation,
) -> Result<(), CompileError> {
    const FUEL: usize = 2_000_000;
    let arg_sets: Vec<Vec<Val>> = [2i64, 3, 5]
        .iter()
        .map(|&k| {
            (0..src_fn.params.len())
                .map(|i| {
                    let seeded = pin.seeds().iter().find(|(slot, _)| *slot == i);
                    Val::Int(seeded.map_or(k + i as i64, |(_, v)| *v))
                })
                .collect()
        })
        .collect();
    if table.entries.is_empty() {
        return Ok(());
    }
    // Reference results depend only on the argument set, not on the
    // sampled point: compute each lazily, once.
    let mut references: Vec<Option<Result<Option<Val>, ()>>> = vec![None; arg_sets.len()];
    let step = (table.entries.len() / samples.max(1)).max(1);
    for (at, (landing, entry)) in table.entries.iter().step_by(step).take(samples.max(1)) {
        'args: for (ai, args) in arg_sets.iter().enumerate() {
            // Prefer pausing at the second visit (a mid-loop frame with
            // back-edge φ state); fall back to the first.
            for visit_target in [2usize, 1] {
                let mut machine = Machine::new(FUEL);
                let mut frame = Frame::enter(src_fn, args);
                let seen = std::cell::Cell::new(0usize);
                let outcome = run_frame(
                    src_fn,
                    &mut frame,
                    &mut machine,
                    module,
                    Some(&|_f, _fr, i| {
                        if i == *at {
                            seen.set(seen.get() + 1);
                            seen.get() == visit_target
                        } else {
                            false
                        }
                    }),
                );
                let Ok(StepOutcome::Paused { .. }) = outcome else {
                    continue; // point not reached at this visit count
                };
                // Reference: what this activation produces without the
                // transition (OSR must preserve exactly this value).
                let reference = *references[ai].get_or_insert_with(|| {
                    run_function(src_fn, args, module, FUEL).map_err(|_| ())
                });
                let Ok(expected) = reference else {
                    continue 'args; // reference itself fails; nothing to compare
                };
                let env = apply_comp(entry, dst_fn, &frame.values, &mut machine).map_err(|e| {
                    CompileError::Divergence {
                        at: *at,
                        reason: format!("compensation failed on a live frame: {e}"),
                    }
                })?;
                let loc = landing.loc;
                let block = dst_fn.block_of(loc).expect("validated landing is live");
                let index = dst_fn
                    .block(block)
                    .insts
                    .iter()
                    .position(|i| *i == loc)
                    .expect("landing is in its block");
                let mut dframe = Frame {
                    values: env,
                    block,
                    index,
                    came_from: None,
                };
                let got = match run_frame(dst_fn, &mut dframe, &mut machine, module, None) {
                    Ok(StepOutcome::Returned(v)) => v,
                    Ok(StepOutcome::Paused { .. }) => unreachable!("no pause predicate"),
                    Err(e) => {
                        return Err(CompileError::Divergence {
                            at: *at,
                            reason: format!("target run failed after transition: {e}"),
                        })
                    }
                };
                if got != expected {
                    return Err(CompileError::Divergence {
                        at: *at,
                        reason: format!("args {args:?}: got {got:?}, expected {expected:?}"),
                    });
                }
                continue 'args; // one reached frame per arg set suffices
            }
        }
    }
    Ok(())
}

/// Vets the *violating-frame round trip* — hop into a specialized
/// version via `fwd_entry`, fire the value guard at the forward landing
/// before a single specialized instruction executes, and hop straight out
/// via `escape_entry` — for soundness on a frame whose arguments violate
/// the speculation.
///
/// The specialized version's recorded actions equate values with the
/// seeded constants, which holds only *under* the speculation: any value
/// that reaches the escaping frame through a specialized-version mapping
/// (an emitted constant, a replace-chain alias) may encode the speculated
/// constant and corrupt a violating frame.  The escape must therefore
/// read nothing the specialized version computed.  Two kinds of frame
/// state are provably *real* at the landing: (a) values the forward entry
/// transferred **under their own id** (`src == dst` — an identity copy of
/// untouched source-frame state, still addressable by the id the
/// speculation-free escape table reads), and (b) parameters (always
/// re-suppliable with the real arguments,
/// [`tinyvm::profile::TierTarget::pinned`]).  The round trip is safe
/// exactly when every value `escape_entry` reads is one of those; its
/// remaining steps are vetted transitively — emissions reference only the
/// escape target's (unspecialized) instructions and read only values
/// produced by earlier steps.
///
/// A third kind of provably-real state extends the two above: a value
/// whose *baseline* definition is a plain constant.  Constants are
/// version-independent literal facts (every version derived from the
/// baseline preserves the id and the literal — the §5.1 free-remat
/// observation), so the escape may pin them regardless of what the
/// specialized version did to them.  On success the returned pins are the
/// `(value, constant)` pairs the escape hop must supply
/// ([`tinyvm::profile::TierTarget::pinned`]); `None` means the round trip
/// cannot be proven safe and the violating frame must stay out.
///
/// The escape table itself must also be speculation-free — the engine
/// uses the generic artifact's own direct forward table at the landing,
/// never a table composed through the specialized version's mappings.
pub fn vet_generic_escape(
    fwd_entry: &ssair::reconstruct::SsaEntry,
    escape_entry: &ssair::reconstruct::SsaEntry,
    base: &Function,
) -> Option<Vec<(ValueId, Val)>> {
    let identity: std::collections::BTreeSet<ValueId> = fwd_entry
        .comp
        .steps
        .iter()
        .filter_map(|s| match s {
            CompStep::Transfer { src, dst } if src == dst => Some(*dst),
            _ => None,
        })
        .collect();
    let mut pins = Vec::new();
    for step in &escape_entry.comp.steps {
        let CompStep::Transfer { src, .. } = step else {
            continue;
        };
        if identity.contains(src) || (src.0 as usize) < base.params.len() {
            continue;
        }
        let base_const = ((src.0 as usize) < base.value_count())
            .then(|| base.value_def(*src))
            .and_then(|def| match def {
                ssair::ValueDef::Inst(i) if base.inst_is_live(i) => match base.inst(i).kind {
                    ssair::InstKind::Const(n) => Some(n),
                    _ => None,
                },
                _ => None,
            });
        match base_const {
            Some(n) => pins.push((*src, Val::Int(n))),
            None => return None,
        }
    }
    Some(pins)
}

/// The historical name for [`vet_generic_escape`]: the mechanism was
/// introduced for value speculation's same-rung round trip and is now
/// the one vetted generic-escape path any assumption kind can request.
pub fn vet_value_roundtrip(
    fwd_entry: &ssair::reconstruct::SsaEntry,
    escape_entry: &ssair::reconstruct::SsaEntry,
    base: &Function,
) -> Option<Vec<(ValueId, Val)>> {
    vet_generic_escape(fwd_entry, escape_entry, base)
}

/// State of one cache slot.
enum Slot {
    /// A compile job has been claimed/enqueued but not yet published.
    Compiling,
    /// Ready to serve transitions.
    Ready(Arc<CompiledVersion>),
}

/// Key of a composed version-to-version table: the `from` version
/// hopping straight to the `to` version.  Each endpoint is the full
/// [`VersionKey`] rung identity (so specialized and generic artifacts of
/// the same rung memoize independent tables) — which also makes the memo
/// its own rung-dependency record: a table is registered under exactly
/// the two [`Entity::Rung`]s it depends on, and
/// [`CodeCache::invalidate`] drops it when either is republished.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ComposedKey {
    from: VersionKey,
    to: VersionKey,
}

impl ComposedKey {
    fn between(function: &str, from: &CompiledVersion, to: &CompiledVersion) -> Self {
        ComposedKey {
            from: endpoint(function, from),
            to: endpoint(function, to),
        }
    }
}

/// The full [`VersionKey`] rung identity of a compiled version (one
/// composed-table endpoint).
fn endpoint(function: &str, cv: &CompiledVersion) -> VersionKey {
    VersionKey::inlined(
        function,
        cv.spec.clone(),
        cv.speculation.clone(),
        cv.inline_spec.clone(),
    )
}

const SHARD_COUNT: usize = 8;

fn shard_index<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARD_COUNT
}

type ComposedResult = Result<Arc<EntryTable>, CompileError>;

/// The concurrent code cache, sharded by key hash.
///
/// Lookups are counted once per *request* by the engine (not once per
/// probe), so hit/miss counters reflect request-level cache behaviour.
pub struct CodeCache {
    shards: Vec<Mutex<HashMap<CacheKey, Slot>>>,
    composed: Vec<Mutex<HashMap<ComposedKey, ComposedResult>>>,
    /// Probe history, keyed by [`VersionKey::generic`] views — how often
    /// a climb-ready frame found the artifact for a `(function,
    /// pipeline)` published vs. still compiling, aggregated across that
    /// rung's speculative variants.  An adaptive ladder reads these to
    /// cheapen climbs whose compiles are effectively free
    /// ([`crate::TierPolicy::threshold_with_cache`]).
    probes: Vec<Mutex<HashMap<CacheKey, (u64, u64)>>>,
    /// The dependency registry: for each [`Entity`], the published keys
    /// whose assumptions depend on it.  [`CodeCache::publish`] registers
    /// an artifact under one entity per assumption
    /// ([`Assumption::InlinedCallee`] → [`Entity::Callee`],
    /// [`Assumption::ValueStable`] → [`Entity::ValueStability`]);
    /// [`CodeCache::invalidate`] drains an entity's entry and evicts the
    /// registered dependents.  (Rung dependencies need no entry here —
    /// the composed memo's own [`ComposedKey`] endpoints are the
    /// registration.)
    deps: Mutex<HashMap<Entity, HashSet<CacheKey>>>,
    /// Per-function inline epoch: bumped on every *re*publication of any
    /// of the function's artifacts.  Callers splice a callee at a
    /// specific epoch (recorded in their [`InlineSpec`] view); a bump
    /// evicts every caller artifact referencing an older one.
    epochs: Mutex<HashMap<String, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    inline_invalidations: AtomicU64,
    value_invalidations: AtomicU64,
}

impl Default for CodeCache {
    fn default() -> Self {
        CodeCache {
            shards: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            composed: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            probes: (0..SHARD_COUNT).map(|_| Mutex::default()).collect(),
            deps: Mutex::default(),
            epochs: Mutex::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            inline_invalidations: AtomicU64::new(0),
            value_invalidations: AtomicU64::new(0),
        }
    }
}

impl CodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        CodeCache::default()
    }

    fn shard(&self, key: &CacheKey) -> &Mutex<HashMap<CacheKey, Slot>> {
        &self.shards[shard_index(key)]
    }

    /// Returns the ready artifact for `key`, if published.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<CompiledVersion>> {
        match self.shard(key).lock().expect("cache lock").get(key) {
            Some(Slot::Ready(cv)) => Some(Arc::clone(cv)),
            _ => None,
        }
    }

    /// Records a request-level hit.
    pub fn count_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request-level miss.
    pub fn count_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one climb-eligible probe of `key` (at most one per request
    /// per rung — the controller batches): `hit` when the artifact was
    /// published.  History accumulates under the key's
    /// [`VersionKey::generic`] view, so a rung's speculative variants
    /// share one `(function, pipeline)` record.
    pub fn note_probe(&self, key: &CacheKey, hit: bool) {
        let key = key.generic();
        let mut map = self.probes[shard_index(&key)].lock().expect("probe lock");
        let stats = map.entry(key).or_insert((0, 0));
        if hit {
            stats.0 += 1;
        } else {
            stats.1 += 1;
        }
    }

    /// The accumulated `(hits, misses)` probe history of `key`'s
    /// [`VersionKey::generic`] view.
    pub fn probe_stats(&self, key: &CacheKey) -> (u64, u64) {
        let key = key.generic();
        self.probes[shard_index(&key)]
            .lock()
            .expect("probe lock")
            .get(&key)
            .copied()
            .unwrap_or((0, 0))
    }

    /// Atomically claims the right to compile `key`.  Returns `true` when
    /// the caller must enqueue (or perform) the compile; `false` when the
    /// artifact is ready or someone else already claimed it.
    pub fn claim(&self, key: &CacheKey) -> bool {
        let mut slots = self.shard(key).lock().expect("cache lock");
        if slots.contains_key(key) {
            return false;
        }
        slots.insert(key.clone(), Slot::Compiling);
        true
    }

    /// Publishes a compiled artifact (fulfilling a prior
    /// [`CodeCache::claim`]) and registers it in the dependency registry
    /// under every [`Entity`] its assumptions depend on.
    ///
    /// *Re*publishing over a ready artifact — e.g. a §5.2 keep-set
    /// recompile replacing a rung — flows through
    /// [`CodeCache::invalidate`] twice: once for the replaced
    /// [`Entity::Rung`] (dropping every memoized composed table routing
    /// through either endpoint, so the next hop re-composes against the
    /// republished version instead of transferring into a stale one) and
    /// once for the function's [`Entity::Callee`] identity (bumping its
    /// inline epoch and evicting every caller artifact that spliced this
    /// function at an older epoch — no stale-inline execution is
    /// possible).
    ///
    /// An artifact whose own assumptions already reference outdated
    /// callee epochs — a callee was republished while this compile was in
    /// flight — is *not* published: the claim is dropped and the eviction
    /// counter bumped, exactly as if it had been published and evicted.
    pub fn publish(&self, key: &CacheKey, cv: Arc<CompiledVersion>) {
        if key.assumptions.iter().any(|a| {
            matches!(a, Assumption::InlinedCallee { callee, epoch, .. }
                if *epoch < self.inline_epoch(callee))
        }) {
            self.abandon(key);
            self.inline_invalidations.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let replaced = {
            let mut slots = self.shard(key).lock().expect("cache lock");
            matches!(
                slots.insert(key.clone(), Slot::Ready(cv)),
                Some(Slot::Ready(_))
            )
        };
        self.register_dependencies(key);
        if replaced {
            self.invalidate(&Entity::Rung(key.clone()));
            self.invalidate(&Entity::Callee(key.function.clone()));
        }
    }

    /// Registers `key` under every entity its assumptions depend on —
    /// the publish half of the dependency registry.
    fn register_dependencies(&self, key: &CacheKey) {
        if key.assumptions.is_empty() {
            return;
        }
        let mut deps = self.deps.lock().expect("deps lock");
        for a in key.assumptions.iter() {
            let entity = match a {
                Assumption::InlinedCallee { callee, .. } => Entity::Callee(callee.clone()),
                Assumption::ValueStable { slot, .. } => Entity::ValueStability {
                    function: key.function.clone(),
                    slot: *slot,
                },
                // Bias bets are profile-local: they shape the artifact,
                // not its lifetime, and dissolve through republish.
                Assumption::BiasGuard { .. } => continue,
            };
            deps.entry(entity).or_default().insert(key.clone());
        }
    }

    /// The single invalidation path: every eviction — rung republish,
    /// callee republish, value-stability dissolution — names the changed
    /// [`Entity`] and flows through here.  Dependents registered at
    /// publish time are evicted, their own composed tables cascade
    /// through [`Entity::Rung`], and the matching per-kind counter
    /// ([`CodeCache::composed_invalidations`] /
    /// [`CodeCache::inline_invalidations`] /
    /// [`CodeCache::value_invalidations`]) absorbs the count.  Returns
    /// how many artifacts or tables this call invalidated.
    pub fn invalidate(&self, entity: &Entity) -> u64 {
        match entity {
            Entity::Rung(key) => self.invalidate_rung(key),
            Entity::Callee(function) => self.invalidate_callee(function),
            Entity::ValueStability { function, slot } => self.invalidate_value(function, *slot),
        }
    }

    /// Drops every memoized composed table with `key` as either endpoint
    /// (including memoized failures, which may now succeed against the
    /// republished artifact).
    fn invalidate_rung(&self, key: &VersionKey) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.composed {
            let mut map = shard.lock().expect("composed lock");
            map.retain(|k, _| {
                let stale = k.from == *key || k.to == *key;
                if stale {
                    dropped += 1;
                }
                !stale
            });
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Bumps `function`'s inline epoch and evicts every registered
    /// dependent — any caller — whose assumptions splice `function` at an
    /// older epoch, cascading each eviction through [`Entity::Rung`].
    fn invalidate_callee(&self, function: &str) -> u64 {
        let epoch = {
            let mut epochs = self.epochs.lock().expect("epoch lock");
            let e = epochs.entry(function.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        let dependents: Vec<CacheKey> = {
            let mut deps = self.deps.lock().expect("deps lock");
            deps.remove(&Entity::Callee(function.to_string()))
                .map(|s| s.into_iter().collect())
                .unwrap_or_default()
        };
        let mut evicted: Vec<CacheKey> = Vec::new();
        let mut spared: Vec<CacheKey> = Vec::new();
        for k in dependents {
            let stale = k.assumptions.iter().any(|a| {
                matches!(a, Assumption::InlinedCallee { callee, epoch: e, .. }
                    if callee == function && *e < epoch)
            });
            if !stale {
                // A dependent already at the bumped epoch (it registered
                // between our bump and our drain) stays live — put it
                // back so the *next* republish still finds it.
                spared.push(k);
                continue;
            }
            let mut slots = self.shard(&k).lock().expect("cache lock");
            if matches!(slots.get(&k), Some(Slot::Ready(_))) {
                slots.remove(&k);
                drop(slots);
                evicted.push(k);
            }
        }
        if !spared.is_empty() {
            let mut deps = self.deps.lock().expect("deps lock");
            let set = deps
                .entry(Entity::Callee(function.to_string()))
                .or_default();
            set.extend(spared);
        }
        self.inline_invalidations
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        let count = evicted.len() as u64;
        for k in evicted {
            self.invalidate_rung(&k);
        }
        count
    }

    /// Evicts every registered dependent seeded on `function`'s `slot` —
    /// the cache half of value-stability dissolution
    /// ([`tinyvm::profile::ProfileTable::stable_value`] going `None`) —
    /// cascading each eviction through [`Entity::Rung`].
    fn invalidate_value(&self, function: &str, slot: usize) -> u64 {
        let dependents: Vec<CacheKey> = {
            let mut deps = self.deps.lock().expect("deps lock");
            deps.remove(&Entity::ValueStability {
                function: function.to_string(),
                slot,
            })
            .map(|s| s.into_iter().collect())
            .unwrap_or_default()
        };
        let mut evicted: Vec<CacheKey> = Vec::new();
        for k in dependents {
            let mut slots = self.shard(&k).lock().expect("cache lock");
            if matches!(slots.get(&k), Some(Slot::Ready(_))) {
                slots.remove(&k);
                drop(slots);
                evicted.push(k);
            }
        }
        self.value_invalidations
            .fetch_add(evicted.len() as u64, Ordering::Relaxed);
        let count = evicted.len() as u64;
        for k in evicted {
            self.invalidate_rung(&k);
        }
        count
    }

    /// The current inline epoch of `function`: the version identity a
    /// caller splices it at.  Starts at 0 and bumps on every
    /// republication of any of the function's artifacts.
    pub fn inline_epoch(&self, function: &str) -> u64 {
        self.epochs
            .lock()
            .expect("epoch lock")
            .get(function)
            .copied()
            .unwrap_or(0)
    }

    /// Composed tables dropped by rung republications.
    pub fn composed_invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Inlined caller artifacts evicted by callee republications
    /// (including in-flight compiles abandoned at publish time).
    pub fn inline_invalidations(&self) -> u64 {
        self.inline_invalidations.load(Ordering::Relaxed)
    }

    /// Value-specialized artifacts evicted by stability dissolution.
    pub fn value_invalidations(&self) -> u64 {
        self.value_invalidations.load(Ordering::Relaxed)
    }

    /// The per-kind invalidation counters, bundled for a metrics
    /// snapshot; their sum is the `assumption_invalidations` aggregate.
    pub fn invalidation_counts(&self) -> InvalidationCounts {
        InvalidationCounts {
            composed: self.composed_invalidations(),
            inline: self.inline_invalidations(),
            value: self.value_invalidations(),
        }
    }

    /// Whether `cv` does not conflict with the published artifact for
    /// its key — the memoization guard against a republish racing a
    /// composed-table build: a table built (outside the lock) against a
    /// since-replaced artifact must not be inserted, or it would
    /// resurrect exactly the stale entry [`CodeCache::publish`]'s
    /// invalidation just dropped.  (The *returned* table is still
    /// correct for the caller, whose own `Arc`s keep its build
    /// self-consistent.)  An unpublished `cv` conflicts with nothing: a
    /// republish always replaces a `Ready` slot in place, so mid-race
    /// the slot is never absent.  Callers hold a composed shard lock
    /// while checking; `publish` releases the slot lock before
    /// invalidating, so the orders interleave safely: a slot replaced
    /// before the check fails it, and one replaced after is followed by
    /// an invalidation that must wait for the shard lock and then drops
    /// the fresh insert.
    fn is_current(&self, function: &str, cv: &CompiledVersion) -> bool {
        let key = CacheKey::inlined(
            function,
            cv.spec.clone(),
            cv.speculation.clone(),
            cv.inline_spec.clone(),
        );
        match self.get(&key) {
            Some(cur) => std::ptr::eq(Arc::as_ptr(&cur), std::ptr::from_ref(cv)),
            None => true,
        }
    }

    /// Drops a claim without publishing (compile failed validation).
    pub fn abandon(&self, key: &CacheKey) {
        let mut slots = self.shard(key).lock().expect("cache lock");
        if let Some(Slot::Compiling) = slots.get(key) {
            slots.remove(key);
        }
    }

    /// Every ready artifact published for `function`, across all
    /// pipeline/speculation/inline key dimensions — the inspection hook
    /// for benches and tests that need an artifact without reconstructing
    /// its exact (speculation, inline-epoch) coordinates.
    pub fn ready_versions(&self, function: &str) -> Vec<Arc<CompiledVersion>> {
        self.shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .expect("cache lock")
                    .iter()
                    .filter(|(key, _)| key.function == function)
                    .filter_map(|(_, slot)| match slot {
                        Slot::Ready(cv) => Some(Arc::clone(cv)),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    /// Number of ready artifacts.
    pub fn ready_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("cache lock")
                    .values()
                    .filter(|s| matches!(s, Slot::Ready(_)))
                    .count()
            })
            .sum()
    }

    /// Request-level (hits, misses) counters.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The composed `from.opt → to.opt` entry table for `function`,
    /// building (and memoizing) it on first use: the two direct tables are
    /// composed through their shared baseline
    /// ([`ssair::feasibility::compose_entries`], the SSA analogue of
    /// Theorem 3.4), validated structurally, and differentially replayed
    /// on sampled concrete frames before it is published.  Failures are
    /// memoized too, so a rejected composition is not rebuilt on every hot
    /// visit.
    ///
    /// The boolean is `true` when this call built the table (the caller
    /// may want to log the outcome exactly once).
    ///
    /// # Errors
    ///
    /// Returns the (possibly memoized) [`CompileError`] when the composed
    /// table fails validation.
    pub fn composed(
        &self,
        function: &str,
        from: &CompiledVersion,
        to: &CompiledVersion,
        module: &Module,
    ) -> (ComposedResult, bool) {
        let key = ComposedKey::between(function, from, to);
        let idx = shard_index(&key);
        if let Some(r) = self.composed[idx].lock().expect("composed lock").get(&key) {
            return (r.clone(), false);
        }
        // Build outside the lock; identical-version racing builders
        // produce identical tables, first publish wins, and only the
        // publisher reports `built` (losers duplicated the work but must
        // not duplicate the build event).  Memoize only when both
        // endpoints are still the published artifacts — see
        // [`CodeCache::is_current`].
        let result = build_composed(from, to, module).map(Arc::new);
        let mut map = self.composed[idx].lock().expect("composed lock");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                if self.is_current(function, from) && self.is_current(function, to) {
                    e.insert(result.clone());
                }
                (result, true)
            }
        }
    }

    /// Extends a memoized composed-chain *prefix* by one rung — the
    /// table-level fold step of
    /// [`ssair::feasibility::compose_entries_chain`]: `prefix` maps
    /// `from.opt` straight into `via.opt`, `adjacent` maps `via.opt` into
    /// `to.opt`, and the result (validated structurally and
    /// differentially, memoized under `from → to` like any composed
    /// table) maps `from.opt` straight into `to.opt`.  Extending a chain
    /// by one rung therefore costs one fold, never a recomposition of
    /// the whole sequence.
    ///
    /// The boolean is `true` when this call built the table.
    ///
    /// # Errors
    ///
    /// Returns the (possibly memoized) [`CompileError`] when the folded
    /// table fails validation.
    #[allow(clippy::too_many_arguments)]
    pub fn composed_prefix(
        &self,
        function: &str,
        from: &CompiledVersion,
        via: &CompiledVersion,
        to: &CompiledVersion,
        prefix: &EntryTable,
        adjacent: &EntryTable,
        module: &Module,
    ) -> (ComposedResult, bool) {
        let key = ComposedKey::between(function, from, to);
        let idx = shard_index(&key);
        if let Some(r) = self.composed[idx].lock().expect("composed lock").get(&key) {
            return (r.clone(), false);
        }
        let result = compose_table_pair(prefix, &via.versions.opt, adjacent);
        let result = validate_table(&result, &from.versions.opt, &to.versions.opt)
            .and_then(|()| {
                differential_validate_pinned(
                    &result,
                    &from.versions.opt,
                    &to.versions.opt,
                    module,
                    3,
                    &pin_for(from, to),
                )
            })
            .map(|()| Arc::new(result));
        let mut map = self.composed[idx].lock().expect("composed lock");
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => (e.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(e) => {
                // Every version the fold read must still be published —
                // see [`CodeCache::is_current`].
                if self.is_current(function, from)
                    && self.is_current(function, via)
                    && self.is_current(function, to)
                {
                    e.insert(result.clone());
                }
                (result, true)
            }
        }
    }

    /// Number of successfully composed tables currently memoized.
    pub fn composed_count(&self) -> usize {
        self.composed
            .iter()
            .map(|s| {
                s.lock()
                    .expect("composed lock")
                    .values()
                    .filter(|r| r.is_ok())
                    .count()
            })
            .sum()
    }
}

/// Builds and validates one composed version-to-version table:
/// `from.opt → baseline → to.opt`, flattened so the runtime hop never
/// touches the baseline — the single-stage case of the Theorem 3.4 chain
/// fold ([`compose_entries_chain`]; the first stage is reconstructed on
/// demand from `from`'s recorded actions).  The result is validated
/// structurally and then differentially replayed on sampled concrete
/// frames.  Longer chains extend these tables one fold at a time via
/// [`CodeCache::composed_prefix`].
fn build_composed(
    from: &CompiledVersion,
    to: &CompiledVersion,
    module: &Module,
) -> Result<EntryTable, CompileError> {
    let pair = from.versions.pair();
    let table = compose_entries_chain(
        &pair,
        Direction::Backward,
        &[(&from.versions.base, &to.tier_up)],
    )
    .pop()
    .expect("one stage, one prefix");
    drop(pair);
    validate_table(&table, &from.versions.opt, &to.versions.opt)?;
    differential_validate_pinned(
        &table,
        &from.versions.opt,
        &to.versions.opt,
        module,
        3,
        &pin_for(from, to),
    )?;
    Ok(table)
}

/// The argument pin for differentially replaying a table between `from`
/// and `to`: the union of both endpoints' speculations (the table is only
/// claimed correct for frames conforming to both — the engine's value
/// guard keeps every other frame out).  The endpoints an engine composes
/// never conflict on a slot; if a custom caller's do, `from`'s seed wins.
fn pin_for(from: &CompiledVersion, to: &CompiledVersion) -> Speculation {
    Speculation::on(
        from.speculation
            .seeds()
            .iter()
            .chain(to.speculation.seeds())
            .copied(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = "fn f(x, n) {
         var s = 0;
         for (var i = 0; i < n; i = i + 1) { s = s + x * x + i; }
         return s;
     }";

    fn compiled(spec: PipelineSpec) -> CompiledVersion {
        let m = minic::compile(SRC).unwrap();
        compile_function(m.get("f").unwrap().clone(), &spec, Variant::Avail)
            .expect("compiles and validates")
    }

    #[test]
    fn compile_precomputes_both_tables() {
        let cv = compiled(PipelineSpec::O2);
        assert!(cv.tier_up.coverage() > 0.8, "forward mostly feasible");
        assert!(cv.tier_down.coverage() > 0.8, "backward mostly feasible");
        assert!(cv.compile_nanos > 0);
    }

    #[test]
    fn light_pipeline_compiles_too() {
        let cv = compiled(PipelineSpec::O1);
        assert!(cv.tier_up.coverage() > 0.8);
        assert_eq!(cv.spec.name(), "O1");
    }

    #[test]
    fn aggressive_pipeline_compiles_as_o3() {
        let cv = compiled(PipelineSpec::O3);
        assert_eq!(cv.spec.name(), "O3");
        assert!(cv.tier_up.coverage() > 0.7, "forward mostly feasible");
        assert!(cv.tier_down.coverage() > 0.7, "backward mostly feasible");
    }

    #[test]
    fn republish_invalidates_composed_tables_through_the_rung() {
        let module = minic::compile(SRC).unwrap();
        let cache = CodeCache::new();
        let o1 = Arc::new(compiled(PipelineSpec::O1));
        let o2 = Arc::new(compiled(PipelineSpec::O2));
        let o3 = Arc::new(compiled(PipelineSpec::O3));
        let k1 = CacheKey::new("f", PipelineSpec::O1);
        let k2 = CacheKey::new("f", PipelineSpec::O2);
        assert!(cache.claim(&k1) && cache.claim(&k2));
        cache.publish(&k1, Arc::clone(&o1));
        cache.publish(&k2, Arc::clone(&o2));
        cache.composed("f", &o1, &o2, &module).0.unwrap();
        cache.composed("f", &o2, &o3, &module).0.unwrap();
        assert_eq!(cache.composed_count(), 2);
        assert_eq!(cache.composed_invalidations(), 0, "first publishes free");
        // A keep-set recompile republishes O2: both tables route through
        // it and must go; a fresh composition then rebuilds.
        cache.publish(&k2, Arc::new(compiled(PipelineSpec::O2)));
        assert_eq!(cache.composed_count(), 0);
        assert_eq!(cache.composed_invalidations(), 2);
        let (r, built) = cache.composed("f", &o1, &o2, &module);
        assert!(built, "invalidation forces a rebuild");
        r.unwrap();
    }

    #[test]
    fn composed_prefix_extends_the_chain_one_fold_at_a_time() {
        let module = minic::compile(SRC).unwrap();
        let cache = CodeCache::new();
        let o1 = Arc::new(compiled(PipelineSpec::O1));
        let o2 = Arc::new(compiled(PipelineSpec::O2));
        let o3 = Arc::new(compiled(PipelineSpec::O3));
        let (p12, _) = cache.composed("f", &o1, &o2, &module);
        let p12 = p12.expect("O1→O2 composes");
        let (a23, _) = cache.composed("f", &o2, &o3, &module);
        let a23 = a23.expect("O2→O3 composes");
        let (p13, built) = cache.composed_prefix("f", &o1, &o2, &o3, &p12, &a23, &module);
        let p13 = p13.expect("the chained O1→O3 prefix validates");
        assert!(built);
        assert!(!p13.entries.is_empty(), "the chained table serves points");
        assert_eq!(cache.composed_count(), 3, "every prefix is memoized");
        let (again, built2) = cache.composed_prefix("f", &o1, &o2, &o3, &p12, &a23, &module);
        assert!(!built2, "memoized");
        assert!(Arc::ptr_eq(&p13, &again.unwrap()));
    }

    #[test]
    fn stale_prefix_extension_after_republish_is_never_memoized() {
        // The §5.2-republish window, closed by `is_current`: a caller
        // builds a chained prefix against the pre-republish endpoints, a
        // keep-set recompile republishes the middle rung (invalidating
        // every table routing through it), and the caller — still holding
        // `Arc`s to the stale artifacts — extends and tries to publish
        // the fold.  The returned table is self-consistent for the
        // caller, but memoizing it would resurrect exactly the entry the
        // invalidation dropped.
        let module = minic::compile(SRC).unwrap();
        let cache = CodeCache::new();
        let o1 = Arc::new(compiled(PipelineSpec::O1));
        let o2_old = Arc::new(compiled(PipelineSpec::O2));
        let o3 = Arc::new(compiled(PipelineSpec::O3));
        let (k1, k2, k3) = (
            CacheKey::new("f", PipelineSpec::O1),
            CacheKey::new("f", PipelineSpec::O2),
            CacheKey::new("f", PipelineSpec::O3),
        );
        assert!(cache.claim(&k1) && cache.claim(&k2) && cache.claim(&k3));
        cache.publish(&k1, Arc::clone(&o1));
        cache.publish(&k2, Arc::clone(&o2_old));
        cache.publish(&k3, Arc::clone(&o3));
        let p12 = cache.composed("f", &o1, &o2_old, &module).0.unwrap();
        let a23 = cache.composed("f", &o2_old, &o3, &module).0.unwrap();
        assert_eq!(cache.composed_count(), 2);
        // The keep-set recompile republishes O2 mid-extension.
        cache.publish(&k2, Arc::new(compiled(PipelineSpec::O2)));
        assert_eq!(cache.composed_count(), 0, "both stale tables dropped");
        // Extending the stale prefix still *returns* a table (correct for
        // the holder's own Arcs) but must not be memoized under O1→O3.
        let (stale, built) = cache.composed_prefix("f", &o1, &o2_old, &o3, &p12, &a23, &module);
        stale.expect("the fold itself validates against the held Arcs");
        assert!(built, "nothing memoized to return");
        assert_eq!(
            cache.composed_count(),
            0,
            "a fold through a replaced endpoint must not resurrect the \
             invalidated O1→O3 entry"
        );
        // Ditto for a plain composition against the replaced endpoint.
        let (r, _) = cache.composed("f", &o1, &o2_old, &module);
        r.unwrap();
        assert_eq!(cache.composed_count(), 0, "stale O1→O2 not re-memoized");
        // Fresh endpoints memoize again as usual.
        let o2_new = cache.get(&k2).expect("republished artifact");
        cache.composed("f", &o1, &o2_new, &module).0.unwrap();
        assert_eq!(cache.composed_count(), 1);
    }

    #[test]
    fn concurrent_republish_and_composition_leave_no_stale_tables() {
        // Build/republish interleaving under real concurrency: builders
        // race composed-table construction against keep-set-style
        // republishes of the shared middle rung.  Afterwards, every
        // memoized table must have current endpoints — republishing once
        // more must drop *at most* what the final round of builders
        // inserted against the final artifact, never a stale survivor.
        let module = minic::compile(SRC).unwrap();
        let cache = Arc::new(CodeCache::new());
        let o1 = Arc::new(compiled(PipelineSpec::O1));
        let o2: Vec<Arc<CompiledVersion>> = (0..4)
            .map(|_| Arc::new(compiled(PipelineSpec::O2)))
            .collect();
        let (k1, k2) = (
            CacheKey::new("f", PipelineSpec::O1),
            CacheKey::new("f", PipelineSpec::O2),
        );
        assert!(cache.claim(&k1) && cache.claim(&k2));
        cache.publish(&k1, Arc::clone(&o1));
        cache.publish(&k2, Arc::clone(&o2[0]));
        std::thread::scope(|s| {
            for versions in o2.chunks(2) {
                let cache = Arc::clone(&cache);
                let k2 = k2.clone();
                s.spawn(move || {
                    for cv in versions {
                        cache.publish(&k2, Arc::clone(cv));
                    }
                });
            }
            for _ in 0..2 {
                let cache = Arc::clone(&cache);
                let o1 = Arc::clone(&o1);
                let o2 = &o2;
                let module = &module;
                s.spawn(move || {
                    for cv in o2 {
                        let _ = cache.composed("f", &o1, cv, module);
                    }
                });
            }
        });
        // Whatever survived the storm was built against *some* endpoints;
        // verify none are stale: every memoized O1→O2 table must match
        // the currently-published O2, so composing with the current
        // artifact either hits the memo or rebuilds — and a final
        // republish drops exactly the current-endpoint tables, leaving
        // the map empty.
        let current = cache.get(&k2).expect("an O2 artifact is published");
        let (r, _) = cache.composed("f", &o1, &current, &module);
        r.unwrap();
        cache.publish(&k2, Arc::new(compiled(PipelineSpec::O2)));
        let dropped_all = cache.composed_count();
        assert_eq!(
            dropped_all, 0,
            "after invalidating the only shared endpoint, no composed \
             table may survive — a survivor would be a stale fold"
        );
    }

    #[test]
    fn probe_stats_accumulate_per_key() {
        let cache = CodeCache::new();
        let k = CacheKey::new("f", PipelineSpec::O2);
        assert_eq!(cache.probe_stats(&k), (0, 0));
        cache.note_probe(&k, false);
        cache.note_probe(&k, true);
        cache.note_probe(&k, true);
        assert_eq!(cache.probe_stats(&k), (2, 1));
        assert_eq!(
            cache.probe_stats(&CacheKey::new("f", PipelineSpec::O1)),
            (0, 0),
            "per (function, pipeline)"
        );
    }

    #[test]
    fn speculation_guard_checks_and_labels() {
        let s = Speculation::on([(1, 7), (0, 3), (1, 99)]);
        assert_eq!(s.seeds(), &[(0, 3), (1, 7)], "sorted, first per slot");
        assert!(s.matches(&[Val::Int(3), Val::Int(7)]));
        assert!(!s.matches(&[Val::Int(3), Val::Int(8)]));
        assert!(!s.matches(&[Val::Int(3)]), "a missing slot violates");
        assert_eq!(s.violation(&[Val::Int(3), Val::Int(7)]), None);
        assert_eq!(
            s.violation(&[Val::Int(4), Val::Int(7)]),
            Some((0, 3, Some(4)))
        );
        assert_eq!(
            s.violation(&[Val::Int(3)]),
            Some((1, 7, None)),
            "a missing slot reports no fabricated value"
        );
        assert_eq!(s.to_string(), "p0=3,p1=7");
        assert_eq!(pipeline_label(&PipelineSpec::O2, &s), "O2[p0=3,p1=7]");
        assert_eq!(
            pipeline_label(&PipelineSpec::O2, &Speculation::none()),
            "O2"
        );
        assert!(Speculation::none().matches(&[]));
        assert_eq!(
            CacheKey::speculated("f", PipelineSpec::O1, s.clone()).pipeline_label(),
            "O1[p0=3,p1=7]"
        );
        assert_ne!(
            CacheKey::new("f", PipelineSpec::O1),
            CacheKey::speculated("f", PipelineSpec::O1, s),
            "specialized and generic artifacts occupy distinct slots"
        );
    }

    #[test]
    fn speculated_compile_folds_and_guards() {
        let m = minic::compile(
            "fn g(mode, n) {
                 var acc = 0;
                 for (var i = 0; i < n; i = i + 1) {
                     if (mode > 6) { acc = acc + (acc % 11) + i; }
                     else { acc = acc + i * (mode + 2); }
                 }
                 return acc;
             }",
        )
        .unwrap();
        let base = m.get("g").unwrap().clone();
        let spec = compile_speculated(
            base.clone(),
            &PipelineSpec::O2,
            &Speculation::on([(0, 3)]),
            None,
            Variant::Avail,
        )
        .expect("specialized compile validates");
        let generic =
            compile_function(base, &PipelineSpec::O2, Variant::Avail).expect("generic compiles");
        assert_eq!(spec.speculation, Speculation::on([(0, 3)]));
        assert!(generic.speculation.is_empty());
        assert!(
            spec.opt.live_inst_count() < generic.opt.live_inst_count(),
            "seeding mode=3 must fold the dispatch branch: {} !< {}",
            spec.opt.live_inst_count(),
            generic.opt.live_inst_count()
        );
        // The specialized version is equivalent under the speculation —
        // checked on concrete frames with the speculated slot pinned.
        differential_validate_pinned(
            &spec.tier_up,
            &spec.versions.base,
            &spec.versions.opt,
            &m,
            4,
            &spec.speculation,
        )
        .expect("conforming frames transfer correctly");
        assert!(!spec.header_points.is_empty(), "headers precomputed");
    }

    #[test]
    fn roundtrip_vet_rejects_speculation_tainted_reads() {
        use ssair::reconstruct::{CompCode, SsaEntry};
        let m = minic::compile("fn id(a, b) { return a + b; }").unwrap();
        let base = m.get("id").unwrap();
        let entry = |steps: Vec<CompStep>| SsaEntry {
            target: InstId(0),
            comp: CompCode { steps },
            keep: Default::default(),
        };
        let id = |n: u32| ValueId(n);
        let fwd = entry(vec![
            CompStep::Transfer {
                src: id(10),
                dst: id(10),
            }, // identity: real
            CompStep::Transfer {
                src: id(11),
                dst: id(20),
            }, // renamed: not addressable by the escape
        ]);
        // Reads an identity value and both params: safe, no pins.
        let ok = entry(vec![
            CompStep::Transfer {
                src: id(10),
                dst: id(10),
            },
            CompStep::Transfer {
                src: id(0),
                dst: id(0),
            },
            CompStep::Transfer {
                src: id(1),
                dst: id(1),
            },
        ]);
        assert_eq!(vet_value_roundtrip(&fwd, &ok, base), Some(vec![]));
        // Reads the *renamed* transfer's destination: the real value is
        // there but under a different id — rejected.
        let renamed = entry(vec![CompStep::Transfer {
            src: id(20),
            dst: id(20),
        }]);
        assert_eq!(vet_value_roundtrip(&fwd, &renamed, base), None);
        // Reads a value the forward leg never provided at all: rejected
        // (it could only come from the specialized version's mappings).
        let unprovided = entry(vec![CompStep::Transfer {
            src: id(11),
            dst: id(11),
        }]);
        assert_eq!(vet_value_roundtrip(&fwd, &unprovided, base), None);
    }

    #[test]
    fn custom_spec_builds_named_pipeline() {
        let spec = PipelineSpec::custom("cse-only", vec![PassId::Cse, PassId::Adce]);
        assert_eq!(spec.name(), "cse-only");
        let cv = compiled(spec.clone());
        assert_eq!(cv.spec, spec);
    }

    #[test]
    fn cache_claim_publish_lookup() {
        let cache = CodeCache::new();
        let key = CacheKey::new("f", PipelineSpec::O2);
        assert!(cache.get(&key).is_none());
        assert!(cache.claim(&key), "first claim wins");
        assert!(!cache.claim(&key), "second claim loses");
        assert!(cache.get(&key).is_none(), "not ready while compiling");
        cache.publish(&key, Arc::new(compiled(PipelineSpec::O2)));
        assert!(cache.get(&key).is_some());
        assert_eq!(cache.ready_count(), 1);
    }

    #[test]
    fn per_tier_slots_are_independent() {
        let cache = CodeCache::new();
        let k1 = CacheKey::new("f", PipelineSpec::O1);
        let k2 = CacheKey::new("f", PipelineSpec::O2);
        assert!(cache.claim(&k1));
        assert!(cache.claim(&k2), "same function, different rung");
        cache.publish(&k1, Arc::new(compiled(PipelineSpec::O1)));
        cache.publish(&k2, Arc::new(compiled(PipelineSpec::O2)));
        assert_eq!(cache.ready_count(), 2);
    }

    #[test]
    fn abandon_releases_claim() {
        let cache = CodeCache::new();
        let key = CacheKey::new("g", PipelineSpec::O2);
        assert!(cache.claim(&key));
        cache.abandon(&key);
        assert!(cache.claim(&key), "claim available again");
    }

    #[test]
    fn composed_table_is_built_validated_and_memoized() {
        let module = minic::compile(SRC).unwrap();
        let cache = CodeCache::new();
        let o1 = compiled(PipelineSpec::O1);
        let o2 = compiled(PipelineSpec::O2);
        let (r, built) = cache.composed("f", &o1, &o2, &module);
        let table = r.expect("composition validates");
        assert!(built, "first call builds");
        assert!(
            !table.entries.is_empty(),
            "composed O1→O2 table serves points"
        );
        assert_eq!(table.direction, Direction::Forward);
        let (r2, built2) = cache.composed("f", &o1, &o2, &module);
        assert!(!built2, "second call is memoized");
        assert!(Arc::ptr_eq(&table, &r2.unwrap()));
        assert_eq!(cache.composed_count(), 1);
    }

    #[test]
    fn differential_validation_accepts_direct_tables() {
        let module = minic::compile(SRC).unwrap();
        let cv = compiled(PipelineSpec::O2);
        differential_validate(&cv.tier_up, &cv.versions.base, &cv.versions.opt, &module, 4)
            .expect("forward table replays cleanly");
        differential_validate(
            &cv.tier_down,
            &cv.versions.opt,
            &cv.versions.base,
            &module,
            4,
        )
        .expect("backward table replays cleanly");
    }

    #[test]
    fn differential_validation_rejects_corrupted_entries() {
        use ssair::reconstruct::CompStep;
        let module = minic::compile(SRC).unwrap();
        let cv = compiled(PipelineSpec::O2);
        let mut broken = (*cv.tier_up).clone();
        // Corrupt every entry: bolt a bogus constant re-definition of each
        // transferred value onto the end of the compensation code.
        for (_, entry) in broken.entries.values_mut() {
            let dsts: Vec<_> = entry
                .comp
                .steps
                .iter()
                .filter_map(|s| match s {
                    CompStep::Transfer { dst, .. } => Some(*dst),
                    _ => None,
                })
                .collect();
            for dst in dsts {
                entry.comp.steps.push(CompStep::Inline {
                    kind: ssair::InstKind::Const(987_654_321),
                    result: Some(dst),
                });
            }
        }
        let err = differential_validate(&broken, &cv.versions.base, &cv.versions.opt, &module, 4)
            .expect_err("corrupted table must diverge");
        assert!(matches!(err, CompileError::Divergence { .. }));
    }

    const CALL_SRC: &str = "fn poly_step(acc, c, x) {
         if (x < c) { return acc - x; }
         return acc * x + c;
     }
     fn f(x, n) {
         var s = 0;
         for (var i = 0; i < n; i = i + 1) { s = s + poly_step(s, x, 3); }
         return s;
     }";

    fn call_site(f: &Function, callee: &str) -> InstId {
        for b in f.block_ids() {
            for &i in &f.block(b).insts {
                if matches!(&f.inst(i).kind, ssair::InstKind::Call { callee: c, .. } if c == callee)
                {
                    return i;
                }
            }
        }
        panic!("no call to {callee}");
    }

    fn inline_compiled(spec: PipelineSpec) -> (Module, CompiledVersion, CacheKey) {
        let m = minic::compile(CALL_SRC).unwrap();
        let base = m.get("f").unwrap().clone();
        let helper = Arc::new(m.get("poly_step").unwrap().clone());
        let at = call_site(&base, "poly_step");
        let sites = vec![ssair::passes::InlineSite {
            at,
            callee: helper,
            bias: Vec::new(),
        }];
        let ispec = InlineSpec::on([(at, "poly_step".to_string(), 0)]);
        let cv = compile_inlined(
            base,
            &spec,
            &Speculation::none(),
            None,
            Variant::Avail,
            sites,
            ispec.clone(),
        )
        .expect("inlined compile validates");
        let key = CacheKey::inlined("f", spec, Speculation::none(), ispec);
        (m, cv, key)
    }

    #[test]
    fn inlined_compile_splices_and_validates_an_exit_table() {
        let (m, cv, key) = inline_compiled(PipelineSpec::O3);
        assert_eq!(key.pipeline_label(), "O3+inl[poly_step@0]");
        let plan = cv.inline.as_ref().expect("a region was spliced");
        assert_eq!(plan.regions.len(), 1);
        // The call dissolved: no dispatch remains in the optimized body.
        for b in cv.versions.opt.block_ids() {
            for &i in &cv.versions.opt.block(b).insts {
                assert!(
                    !matches!(cv.versions.opt.inst(i).kind, ssair::InstKind::Call { .. }),
                    "no call survives inlining"
                );
            }
        }
        // The exit table serves entries, some of which land *inside* the
        // spliced region — the cross-function deopt path.
        assert!(!plan.to_spliced.entries.is_empty());
        assert!(
            plan.to_spliced
                .entries
                .values()
                .any(|(landing, _)| plan.region_at(landing.loc).is_some()),
            "at least one exit lands mid-region"
        );
        // The inlined artifact computes exactly what the calling base does.
        for (x, n) in [(3i64, 10i64), (7, 1), (2, 25)] {
            let args = vec![Val::Int(x), Val::Int(n)];
            assert_eq!(
                run_function(&cv.versions.opt, &args, &m, 2_000_000).unwrap(),
                run_function(m.get("f").unwrap(), &args, &m, 2_000_000).unwrap(),
            );
        }
    }

    #[test]
    fn republishing_a_callee_evicts_inlined_callers() {
        let (m, cv, key) = inline_compiled(PipelineSpec::O3);
        let cache = CodeCache::new();
        let helper = m.get("poly_step").unwrap().clone();
        let hkey = CacheKey::new("poly_step", PipelineSpec::O1);
        let hcv = compile_function(helper.clone(), &PipelineSpec::O1, Variant::Avail).unwrap();
        assert!(cache.claim(&hkey));
        cache.publish(&hkey, Arc::new(hcv));
        assert_eq!(cache.inline_epoch("poly_step"), 0, "first publish: no bump");
        assert!(cache.claim(&key));
        cache.publish(&key, Arc::new(cv));
        assert!(cache.get(&key).is_some());
        // A keep-set recompile (or layout re-snapshot) republishes the
        // callee: the epoch bumps and the spliced caller is evicted.
        let hcv2 = compile_function(helper, &PipelineSpec::O1, Variant::Avail).unwrap();
        cache.publish(&hkey, Arc::new(hcv2));
        assert_eq!(cache.inline_epoch("poly_step"), 1);
        assert!(cache.get(&key).is_none(), "stale inlined caller evicted");
        assert_eq!(cache.inline_invalidations(), 1);
    }

    #[test]
    fn stale_inflight_inlined_compile_is_abandoned_at_publish() {
        let cache = CodeCache::new();
        let m = minic::compile(CALL_SRC).unwrap();
        let helper = m.get("poly_step").unwrap().clone();
        let hkey = CacheKey::new("poly_step", PipelineSpec::O1);
        assert!(cache.claim(&hkey));
        let hcv = compile_function(helper.clone(), &PipelineSpec::O1, Variant::Avail).unwrap();
        cache.publish(&hkey, Arc::new(hcv));
        let hcv2 = compile_function(helper, &PipelineSpec::O1, Variant::Avail).unwrap();
        cache.publish(&hkey, Arc::new(hcv2)); // epoch → 1
                                              // A caller compile that started before the republish references
                                              // epoch 0; its publish must be dropped, not served stale.
        let (_m, cv, key) = inline_compiled(PipelineSpec::O3);
        assert!(cache.claim(&key));
        cache.publish(&key, Arc::new(cv));
        assert!(cache.get(&key).is_none(), "stale publish abandoned");
        assert!(cache.inline_invalidations() >= 1);
    }
}
