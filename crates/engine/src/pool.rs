//! The background compile queue and worker pool.
//!
//! Interpreters never compile on their request thread: once a function's
//! shared hotness counter crosses the policy threshold, a [`CompileJob`]
//! is enqueued here and a worker tiers the function up off-thread —
//! optimizing, precomputing both OSR entry tables, validating them, and
//! publishing the artifact to the shared [`CodeCache`].  Requests keep
//! interpreting the baseline until a later hot visit finds the artifact
//! ready.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use ssair::reconstruct::Variant;
use ssair::Function;

use crate::cache::{compile_function, CacheKey, CodeCache};
use crate::metrics::{EngineEvent, EngineMetrics, EventLog};

/// One unit of background compilation work.
pub struct CompileJob {
    /// Cache slot the artifact will be published under (already claimed).
    pub key: CacheKey,
    /// The baseline function to optimize.
    pub base: Function,
}

/// A fixed pool of compile workers draining a shared queue.
pub struct CompilerPool {
    tx: Mutex<Option<Sender<CompileJob>>>,
    workers: Vec<JoinHandle<()>>,
}

impl CompilerPool {
    /// Spawns `workers` background compile threads publishing into
    /// `cache`.
    pub fn new(
        workers: usize,
        variant: Variant,
        cache: Arc<CodeCache>,
        metrics: Arc<EngineMetrics>,
        events: Arc<EventLog>,
    ) -> Self {
        let (tx, rx) = channel::<CompileJob>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let events = Arc::clone(&events);
                std::thread::Builder::new()
                    .name(format!("osr-compile-{i}"))
                    .spawn(move || worker_loop(&rx, &cache, &metrics, &events, variant))
                    .expect("spawn compile worker")
            })
            .collect();
        CompilerPool {
            tx: Mutex::new(Some(tx)),
            workers: handles,
        }
    }

    /// Enqueues a job (the caller must have claimed the cache slot).
    pub fn submit(&self, job: CompileJob, metrics: &EngineMetrics) {
        metrics.job_enqueued();
        let guard = self.tx.lock().expect("pool lock");
        if let Some(tx) = guard.as_ref() {
            // A send can only fail after shutdown, when no one waits for
            // the artifact anyway.
            let _ = tx.send(job);
        }
    }
}

impl Drop for CompilerPool {
    fn drop(&mut self) {
        // Closing the channel lets every worker drain remaining jobs and
        // exit; joining keeps artifacts from being dropped mid-publish.
        *self.tx.lock().expect("pool lock") = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<CompileJob>>,
    cache: &CodeCache,
    metrics: &EngineMetrics,
    events: &EventLog,
    variant: Variant,
) {
    loop {
        // Hold the lock only while popping, never while compiling.
        let job = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => return,
        };
        let Ok(job) = job else { return };
        run_job(job, cache, metrics, events, variant);
    }
}

/// Compiles one job and publishes (or abandons) its cache slot.  Shared
/// with the engine's synchronous compile path for debugger-attach
/// requests.
pub fn run_job(
    job: CompileJob,
    cache: &CodeCache,
    metrics: &EngineMetrics,
    events: &EventLog,
    variant: Variant,
) {
    let function = job.key.function.clone();
    match compile_function(job.base, &job.key.spec, variant) {
        Ok(cv) => {
            let nanos = cv.compile_nanos;
            cache.publish(&job.key, Arc::new(cv));
            metrics.job_finished(nanos);
            events.push(EngineEvent::Compiled {
                function,
                pipeline: job.key.spec.name().to_string(),
                micros: nanos / 1_000,
            });
        }
        Err(e) => {
            cache.abandon(&job.key);
            metrics.job_finished(0);
            events.push(EngineEvent::CompileRejected {
                function,
                reason: e.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pool_compiles_and_publishes() {
        let cache = Arc::new(CodeCache::new());
        let metrics = Arc::new(EngineMetrics::default());
        let events = Arc::new(EventLog::default());
        let pool = CompilerPool::new(
            2,
            Variant::Avail,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            Arc::clone(&events),
        );
        let m = minic::compile(
            "fn f(n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + i * 3; }
                 return s;
             }",
        )
        .unwrap();
        let key = CacheKey::new("f", crate::cache::PipelineSpec::O2);
        assert!(cache.claim(&key));
        pool.submit(
            CompileJob {
                key: key.clone(),
                base: m.get("f").unwrap().clone(),
            },
            &metrics,
        );
        // Wait for the background publish.
        for _ in 0..500 {
            if cache.get(&key).is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let cv = cache.get(&key).expect("artifact published");
        assert!(cv.tier_up.coverage() > 0.0);
        drop(pool);
        let snap = metrics.snapshot(0, 0);
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.queue_depth, 0);
        assert!(matches!(
            events.drain().as_slice(),
            [EngineEvent::Compiled { .. }]
        ));
    }
}
