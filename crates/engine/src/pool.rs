//! The background compile queue and worker pool.
//!
//! Interpreters never compile on their request thread: once a function's
//! shared hotness counter crosses the policy threshold, a [`CompileJob`]
//! is enqueued here and a worker tiers the function up off-thread —
//! optimizing, precomputing both OSR entry tables, validating them, and
//! publishing the artifact to the shared [`CodeCache`].  Requests keep
//! interpreting the baseline until a later hot visit finds the artifact
//! ready.
//!
//! The queue is a *priority* queue, not FIFO: each job carries the
//! submitting function's hotness at enqueue time, and workers pop the
//! hottest job first — under skewed traffic the functions serving the
//! most requests get their artifacts earliest, while cold-tail jobs wait.
//! Ties pop in submission order.

use std::collections::BinaryHeap;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use ssair::passes::BlockFrequencies;
use ssair::reconstruct::Variant;
use ssair::Function;

use crate::cache::{compile_inlined, CacheKey, CodeCache};
use crate::metrics::{EngineEvent, EngineMetrics, EventLog};

/// One unit of background compilation work.
pub struct CompileJob {
    /// Cache slot the artifact will be published under (already claimed).
    pub key: CacheKey,
    /// The baseline function to optimize.
    pub base: Function,
    /// Scheduling priority: the submitting function's profile hotness at
    /// enqueue time.  Hotter jobs pop before colder ones.
    pub priority: u64,
    /// Block-frequency summary snapshotted from the shared profile at
    /// enqueue time — the input to profile-guided block layout on the
    /// O3/O4 rungs.  `None` when the submitter had no profile to offer
    /// (or layout is disabled); the worker then compiles layout-free.
    pub profile: Option<BlockFrequencies>,
    /// Hot call sites to splice ([`ssair::passes::InlineCalls`] runs
    /// ahead of the rung's mix), matching the key's `InlinedCallee`
    /// assumptions site for site.  Empty for call-preserving compiles.
    pub sites: Vec<ssair::passes::InlineSite>,
}

/// Heap entry: max by priority, then FIFO (lowest sequence first) among
/// equal priorities.
struct QueuedJob {
    priority: u64,
    seq: u64,
    job: CompileJob,
}

impl PartialEq for QueuedJob {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}

impl Eq for QueuedJob {}

impl PartialOrd for QueuedJob {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for QueuedJob {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher priority wins; among equals the
        // *lower* sequence number must surface first.
        self.priority
            .cmp(&other.priority)
            .then(other.seq.cmp(&self.seq))
    }
}

/// The shared hot-first compile queue ([`CompilerPool`]'s backing store,
/// exposed for direct use in tests).
#[derive(Default)]
pub struct CompileQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueState {
    heap: BinaryHeap<QueuedJob>,
    next_seq: u64,
    closed: bool,
}

impl CompileQueue {
    /// Pushes a job; hotter jobs pop first.
    pub fn push(&self, job: CompileJob) {
        let mut state = self.state.lock().expect("queue lock");
        let seq = state.next_seq;
        state.next_seq += 1;
        state.heap.push(QueuedJob {
            priority: job.priority,
            seq,
            job,
        });
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the hottest queued job; `None` once the queue is closed
    /// and drained.
    pub fn pop(&self) -> Option<CompileJob> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(entry) = state.heap.pop() {
                return Some(entry.job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// The hottest queued job, if one is already pending (non-blocking).
    pub fn try_pop(&self) -> Option<CompileJob> {
        self.state
            .lock()
            .expect("queue lock")
            .heap
            .pop()
            .map(|e| e.job)
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: workers drain what is left, then exit.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

/// A fixed pool of compile workers draining a shared hot-first queue.
pub struct CompilerPool {
    queue: Arc<CompileQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl CompilerPool {
    /// Spawns `workers` background compile threads publishing into
    /// `cache`.
    pub fn new(
        workers: usize,
        variant: Variant,
        cache: Arc<CodeCache>,
        metrics: Arc<EngineMetrics>,
        events: Arc<EventLog>,
    ) -> Self {
        let queue = Arc::new(CompileQueue::default());
        let handles = (0..workers.max(1))
            .map(|i| {
                let queue = Arc::clone(&queue);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let events = Arc::clone(&events);
                std::thread::Builder::new()
                    .name(format!("osr-compile-{i}"))
                    .spawn(move || worker_loop(&queue, &cache, &metrics, &events, variant))
                    .expect("spawn compile worker")
            })
            .collect();
        CompilerPool {
            queue,
            workers: handles,
        }
    }

    /// Enqueues a job (the caller must have claimed the cache slot).
    pub fn submit(&self, job: CompileJob, metrics: &EngineMetrics) {
        metrics.job_enqueued();
        self.queue.push(job);
    }
}

impl Drop for CompilerPool {
    fn drop(&mut self) {
        // Closing the queue lets every worker drain remaining jobs and
        // exit; joining keeps artifacts from being dropped mid-publish.
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    queue: &CompileQueue,
    cache: &CodeCache,
    metrics: &EngineMetrics,
    events: &EventLog,
    variant: Variant,
) {
    while let Some(job) = queue.pop() {
        run_job(job, cache, metrics, events, variant);
    }
}

/// Compiles one job and publishes (or abandons) its cache slot.  Shared
/// with the engine's synchronous compile path for debugger-attach
/// requests.
pub fn run_job(
    job: CompileJob,
    cache: &CodeCache,
    metrics: &EngineMetrics,
    events: &EventLog,
    variant: Variant,
) {
    use std::sync::atomic::Ordering;
    let function = job.key.function.clone();
    let label = job.key.pipeline_label();
    match compile_inlined(
        job.base,
        &job.key.pipeline,
        &job.key.speculation(),
        job.profile.as_ref(),
        variant,
        job.sites,
        job.key.inline_spec(),
    ) {
        Ok(cv) => {
            let nanos = cv.compile_nanos;
            let extension = (cv.extension_rounds > 0).then_some((cv.extension_rounds, cv.keep));
            cache.publish(&job.key, Arc::new(cv));
            metrics.job_finished(nanos);
            if let Some((rounds, kept)) = extension {
                metrics.extension_recompiles.fetch_add(1, Ordering::Relaxed);
                events.push(EngineEvent::ExtensionRecompiled {
                    function: function.clone(),
                    pipeline: label.clone(),
                    rounds,
                    kept,
                });
            }
            events.push(EngineEvent::Compiled {
                function,
                pipeline: label,
                micros: nanos / 1_000,
            });
        }
        Err(e) => {
            cache.abandon(&job.key);
            metrics.job_finished(0);
            events.push(EngineEvent::CompileRejected {
                function,
                reason: e.to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pool_compiles_and_publishes() {
        let cache = Arc::new(CodeCache::new());
        let metrics = Arc::new(EngineMetrics::default());
        let events = Arc::new(EventLog::default());
        let pool = CompilerPool::new(
            2,
            Variant::Avail,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            Arc::clone(&events),
        );
        let m = minic::compile(
            "fn f(n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) { s = s + i * 3; }
                 return s;
             }",
        )
        .unwrap();
        let key = CacheKey::new("f", crate::cache::PipelineSpec::O2);
        assert!(cache.claim(&key));
        pool.submit(
            CompileJob {
                key: key.clone(),
                base: m.get("f").unwrap().clone(),
                priority: 1,
                profile: None,
                sites: Vec::new(),
            },
            &metrics,
        );
        // Wait for the background publish.
        for _ in 0..500 {
            if cache.get(&key).is_some() {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let cv = cache.get(&key).expect("artifact published");
        assert!(cv.tier_up.coverage() > 0.0);
        drop(pool);
        let snap = metrics.snapshot(0, 0, crate::cache::InvalidationCounts::default());
        assert_eq!(snap.compiles, 1);
        assert_eq!(snap.queue_depth, 0);
        assert!(matches!(
            events.drain().as_slice(),
            [EngineEvent::Compiled { .. }]
        ));
    }

    #[test]
    fn queue_pops_hottest_job_first_fifo_on_ties() {
        let m = minic::compile("fn f(x) { return x; }").unwrap();
        let base = m.get("f").unwrap();
        let job = |name: &str, priority: u64| CompileJob {
            key: CacheKey::new(name, crate::cache::PipelineSpec::O1),
            base: base.clone(),
            priority,
            profile: None,
            sites: Vec::new(),
        };
        let queue = CompileQueue::default();
        queue.push(job("cold", 2));
        queue.push(job("hot", 90));
        queue.push(job("warm", 40));
        queue.push(job("warm-later", 40));
        assert_eq!(queue.len(), 4);
        let order: Vec<String> = std::iter::from_fn(|| queue.try_pop())
            .map(|j| j.key.function)
            .collect();
        assert_eq!(order, ["hot", "warm", "warm-later", "cold"]);
        assert!(queue.is_empty());
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let m = minic::compile("fn f(x) { return x; }").unwrap();
        let queue = CompileQueue::default();
        queue.push(CompileJob {
            key: CacheKey::new("f", crate::cache::PipelineSpec::O1),
            base: m.get("f").unwrap().clone(),
            priority: 7,
            profile: None,
            sites: Vec::new(),
        });
        queue.close();
        assert!(queue.pop().is_some(), "queued work survives the close");
        assert!(queue.pop().is_none(), "then the queue ends");
    }
}
