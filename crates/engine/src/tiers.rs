//! The tier ladder: which pipeline each rung runs and when a hot function
//! climbs to the next one.
//!
//! A [`TierPolicy`] replaces the old single `hotness_threshold` knob with
//! a threshold *per tier*: the [`crate::Engine`]'s controller reads the
//! shared `(function, tier)` counter of the tier a frame currently runs
//! ([`tinyvm::profile::ProfileTable`]) and consults the policy to pick the
//! *next* pipeline once that counter crosses the tier's threshold.
//!
//! The policy also owns the *speculation* knobs: when a climbed frame's
//! guard fails ([`SpeculationPolicy`]), which rung it falls back to
//! ([`TierPolicy::deopt_target`]), and how aggressively repeated deopts of
//! the same function demote its climb thresholds
//! ([`TierPolicy::threshold_after_deopts`] — each recorded deopt doubles
//! the visits required before the function becomes climb-eligible again,
//! so a function that keeps speculating wrong spends progressively longer
//! re-profiling at lower rungs).

use std::fmt;

use crate::cache::PipelineSpec;

pub use tinyvm::profile::{SpeculationPolicy, Tier};

/// Policy hook deciding the engine's tier ladder: the ordered pipeline
/// rungs above the baseline interpreter, and the per-tier hotness
/// thresholds that gate each climb.
pub trait TierPolicy: fmt::Debug + Send + Sync {
    /// The optimized rungs in ascending order: `ladder()[k-1]` is the
    /// pipeline of `Tier(k)`.  An empty ladder never tiers up.
    fn ladder(&self) -> &[PipelineSpec];

    /// Cumulative shared `(function, tier)` OSR-point visits at `from`
    /// before the hop to `from.next()` becomes eligible (compile enqueued,
    /// then transition once the artifact and — off the baseline — the
    /// composed table are ready).
    fn threshold(&self, from: Tier) -> u64;

    /// The highest rung.
    fn top(&self) -> Tier {
        Tier(self.ladder().len() as u8)
    }

    /// The pipeline of `tier` (`None` for the baseline or rungs above the
    /// ladder).
    fn spec(&self, tier: Tier) -> Option<&PipelineSpec> {
        if tier.is_baseline() {
            None
        } else {
            self.ladder().get(tier.0 as usize - 1)
        }
    }

    /// The rung above `from`, if the ladder has one.
    fn next_tier(&self, from: Tier) -> Option<Tier> {
        ((from.0 as usize) < self.ladder().len()).then(|| from.next())
    }

    /// The speculation-guard knobs climbed frames run under.
    fn speculation(&self) -> SpeculationPolicy {
        SpeculationPolicy::default()
    }

    /// The rung a frame falls back to when a speculation guard fails at
    /// `from`.  Must be below `from`; the controller clamps anything else
    /// to the baseline.  Default: all the way down to the baseline, where
    /// the full profile (hotness *and* branch edges) keeps accumulating.
    fn deopt_target(&self, _from: Tier) -> Tier {
        Tier::BASELINE
    }

    /// The climb threshold at `from` after `deopts` recorded
    /// speculation-failure deopts of the function: adaptive demotion.
    /// Default: the base threshold doubles per deopt, capped at 64× —
    /// a function that repeatedly speculates wrong re-earns each rung
    /// with a longer profile, but a long-lived service never pins a
    /// function to the interpreter permanently (demotion is a delay, not
    /// a one-way ratchet).
    fn threshold_after_deopts(&self, from: Tier, deopts: u64) -> u64 {
        const MAX_DEMOTION_SHIFT: u64 = 6;
        let factor = 1u64 << deopts.min(MAX_DEMOTION_SHIFT);
        self.threshold(from).saturating_mul(factor)
    }
}

/// The standard [`TierPolicy`]: an explicit list of `(pipeline, threshold)`
/// rungs, with configurable speculation knobs.
#[derive(Clone, Debug)]
pub struct LadderPolicy {
    specs: Vec<PipelineSpec>,
    thresholds: Vec<u64>,
    speculation: SpeculationPolicy,
    deopt_target: Tier,
}

impl LadderPolicy {
    /// A ladder from explicit `(pipeline, threshold)` rungs; `threshold`
    /// of rung `k` is the visit count at `Tier(k-1)` that makes the climb
    /// to `Tier(k)` eligible.
    pub fn new(rungs: Vec<(PipelineSpec, u64)>) -> Self {
        let (specs, thresholds) = rungs.into_iter().unzip();
        LadderPolicy {
            specs,
            thresholds,
            speculation: SpeculationPolicy::default(),
            deopt_target: Tier::BASELINE,
        }
    }

    /// Overrides the speculation-guard knobs.
    #[must_use]
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = speculation;
        self
    }

    /// Overrides the guard-failure fallback rung (clamped below the
    /// deopting frame's rung at fire time).
    #[must_use]
    pub fn with_deopt_target(mut self, target: Tier) -> Self {
        self.deopt_target = target;
        self
    }

    /// The default two-rung ladder: `O1` once a function's baseline
    /// visits reach `o1_after`, then `O2` once its O1 visits reach
    /// `o2_after`.
    pub fn two_tier(o1_after: u64, o2_after: u64) -> Self {
        LadderPolicy::new(vec![
            (PipelineSpec::O1, o1_after),
            (PipelineSpec::O2, o2_after),
        ])
    }

    /// A single-rung ladder (the pre-ladder engine behaviour): `spec`
    /// once baseline visits reach `after`.
    pub fn single(spec: PipelineSpec, after: u64) -> Self {
        LadderPolicy::new(vec![(spec, after)])
    }
}

impl TierPolicy for LadderPolicy {
    fn ladder(&self) -> &[PipelineSpec] {
        &self.specs
    }

    fn threshold(&self, from: Tier) -> u64 {
        self.thresholds
            .get(from.0 as usize)
            .copied()
            .unwrap_or(u64::MAX)
    }

    fn speculation(&self) -> SpeculationPolicy {
        self.speculation
    }

    fn deopt_target(&self, _from: Tier) -> Tier {
        self.deopt_target
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_indexing() {
        let p = LadderPolicy::two_tier(8, 24);
        assert_eq!(p.top(), Tier(2));
        assert_eq!(p.spec(Tier::BASELINE), None);
        assert_eq!(p.spec(Tier(1)), Some(&PipelineSpec::O1));
        assert_eq!(p.spec(Tier(2)), Some(&PipelineSpec::O2));
        assert_eq!(p.spec(Tier(3)), None);
        assert_eq!(p.threshold(Tier::BASELINE), 8);
        assert_eq!(p.threshold(Tier(1)), 24);
        assert_eq!(p.threshold(Tier(2)), u64::MAX, "top never climbs");
        assert_eq!(p.next_tier(Tier::BASELINE), Some(Tier(1)));
        assert_eq!(p.next_tier(Tier(2)), None);
    }

    #[test]
    fn empty_ladder_never_tiers() {
        let p = LadderPolicy::new(vec![]);
        assert_eq!(p.top(), Tier::BASELINE);
        assert_eq!(p.next_tier(Tier::BASELINE), None);
    }

    #[test]
    fn tier_display() {
        assert_eq!(Tier::BASELINE.to_string(), "O0");
        assert_eq!(Tier(2).to_string(), "O2");
        assert!(Tier::BASELINE.is_baseline());
        assert_eq!(Tier::BASELINE.next(), Tier(1));
    }

    #[test]
    fn thresholds_demote_adaptively_after_deopts() {
        let p = LadderPolicy::two_tier(8, 24);
        assert_eq!(p.threshold_after_deopts(Tier::BASELINE, 0), 8);
        assert_eq!(p.threshold_after_deopts(Tier::BASELINE, 1), 16);
        assert_eq!(p.threshold_after_deopts(Tier::BASELINE, 3), 64);
        assert_eq!(p.threshold_after_deopts(Tier(1), 2), 96);
        assert_eq!(
            p.threshold_after_deopts(Tier::BASELINE, 200),
            8 * 64,
            "demotion is capped: a function can always re-climb eventually"
        );
        assert_eq!(
            p.threshold_after_deopts(Tier(2), 1),
            u64::MAX,
            "rungs above the ladder stay unclimbable"
        );
    }

    #[test]
    fn speculation_knobs_are_configurable() {
        let p = LadderPolicy::two_tier(8, 24);
        assert_eq!(
            p.deopt_target(Tier(2)),
            Tier::BASELINE,
            "default: all the way down"
        );
        assert_eq!(
            p.speculation().tolerance,
            SpeculationPolicy::default().tolerance
        );
        let custom = LadderPolicy::two_tier(8, 24)
            .with_deopt_target(Tier(1))
            .with_speculation(SpeculationPolicy {
                min_samples: 4,
                bias_percent: 75,
                tolerance: 2,
            });
        assert_eq!(custom.deopt_target(Tier(2)), Tier(1));
        assert_eq!(custom.speculation().bias_percent, 75);
    }
}
