//! The tier transition graph: which pipeline each rung runs, which hops
//! between rungs are allowed, and when a hot function takes them.
//!
//! A [`TierPolicy`] exposes a [`TierGraph`] — rungs plus allowed up/down
//! edges with per-edge thresholds — instead of the old baked-in pair of
//! thresholds: the [`crate::Engine`]'s controller reads the shared
//! `(function, tier)` counter of the rung a frame currently runs
//! ([`tinyvm::profile::ProfileTable`]) and follows the graph's outgoing
//! *up* edge once that counter crosses the edge's threshold; a guard
//! failure follows one of the graph's *down* edges.
//!
//! The policy also owns the *speculation* knobs: the per-rung guard
//! policy ([`TierPolicy::speculation_at`] — deeper rungs speculate more
//! aggressively by default), where a failing frame falls
//! ([`TierPolicy::deopt_strategy`], adaptive by default: one rung when
//! the rung below is bias-neutral for the failing branch, the baseline
//! otherwise), and how repeated deopts and the code cache's hit rate
//! reshape the climb thresholds ([`TierPolicy::threshold_after_deopts`],
//! [`TierPolicy::threshold_with_cache`]).

use std::fmt;

use crate::cache::PipelineSpec;

pub use tinyvm::profile::{SpeculationPolicy, Tier, ValueSpeculationPolicy};

/// One allowed transition of a [`TierGraph`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TierEdge {
    /// Rung the edge leaves.
    pub from: Tier,
    /// Rung the edge enters.
    pub to: Tier,
    /// For an *up* edge: cumulative shared `(function, from)` OSR-point
    /// visits before the hop becomes eligible.  Down edges are
    /// threshold-free (guards decide when they fire) and carry `0`.
    pub threshold: u64,
}

/// The transition graph over N rungs: `Tier(0)` is the baseline
/// interpreter, `Tier(k)` for `k ≥ 1` runs `rungs()[k-1]`, and the only
/// legal hops are the listed edges.
///
/// [`TierGraph::chain`] builds the standard ladder shape — up edges
/// `k → k+1` gated by per-edge thresholds, down edges `k → k-1` (the
/// adaptive one-rung deopt) and `k → 0` (the full deopt) — but arbitrary
/// DAG-shaped graphs (skip edges, multiple down targets) are legal as
/// long as up edges go up and down edges go down.
#[derive(Clone, Debug)]
pub struct TierGraph {
    rungs: Vec<PipelineSpec>,
    up: Vec<TierEdge>,
    down: Vec<TierEdge>,
}

impl TierGraph {
    /// A graph from explicit rungs and edges.
    ///
    /// # Panics
    ///
    /// Panics when an edge references a rung outside the graph or does
    /// not strictly ascend/descend — a policy-construction bug, never a
    /// user error.
    pub fn new(rungs: Vec<PipelineSpec>, edges: Vec<TierEdge>) -> Self {
        let top = rungs.len() as u8;
        let (mut up, mut down) = (Vec::new(), Vec::new());
        for e in edges {
            assert!(
                e.from.0 <= top && e.to.0 <= top && e.from != e.to,
                "edge {:?}→{:?} leaves the {top}-rung graph",
                e.from,
                e.to
            );
            if e.to > e.from {
                up.push(e);
            } else {
                down.push(e);
            }
        }
        // Down edges out of one rung are tried highest-target-first.
        down.sort_by(|a, b| a.from.cmp(&b.from).then(b.to.cmp(&a.to)));
        TierGraph { rungs, up, down }
    }

    /// The standard ladder: up edges `k → k+1` (edge `k`'s threshold is
    /// `rungs[k].1`, the visits at `Tier(k)` before `Tier(k+1)` becomes
    /// eligible), down edges `k → k-1` and `k → 0` from every optimized
    /// rung.
    pub fn chain(rungs: Vec<(PipelineSpec, u64)>) -> Self {
        let mut edges = Vec::new();
        for (k, (_, threshold)) in rungs.iter().enumerate() {
            let k = k as u8;
            edges.push(TierEdge {
                from: Tier(k),
                to: Tier(k + 1),
                threshold: *threshold,
            });
            let from = Tier(k + 1);
            edges.push(TierEdge {
                from,
                to: Tier(k),
                threshold: 0,
            });
            if k > 0 {
                edges.push(TierEdge {
                    from,
                    to: Tier::BASELINE,
                    threshold: 0,
                });
            }
        }
        TierGraph::new(rungs.into_iter().map(|(spec, _)| spec).collect(), edges)
    }

    /// The optimized rungs in ascending order: `rungs()[k-1]` is the
    /// pipeline of `Tier(k)`.
    pub fn rungs(&self) -> &[PipelineSpec] {
        &self.rungs
    }

    /// The highest rung.
    pub fn top(&self) -> Tier {
        Tier(self.rungs.len() as u8)
    }

    /// The pipeline of `tier` (`None` for the baseline or rungs above the
    /// graph).
    pub fn spec(&self, tier: Tier) -> Option<&PipelineSpec> {
        if tier.is_baseline() {
            None
        } else {
            self.rungs.get(tier.0 as usize - 1)
        }
    }

    /// The up edge out of `from`, if the graph has one (the first listed
    /// wins when a custom graph declares several).
    pub fn up_edge(&self, from: Tier) -> Option<&TierEdge> {
        self.up.iter().find(|e| e.from == from)
    }

    /// The down-edge targets out of `from`, highest rung first — the
    /// candidate landing rungs of an adaptive deopt.
    pub fn down_targets(&self, from: Tier) -> impl Iterator<Item = Tier> + '_ {
        self.down
            .iter()
            .filter(move |e| e.from == from)
            .map(|e| e.to)
    }

    /// Whether the graph allows a direct `from → to` hop.
    pub fn has_edge(&self, from: Tier, to: Tier) -> bool {
        self.up
            .iter()
            .chain(self.down.iter())
            .any(|e| e.from == from && e.to == to)
    }

    /// Every edge of the graph (up edges first).
    pub fn edges(&self) -> impl Iterator<Item = &TierEdge> {
        self.up.iter().chain(self.down.iter())
    }
}

/// Where a bias-kind assumption violation (a branch guard firing — see
/// [`crate::DeoptReason::AssumptionViolated`]) lands the deopting frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeoptStrategy {
    /// Follow the graph's down edges to the highest rung that is
    /// *bias-neutral* for the failing branch — a rung whose speculation
    /// policy ([`TierPolicy::speculation_at`]) would not guard the branch
    /// under the current profile, so the landed frame keeps the rest of
    /// its optimization instead of re-interpreting everything.  When
    /// every intermediate candidate still speculates on the branch, fall
    /// all the way to the baseline, where the edge profile is corrected
    /// fastest.
    Adaptive,
    /// Always fall to the given rung.  Clamped to the baseline — always
    /// a legal emergency landing, every artifact carries a direct
    /// backward table — when the target is not below the deopting
    /// frame's rung or the graph declares no such down edge.
    Fixed(Tier),
}

/// Policy hook deciding the engine's tier transition graph: the pipeline
/// rungs above the baseline interpreter, the allowed hops between them,
/// and the thresholds/speculation knobs that gate each hop.
pub trait TierPolicy: fmt::Debug + Send + Sync {
    /// The transition graph.
    fn graph(&self) -> &TierGraph;

    /// The optimized rungs in ascending order: `ladder()[k-1]` is the
    /// pipeline of `Tier(k)`.  An empty ladder never tiers up.
    fn ladder(&self) -> &[PipelineSpec] {
        self.graph().rungs()
    }

    /// Cumulative shared `(function, from)` OSR-point visits before the
    /// up edge out of `from` becomes eligible (compile enqueued, then
    /// transition once the artifact and — off the baseline — the composed
    /// table are ready).
    fn threshold(&self, from: Tier) -> u64 {
        self.graph().up_edge(from).map_or(u64::MAX, |e| e.threshold)
    }

    /// The highest rung.
    fn top(&self) -> Tier {
        self.graph().top()
    }

    /// The pipeline of `tier` (`None` for the baseline or rungs above the
    /// graph).
    fn spec(&self, tier: Tier) -> Option<&PipelineSpec> {
        self.graph().spec(tier)
    }

    /// The rung the up edge out of `from` enters, if the graph has one.
    fn next_tier(&self, from: Tier) -> Option<Tier> {
        self.graph().up_edge(from).map(|e| e.to)
    }

    /// The base speculation-guard knobs.
    fn speculation(&self) -> SpeculationPolicy {
        SpeculationPolicy::default()
    }

    /// The speculation-guard knobs frames at `tier` run under.  Default:
    /// the base [`TierPolicy::speculation`] at every rung; policies with
    /// a speculation *gradient* (deeper rungs guard more branches) return
    /// rung-specific knobs here — which is what gives the adaptive deopt
    /// its one-rung landing sites.
    fn speculation_at(&self, _tier: Tier) -> SpeculationPolicy {
        self.speculation()
    }

    /// Where a frame whose guard failed at `from` falls.  Default:
    /// [`DeoptStrategy::Adaptive`].
    fn deopt_strategy(&self, _from: Tier) -> DeoptStrategy {
        DeoptStrategy::Adaptive
    }

    /// The *value*-speculation knobs: when an argument slot's observed
    /// values are stable enough that a climb may target a constant-seeded
    /// specialized version of the next rung ([`ValueSpeculationPolicy`]).
    /// `None` disables value speculation entirely (climbs only ever use
    /// generic artifacts).  Default: the standard knobs (16 samples, 90%
    /// stability).
    fn value_speculation(&self) -> Option<ValueSpeculationPolicy> {
        Some(ValueSpeculationPolicy::default())
    }

    /// The climb threshold at `from` after `deopts` recorded
    /// speculation-failure deopts of the function: adaptive demotion.
    /// Default: the base threshold doubles per deopt, capped at 64× —
    /// a function that repeatedly speculates wrong re-earns each rung
    /// with a longer profile, but a long-lived service never pins a
    /// function to the interpreter permanently (demotion is a delay, not
    /// a one-way ratchet).
    fn threshold_after_deopts(&self, from: Tier, deopts: u64) -> u64 {
        const MAX_DEMOTION_SHIFT: u64 = 6;
        let factor = 1u64 << deopts.min(MAX_DEMOTION_SHIFT);
        self.threshold(from).saturating_mul(factor)
    }

    /// The climb threshold at `from` given every adaptive input: recorded
    /// deopts plus the code cache's probe history `(hits, misses)` for
    /// the *next* rung's `(function, pipeline)` artifact.  Default: the
    /// demoted threshold, halved when at least ¾ of the probes hit (the
    /// artifact is routinely ready — compiling is effectively free, climb
    /// sooner) and doubled under sustained misses (at least ¾ — the
    /// compile pipeline is behind this function, don't pile on).  Fewer
    /// than 4 probes adapt nothing.
    fn threshold_with_cache(&self, from: Tier, deopts: u64, hits: u64, misses: u64) -> u64 {
        const MIN_PROBES: u64 = 4;
        let base = self.threshold_after_deopts(from, deopts);
        let total = hits + misses;
        if total < MIN_PROBES || base == u64::MAX {
            return base;
        }
        if hits * 4 >= total * 3 {
            (base / 2).max(1)
        } else if misses * 4 >= total * 3 {
            base.saturating_mul(2)
        } else {
            base
        }
    }
}

/// How many percentage points of branch bias each rung below the top
/// rung adds to its guard requirement under [`LadderPolicy`]'s default
/// speculation gradient (see [`LadderPolicy::with_bias_step`]).
pub const DEFAULT_BIAS_STEP: u8 = 5;

/// A climb threshold no realistic request stream reaches (`2⁴⁰` visits).
/// Ladders built with every threshold at this value never tier up — how
/// differential tests drive compile-heavy kernels through the engine
/// path without paying for their optimized-rung compiles.
pub const NEVER_HOT: u64 = 1 << 40;

/// The standard [`TierPolicy`]: a chain-shaped [`TierGraph`] from
/// explicit `(pipeline, threshold)` rungs, a per-rung speculation
/// gradient, and configurable deopt strategy.
#[derive(Clone, Debug)]
pub struct LadderPolicy {
    graph: TierGraph,
    speculation: SpeculationPolicy,
    value_speculation: Option<ValueSpeculationPolicy>,
    strategy: DeoptStrategy,
    /// Per-rung bias tightening below the top (percentage points per
    /// rung): rung `top - d` guards a branch only at
    /// `bias_percent + d * bias_step` (capped at 100).
    bias_step: u8,
}

impl LadderPolicy {
    /// A chain graph from explicit `(pipeline, threshold)` rungs;
    /// `threshold` of rung `k` is the visit count at `Tier(k-1)` that
    /// makes the climb to `Tier(k)` eligible.
    pub fn new(rungs: Vec<(PipelineSpec, u64)>) -> Self {
        LadderPolicy::from_graph(TierGraph::chain(rungs))
    }

    /// A policy over an explicit (possibly non-chain) transition graph.
    pub fn from_graph(graph: TierGraph) -> Self {
        LadderPolicy {
            graph,
            speculation: SpeculationPolicy::default(),
            value_speculation: Some(ValueSpeculationPolicy::default()),
            strategy: DeoptStrategy::Adaptive,
            bias_step: DEFAULT_BIAS_STEP,
        }
    }

    /// Overrides the top rung's speculation-guard knobs (lower rungs
    /// tighten them by the bias step).
    #[must_use]
    pub fn with_speculation(mut self, speculation: SpeculationPolicy) -> Self {
        self.speculation = speculation;
        self
    }

    /// Replaces the adaptive deopt with a fixed guard-failure fallback
    /// rung (clamped below the deopting frame's rung at fire time).
    #[must_use]
    pub fn with_deopt_target(mut self, target: Tier) -> Self {
        self.strategy = DeoptStrategy::Fixed(target);
        self
    }

    /// Overrides the value-speculation knobs; `None` disables value
    /// speculation (climbs only ever target generic artifacts).
    #[must_use]
    pub fn with_value_speculation(mut self, policy: Option<ValueSpeculationPolicy>) -> Self {
        self.value_speculation = policy;
        self
    }

    /// Overrides the speculation gradient: each rung below the top
    /// requires `step` more percentage points of branch bias before it
    /// guards.  `0` makes every rung speculate identically (an adaptive
    /// deopt then always falls to the baseline, since a branch biased
    /// enough to fail at rung `k` is biased enough to guard at `k-1`).
    #[must_use]
    pub fn with_bias_step(mut self, step: u8) -> Self {
        self.bias_step = step;
        self
    }

    /// The full SSA chain `O0 → O1 → O2 → O3` (the pre-machine default
    /// graph).
    pub fn three_tier(o1_after: u64, o2_after: u64, o3_after: u64) -> Self {
        LadderPolicy::new(vec![
            (PipelineSpec::O1, o1_after),
            (PipelineSpec::O2, o2_after),
            (PipelineSpec::O3, o3_after),
        ])
    }

    /// The default graph: the `O0 → O1 → O2 → O3 → O4` chain ending at
    /// the register-allocated machine rung ([`PipelineSpec::O4`]) with
    /// the default thresholds.
    pub fn four_tier(o1_after: u64, o2_after: u64, o3_after: u64, o4_after: u64) -> Self {
        LadderPolicy::new(vec![
            (PipelineSpec::O1, o1_after),
            (PipelineSpec::O2, o2_after),
            (PipelineSpec::O3, o3_after),
            (PipelineSpec::O4, o4_after),
        ])
    }

    /// A two-rung chain: `O1` once a function's baseline visits reach
    /// `o1_after`, then `O2` once its O1 visits reach `o2_after`.
    pub fn two_tier(o1_after: u64, o2_after: u64) -> Self {
        LadderPolicy::new(vec![
            (PipelineSpec::O1, o1_after),
            (PipelineSpec::O2, o2_after),
        ])
    }

    /// A single-rung chain (the pre-ladder engine behaviour): `spec`
    /// once baseline visits reach `after`.
    pub fn single(spec: PipelineSpec, after: u64) -> Self {
        LadderPolicy::new(vec![(spec, after)])
    }
}

impl Default for LadderPolicy {
    /// The default transition graph: `O0 → O1 → O2 → O3 → O4`, topped
    /// by the register-allocated machine rung.
    fn default() -> Self {
        LadderPolicy::four_tier(32, 96, 224, 448)
    }
}

impl TierPolicy for LadderPolicy {
    fn graph(&self) -> &TierGraph {
        &self.graph
    }

    fn speculation(&self) -> SpeculationPolicy {
        self.speculation
    }

    fn speculation_at(&self, tier: Tier) -> SpeculationPolicy {
        let depth = self.graph.top().0.saturating_sub(tier.0);
        let tightened = self
            .speculation
            .bias_percent
            .saturating_add(self.bias_step.saturating_mul(depth))
            .min(100);
        SpeculationPolicy {
            bias_percent: tightened,
            ..self.speculation
        }
    }

    fn deopt_strategy(&self, _from: Tier) -> DeoptStrategy {
        self.strategy
    }

    fn value_speculation(&self) -> Option<ValueSpeculationPolicy> {
        self.value_speculation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_graph_indexing() {
        let p = LadderPolicy::two_tier(8, 24);
        assert_eq!(p.top(), Tier(2));
        assert_eq!(p.spec(Tier::BASELINE), None);
        assert_eq!(p.spec(Tier(1)), Some(&PipelineSpec::O1));
        assert_eq!(p.spec(Tier(2)), Some(&PipelineSpec::O2));
        assert_eq!(p.spec(Tier(3)), None);
        assert_eq!(p.threshold(Tier::BASELINE), 8);
        assert_eq!(p.threshold(Tier(1)), 24);
        assert_eq!(p.threshold(Tier(2)), u64::MAX, "top never climbs");
        assert_eq!(p.next_tier(Tier::BASELINE), Some(Tier(1)));
        assert_eq!(p.next_tier(Tier(2)), None);
    }

    #[test]
    fn default_graph_is_the_machine_topped_chain() {
        let p = LadderPolicy::default();
        assert_eq!(p.top(), Tier(4));
        assert_eq!(
            p.ladder(),
            &[
                PipelineSpec::O1,
                PipelineSpec::O2,
                PipelineSpec::O3,
                PipelineSpec::O4
            ]
        );
        assert_eq!(p.next_tier(Tier(3)), Some(Tier(4)));
    }

    #[test]
    fn chain_down_edges_offer_one_rung_then_baseline() {
        let g = LadderPolicy::three_tier(8, 24, 48).graph().clone();
        assert_eq!(
            g.down_targets(Tier(3)).collect::<Vec<_>>(),
            vec![Tier(2), Tier::BASELINE],
            "highest candidate first"
        );
        assert_eq!(
            g.down_targets(Tier(1)).collect::<Vec<_>>(),
            vec![Tier::BASELINE],
            "O1 has only the full deopt"
        );
        assert!(g.has_edge(Tier(2), Tier(3)));
        assert!(g.has_edge(Tier(3), Tier(0)));
        assert!(!g.has_edge(Tier(1), Tier(3)), "no skip edges in a chain");
        assert_eq!(g.edges().count(), 3 + 3 + 2);
    }

    #[test]
    #[should_panic(expected = "leaves the 1-rung graph")]
    fn graph_rejects_out_of_range_edges() {
        TierGraph::new(
            vec![PipelineSpec::O1],
            vec![TierEdge {
                from: Tier(1),
                to: Tier(2),
                threshold: 1,
            }],
        );
    }

    #[test]
    fn empty_ladder_never_tiers() {
        let p = LadderPolicy::new(vec![]);
        assert_eq!(p.top(), Tier::BASELINE);
        assert_eq!(p.next_tier(Tier::BASELINE), None);
    }

    #[test]
    fn tier_display() {
        assert_eq!(Tier::BASELINE.to_string(), "O0");
        assert_eq!(Tier(2).to_string(), "O2");
        assert!(Tier::BASELINE.is_baseline());
        assert_eq!(Tier::BASELINE.next(), Tier(1));
    }

    #[test]
    fn thresholds_demote_adaptively_after_deopts() {
        let p = LadderPolicy::two_tier(8, 24);
        assert_eq!(p.threshold_after_deopts(Tier::BASELINE, 0), 8);
        assert_eq!(p.threshold_after_deopts(Tier::BASELINE, 1), 16);
        assert_eq!(p.threshold_after_deopts(Tier::BASELINE, 3), 64);
        assert_eq!(p.threshold_after_deopts(Tier(1), 2), 96);
        assert_eq!(
            p.threshold_after_deopts(Tier::BASELINE, 200),
            8 * 64,
            "demotion is capped: a function can always re-climb eventually"
        );
        assert_eq!(
            p.threshold_after_deopts(Tier(2), 1),
            u64::MAX,
            "rungs above the graph stay unclimbable"
        );
    }

    #[test]
    fn thresholds_adapt_to_cache_hit_rates() {
        let p = LadderPolicy::two_tier(8, 24);
        let t = |hits, misses| p.threshold_with_cache(Tier::BASELINE, 0, hits, misses);
        assert_eq!(t(0, 0), 8, "no probes: base threshold");
        assert_eq!(t(3, 0), 8, "below the probe minimum: no adaptation");
        assert_eq!(t(4, 0), 4, "hot cache halves the threshold");
        assert_eq!(t(9, 3), 4, "75% hits still halves");
        assert_eq!(t(0, 4), 16, "sustained misses double it");
        assert_eq!(t(2, 2), 8, "mixed probes leave it alone");
        assert_eq!(
            p.threshold_with_cache(Tier(2), 0, 100, 0),
            u64::MAX,
            "the top rung stays unclimbable no matter how warm the cache"
        );
        assert_eq!(
            p.threshold_with_cache(Tier::BASELINE, 1, 8, 0),
            8,
            "cache adaptation composes with deopt demotion (16 / 2)"
        );
    }

    #[test]
    fn speculation_gradient_tightens_below_the_top() {
        let p = LadderPolicy::three_tier(8, 24, 48);
        assert_eq!(p.speculation_at(Tier(3)).bias_percent, 90, "top: base");
        assert_eq!(p.speculation_at(Tier(2)).bias_percent, 95);
        assert_eq!(p.speculation_at(Tier(1)).bias_percent, 100);
        let flat = LadderPolicy::three_tier(8, 24, 48).with_bias_step(0);
        assert_eq!(flat.speculation_at(Tier(1)).bias_percent, 90, "no gradient");
    }

    #[test]
    fn speculation_knobs_are_configurable() {
        let p = LadderPolicy::two_tier(8, 24);
        assert_eq!(
            p.deopt_strategy(Tier(2)),
            DeoptStrategy::Adaptive,
            "default: adaptive one-rung deopt"
        );
        assert_eq!(
            p.speculation().tolerance,
            SpeculationPolicy::default().tolerance
        );
        let custom = LadderPolicy::two_tier(8, 24)
            .with_deopt_target(Tier(1))
            .with_speculation(SpeculationPolicy {
                min_samples: 4,
                bias_percent: 75,
                tolerance: 2,
            });
        assert_eq!(
            custom.deopt_strategy(Tier(2)),
            DeoptStrategy::Fixed(Tier(1))
        );
        assert_eq!(custom.speculation().bias_percent, 75);
    }
}
