//! The tiered-execution service: shared cache + compiler pool + batched
//! request execution.

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ssair::interp::{ExecError, Val};
use ssair::reconstruct::Direction;
use ssair::{InstId, Module};
use tinyvm::profile::{TierController, TierDecision};
use tinyvm::runtime::{DeoptPolicy, OsrEvent, TransitionOptions, Vm};

use crate::cache::{CacheKey, CodeCache, CompiledVersion, PipelineSpec};
use crate::metrics::{EngineEvent, EngineMetrics, EventLog, MetricsSnapshot};
use crate::pool::{run_job, CompileJob, CompilerPool};

/// Engine-wide policy knobs.
#[derive(Clone, Debug)]
pub struct EnginePolicy {
    /// Cumulative visits of a function's OSR points (across *all*
    /// requests) before a background compile is requested and tier-up
    /// becomes eligible.
    pub hotness_threshold: u64,
    /// Background compile workers.
    pub compile_workers: usize,
    /// Concurrent request-execution threads per batch.
    pub batch_workers: usize,
    /// Transition mechanics (variant, continuation vs frame surgery).
    pub options: TransitionOptions,
    /// Tier-down policy for debugger-attach requests.
    pub deopt: DeoptPolicy,
    /// Interpreter fuel per request.
    pub fuel: usize,
    /// Pipeline used for tier-up compiles.
    pub pipeline: PipelineSpec,
}

impl Default for EnginePolicy {
    fn default() -> Self {
        EnginePolicy {
            hotness_threshold: 32,
            compile_workers: 2,
            batch_workers: 4,
            options: TransitionOptions::default(),
            deopt: DeoptPolicy::default(),
            fuel: 50_000_000,
            pipeline: PipelineSpec::Standard,
        }
    }
}

/// How a request wants to be executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Normal tiered execution: interpret, tier up when hot and compiled.
    Tiered,
    /// Debugger attach: run the optimized version and tier *down* through
    /// the precomputed backward table at the first opportunity.
    Debug,
}

/// One unit of work for [`Engine::run_batch`].
#[derive(Clone, Debug)]
pub struct Request {
    /// Function to execute.
    pub function: String,
    /// Arguments.
    pub args: Vec<Val>,
    /// Execution mode.
    pub mode: ExecMode,
}

impl Request {
    /// A tiered request.
    pub fn tiered(function: impl Into<String>, args: Vec<Val>) -> Self {
        Request {
            function: function.into(),
            args,
            mode: ExecMode::Tiered,
        }
    }

    /// A debugger-attach (deopt) request.
    pub fn debug(function: impl Into<String>, args: Vec<Val>) -> Self {
        Request {
            function: function.into(),
            args,
            mode: ExecMode::Debug,
        }
    }
}

/// Why a request failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The requested function does not exist in the engine's module.
    UnknownFunction(String),
    /// The interpreter failed.
    Exec(ExecError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EngineError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

/// The outcome of one batch.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-request results, in request order.
    pub results: Vec<Result<Option<Val>, EngineError>>,
    /// Events recorded while the batch ran (transitions, compiles).
    pub events: Vec<EngineEvent>,
    /// Aggregate metrics at batch end (cumulative over the engine's life).
    pub metrics: MetricsSnapshot,
}

impl BatchReport {
    /// Transitions of the given direction fired during this batch.
    pub fn transitions(&self, direction: Direction) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, EngineEvent::Transition { event, .. }
                         if event.direction == direction)
            })
            .count()
    }
}

/// Shared cross-request hotness counters, one per function.
#[derive(Default)]
pub struct ProfileTable {
    counters: Mutex<HashMap<String, Arc<AtomicU64>>>,
}

impl ProfileTable {
    /// The shared counter for `function` (created on first use).
    pub fn counter(&self, function: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock().expect("profile lock");
        Arc::clone(
            map.entry(function.to_string())
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Current hotness of `function`.
    pub fn hotness(&self, function: &str) -> u64 {
        self.counter(function).load(Ordering::Relaxed)
    }
}

/// A multi-tenant tiered-execution service over one module.
///
/// See the crate docs for the full tier-up / tier-down lifecycle.
pub struct Engine {
    vm: Vm,
    policy: EnginePolicy,
    cache: Arc<CodeCache>,
    pool: CompilerPool,
    metrics: Arc<EngineMetrics>,
    events: Arc<EventLog>,
    profiles: ProfileTable,
}

impl Engine {
    /// Builds an engine over `module` and spawns its compile workers.
    pub fn new(module: Module, policy: EnginePolicy) -> Self {
        let cache = Arc::new(CodeCache::new());
        let metrics = Arc::new(EngineMetrics::default());
        let events = Arc::new(EventLog::default());
        let pool = CompilerPool::new(
            policy.compile_workers,
            policy.options.variant,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            Arc::clone(&events),
        );
        Engine {
            vm: Vm::new(module).with_fuel(policy.fuel),
            policy,
            cache,
            pool,
            metrics,
            events,
            profiles: ProfileTable::default(),
        }
    }

    /// The engine's module.
    pub fn module(&self) -> &Module {
        &self.vm.module
    }

    /// The shared code cache.
    pub fn cache(&self) -> &CodeCache {
        &self.cache
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        let (hits, misses) = self.cache.counters();
        self.metrics.snapshot(hits, misses)
    }

    /// Current cross-request hotness of `function`.
    pub fn hotness(&self, function: &str) -> u64 {
        self.profiles.hotness(function)
    }

    /// Executes `requests` concurrently against the shared cache, using up
    /// to `policy.batch_workers` threads.  Results are deterministic per
    /// request (OSR preserves semantics, so a request's value does not
    /// depend on when — or whether — transitions fire); events and metrics
    /// reflect the actual interleaving.
    pub fn run_batch(&self, requests: &[Request]) -> BatchReport {
        type ResultSlot = Mutex<Option<Result<Option<Val>, EngineError>>>;
        let workers = self.policy.batch_workers.clamp(1, requests.len().max(1));
        let next = AtomicUsize::new(0);
        let results: Vec<ResultSlot> = requests.iter().map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= requests.len() {
                        break;
                    }
                    let out = self.run_one(i, &requests[i]);
                    *results[i].lock().expect("result slot") = Some(out);
                });
            }
        });

        let results = results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot")
                    .expect("every request executed")
            })
            .collect();
        BatchReport {
            results,
            events: self.events.drain(),
            metrics: self.metrics(),
        }
    }

    /// Executes one request on the current thread.
    fn run_one(&self, index: usize, req: &Request) -> Result<Option<Val>, EngineError> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Borrow the function from the module; it is only cloned when a
        // compile job actually needs an owned copy.
        let base = self
            .vm
            .module
            .get(&req.function)
            .ok_or_else(|| EngineError::UnknownFunction(req.function.clone()))?;
        let key = CacheKey {
            function: req.function.clone(),
            pipeline: self.policy.pipeline,
        };
        match req.mode {
            ExecMode::Tiered => {
                let mut controller = EngineController {
                    engine: self,
                    key,
                    base,
                    counter: self.profiles.counter(&req.function),
                    accounted: false,
                    enqueued: false,
                    failed_points: BTreeSet::new(),
                };
                let (value, events) =
                    self.vm
                        .run_tiered(base, &req.args, &self.policy.options, &mut controller)?;
                self.record_events(index, &req.function, events);
                Ok(value)
            }
            ExecMode::Debug => {
                // Debugger attach: the optimized version must exist *now*;
                // compile synchronously when the cache has no artifact yet.
                let cv = self.ensure_compiled(&key, base);
                let (value, events) = self.vm.run_with_deopt_table(
                    &cv.versions,
                    &req.args,
                    &self.policy.deopt,
                    &cv.tier_down,
                )?;
                self.record_events(index, &req.function, events);
                Ok(value)
            }
        }
    }

    fn record_events(&self, request: usize, function: &str, events: Vec<OsrEvent>) {
        for event in events {
            match event.direction {
                Direction::Forward => self.metrics.tier_ups.fetch_add(1, Ordering::Relaxed),
                Direction::Backward => self.metrics.deopts.fetch_add(1, Ordering::Relaxed),
            };
            self.events.push(EngineEvent::Transition {
                request,
                function: function.to_string(),
                event,
            });
        }
    }

    /// Returns the compiled artifact for `key`, compiling on the calling
    /// thread if no one has yet, or waiting for an in-flight background
    /// compile.
    ///
    /// # Panics
    ///
    /// Panics if the compile is rejected by entry-table validation — that
    /// indicates a mapping-construction bug, never a user error.
    fn ensure_compiled(&self, key: &CacheKey, base: &ssair::Function) -> Arc<CompiledVersion> {
        if let Some(cv) = self.cache.get(key) {
            self.cache.count_hit();
            return cv;
        }
        self.cache.count_miss();
        loop {
            if let Some(cv) = self.cache.get(key) {
                return cv;
            }
            if self.cache.claim(key) {
                self.metrics.job_enqueued();
                run_job(
                    CompileJob {
                        key: key.clone(),
                        base: base.clone(),
                    },
                    &self.cache,
                    &self.metrics,
                    &self.events,
                    self.policy.options.variant,
                );
                return self
                    .cache
                    .get(key)
                    .expect("synchronous compile failed entry-table validation");
            }
            // A background worker claimed the slot; its publish is imminent.
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// The engine's [`TierController`]: aggregates hotness across requests,
/// kicks off background compiles at the policy threshold, and fires
/// tier-up only from a published cache artifact (through its precomputed
/// forward table).
struct EngineController<'e> {
    engine: &'e Engine,
    key: CacheKey,
    base: &'e ssair::Function,
    counter: Arc<AtomicU64>,
    /// Whether this request already recorded its cache hit/miss.
    accounted: bool,
    /// Whether this request already enqueued the compile job.
    enqueued: bool,
    /// Points where a transition was infeasible (never retried).
    failed_points: BTreeSet<InstId>,
}

impl TierController for EngineController<'_> {
    fn observe(&mut self, at: InstId, _count: usize) -> TierDecision {
        let total = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        if total < self.engine.policy.hotness_threshold {
            return TierDecision::Continue;
        }
        if self.failed_points.contains(&at) {
            return TierDecision::Continue;
        }
        match self.engine.cache.get(&self.key) {
            Some(cv) => {
                if !self.accounted {
                    self.engine.cache.count_hit();
                    self.accounted = true;
                }
                TierDecision::TierUpPrecomputed(Arc::clone(&cv.versions), Arc::clone(&cv.tier_up))
            }
            None => {
                if !self.accounted {
                    self.engine.cache.count_miss();
                    self.accounted = true;
                }
                if !self.enqueued {
                    self.enqueued = true;
                    if self.engine.cache.claim(&self.key) {
                        self.engine.pool.submit(
                            CompileJob {
                                key: self.key.clone(),
                                base: self.base.clone(),
                            },
                            &self.engine.metrics,
                        );
                    }
                }
                TierDecision::Continue
            }
        }
    }

    fn on_infeasible(&mut self, at: InstId) {
        self.failed_points.insert(at);
        self.engine
            .metrics
            .infeasible
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> Module {
        minic::compile(
            "fn hot(x, n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) {
                     s = s + x * x + i;
                 }
                 return s;
             }
             fn cold(x) {
                 return x * 2 + 1;
             }",
        )
        .unwrap()
    }

    fn policy() -> EnginePolicy {
        EnginePolicy {
            hotness_threshold: 8,
            compile_workers: 1,
            batch_workers: 2,
            ..EnginePolicy::default()
        }
    }

    #[test]
    fn batch_results_match_plain_interpretation() {
        let m = module();
        let engine = Engine::new(m.clone(), policy());
        let requests: Vec<Request> = (0..12)
            .map(|k| Request::tiered("hot", vec![Val::Int(k % 5), Val::Int(40 + k)]))
            .collect();
        let report = engine.run_batch(&requests);
        let vm = Vm::new(m);
        for (req, got) in requests.iter().zip(&report.results) {
            let expected = vm
                .run_plain(vm.module.get("hot").unwrap(), &req.args)
                .unwrap();
            assert_eq!(got.as_ref().unwrap(), &expected);
        }
        assert_eq!(report.metrics.requests, 12);
    }

    #[test]
    fn hot_function_tiers_up_in_background() {
        let m = module();
        let engine = Engine::new(m, policy());
        // Enough independent requests that later ones find the artifact.
        let requests: Vec<Request> = (0..16)
            .map(|k| Request::tiered("hot", vec![Val::Int(3), Val::Int(60 + k)]))
            .collect();
        let mut tier_ups = 0;
        for _ in 0..4 {
            let report = engine.run_batch(&requests);
            tier_ups += report.transitions(Direction::Forward);
        }
        assert!(tier_ups > 0, "a background tier-up eventually fires");
        assert!(engine.metrics().compiles >= 1);
        assert_eq!(engine.cache().ready_count(), 1);
    }

    #[test]
    fn debug_requests_deopt_through_cache() {
        let m = module();
        let engine = Engine::new(m.clone(), policy());
        let req = Request::debug("hot", vec![Val::Int(2), Val::Int(50)]);
        let report = engine.run_batch(std::slice::from_ref(&req));
        let vm = Vm::new(m);
        let expected = vm
            .run_plain(vm.module.get("hot").unwrap(), &req.args)
            .unwrap();
        assert_eq!(report.results[0].as_ref().unwrap(), &expected);
        assert_eq!(report.transitions(Direction::Backward), 1, "deopt fired");
        assert!(engine.metrics().deopts >= 1);
    }

    #[test]
    fn unknown_function_is_an_error() {
        let engine = Engine::new(module(), policy());
        let report = engine.run_batch(&[Request::tiered("nope", vec![])]);
        assert!(matches!(
            report.results[0],
            Err(EngineError::UnknownFunction(_))
        ));
    }

    #[test]
    fn cold_functions_never_compile() {
        let m = module();
        let engine = Engine::new(m, policy());
        let requests: Vec<Request> = (0..8)
            .map(|k| Request::tiered("cold", vec![Val::Int(k)]))
            .collect();
        let report = engine.run_batch(&requests);
        assert!(report.results.iter().all(Result::is_ok));
        assert_eq!(engine.metrics().compiles, 0, "no loops, no hotness");
        assert_eq!(engine.cache().ready_count(), 0);
    }
}
