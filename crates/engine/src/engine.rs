//! The tiered-execution service core: shared cache + compiler pool + the
//! ladder controller, with `run_batch` kept as a thin compatibility
//! wrapper over the persistent session API ([`crate::EngineHandle`]).

use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ssair::interp::{ExecError, Val};
use ssair::passes::{BlockFrequencies, InlineCalls, InlineSite};
use ssair::reconstruct::Direction;
use ssair::{BlockId, Function, InstId, Module};
use tinyvm::profile::{
    AssumptionKind, InlineExitTarget, InlineSpeculationPolicy, LocalProfile, Tier, TierController,
    TierDecision, TierTarget,
};
use tinyvm::runtime::{DeoptPolicy, OsrEvent, TransitionOptions, Vm};

use crate::cache::{
    vet_generic_escape, CacheKey, CodeCache, CompileError, CompiledVersion, InlineSpec,
    PipelineSpec, Speculation,
};
use crate::metrics::{DeoptReason, EngineEvent, EngineMetrics, EventLog, MetricsSnapshot};
use crate::pool::{run_job, CompileJob, CompilerPool};
use crate::session::{RequestId, ResultEvent};
use crate::tiers::{LadderPolicy, TierPolicy};
use crate::trace::{RequestTrace, TableKind, TraceStore, TraceTransition};

pub use tinyvm::profile::{ProfileTable, SpeculationPolicy, ValueSpeculationPolicy};

/// Engine-wide policy knobs.
#[derive(Clone, Debug)]
pub struct EnginePolicy {
    /// The tier ladder: pipelines per rung and per-tier hotness
    /// thresholds.
    pub tiers: Arc<dyn TierPolicy>,
    /// Background compile workers.
    pub compile_workers: usize,
    /// Request-execution workers per session (and per `run_batch`).
    pub batch_workers: usize,
    /// Transition mechanics (variant, continuation vs frame surgery) for
    /// run-to-completion tier-ups; ladder hops always use frame surgery.
    pub options: TransitionOptions,
    /// Tier-down policy for debugger-attach requests.
    pub deopt: DeoptPolicy,
    /// Interpreter fuel per request.
    pub fuel: usize,
    /// Maximum requests waiting (submitted but not yet picked up by a
    /// worker) per session before [`crate::EngineHandle::try_submit`]
    /// reports [`crate::SubmitError::QueueFull`] and
    /// [`crate::EngineHandle::submit`] blocks.
    pub queue_depth: usize,
    /// Profile-guided block layout: when set (the default), compile jobs
    /// for the O3/O4 rungs snapshot the function's edge profile into a
    /// [`BlockFrequencies`] summary and the optimizer reorders blocks
    /// hot-fallthrough-first.  Disable to measure the layout's effect
    /// (the benchmark suite's `layout` block does exactly that).
    pub layout: bool,
    /// Profile-guided inlining: when set (the default), a climb into the
    /// O3/O4 rungs consults the call-edge profile
    /// ([`ProfileTable::inline_sites`]) and compiles a version with the
    /// dominant callees spliced in ([`ssair::passes::InlineCalls`]),
    /// guarded by cross-function deopt.  Disable to measure the
    /// inlining's effect (the benchmark suite's `inline` block does
    /// exactly that).
    pub inlining: bool,
}

impl EnginePolicy {
    /// A two-rung O1/O2 chain with explicit thresholds.
    pub fn two_tier(o1_after: u64, o2_after: u64) -> Self {
        EnginePolicy {
            tiers: Arc::new(LadderPolicy::two_tier(o1_after, o2_after)),
            ..EnginePolicy::default()
        }
    }

    /// The full `O0 → O1 → O2 → O3` chain with explicit thresholds.
    pub fn three_tier(o1_after: u64, o2_after: u64, o3_after: u64) -> Self {
        EnginePolicy {
            tiers: Arc::new(LadderPolicy::three_tier(o1_after, o2_after, o3_after)),
            ..EnginePolicy::default()
        }
    }

    /// The machine-topped `O0 → O1 → O2 → O3 → O4` chain with explicit
    /// thresholds.
    pub fn four_tier(o1_after: u64, o2_after: u64, o3_after: u64, o4_after: u64) -> Self {
        EnginePolicy {
            tiers: Arc::new(LadderPolicy::four_tier(
                o1_after, o2_after, o3_after, o4_after,
            )),
            ..EnginePolicy::default()
        }
    }

    /// A single-rung ladder (the pre-ladder engine behaviour).
    pub fn single_tier(spec: PipelineSpec, after: u64) -> Self {
        EnginePolicy {
            tiers: Arc::new(LadderPolicy::single(spec, after)),
            ..EnginePolicy::default()
        }
    }
}

impl Default for EnginePolicy {
    fn default() -> Self {
        EnginePolicy {
            tiers: Arc::new(LadderPolicy::default()),
            compile_workers: 2,
            batch_workers: 4,
            options: TransitionOptions::default(),
            deopt: DeoptPolicy::default(),
            fuel: 50_000_000,
            queue_depth: 1024,
            layout: true,
            inlining: true,
        }
    }
}

/// How a request wants to be executed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecMode {
    /// Normal tiered execution: interpret, climb the ladder while hot and
    /// compiled (`O0 → O1 → … → top`).
    Tiered,
    /// Debugger attach: run the *top-tier* version and tier down to the
    /// baseline through the precomputed backward table at the first
    /// opportunity.
    Debug,
}

/// One unit of work for [`crate::EngineHandle::submit`] /
/// [`Engine::run_batch`].
#[derive(Clone, Debug)]
pub struct Request {
    /// Function to execute.
    pub function: String,
    /// Arguments.
    pub args: Vec<Val>,
    /// Execution mode.
    pub mode: ExecMode,
    /// Queueing budget in *microseconds* since submission: a request
    /// still waiting for a worker once it has waited longer than its
    /// budget is dropped instead of executed, streamed as
    /// [`crate::ResultEvent::DeadlineExpired`] and counted in
    /// [`MetricsSnapshot::deadline_expired`] — serving a reply nobody
    /// waits for anymore only steals a worker from live traffic.  A
    /// budget of `0` expires unconditionally at pickup; `None` (the
    /// default) never expires.
    pub deadline: Option<u64>,
}

impl Request {
    /// A tiered request.
    pub fn tiered(function: impl Into<String>, args: Vec<Val>) -> Self {
        Request {
            function: function.into(),
            args,
            mode: ExecMode::Tiered,
            deadline: None,
        }
    }

    /// A debugger-attach (deopt) request.
    pub fn debug(function: impl Into<String>, args: Vec<Val>) -> Self {
        Request {
            function: function.into(),
            args,
            mode: ExecMode::Debug,
            deadline: None,
        }
    }

    /// Sets the queueing budget: the request is dropped (never executed)
    /// once it has waited for a worker longer than `micros` microseconds
    /// after submission (`0` always expires).
    #[must_use]
    pub fn with_deadline(mut self, micros: u64) -> Self {
        self.deadline = Some(micros);
        self
    }
}

/// Why a request failed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EngineError {
    /// The requested function does not exist in the engine's module.
    UnknownFunction(String),
    /// The interpreter failed.
    Exec(ExecError),
    /// The request's [`Request::deadline`] elapsed while it waited for a
    /// worker; it was dropped without executing.
    DeadlineExpired,
    /// An engine-internal failure (e.g. a request worker panicked); the
    /// request did not complete.
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            EngineError::Exec(e) => write!(f, "execution failed: {e}"),
            EngineError::DeadlineExpired => {
                write!(f, "deadline elapsed while the request was queued")
            }
            EngineError::Internal(reason) => write!(f, "engine-internal failure: {reason}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ExecError> for EngineError {
    fn from(e: ExecError) -> Self {
        EngineError::Exec(e)
    }
}

/// The outcome of one [`Engine::run_batch`] call.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-request results, in request order.
    pub results: Vec<Result<Option<Val>, EngineError>>,
    /// Events recorded while the batch ran (transitions, compiles).
    pub events: Vec<EngineEvent>,
    /// Aggregate metrics at batch end (cumulative over the engine's life).
    pub metrics: MetricsSnapshot,
}

impl BatchReport {
    /// Transitions of the given direction fired during this batch.
    pub fn transitions(&self, direction: Direction) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(e, EngineEvent::Transition { event, .. }
                         if event.direction == direction)
            })
            .count()
    }
}

/// Everything a request worker needs, shared between the [`Engine`] front
/// end, its persistent sessions, and the compile pool.
pub(crate) struct EngineCore {
    pub(crate) vm: Vm,
    pub(crate) policy: EnginePolicy,
    pub(crate) cache: Arc<CodeCache>,
    pub(crate) pool: CompilerPool,
    pub(crate) metrics: Arc<EngineMetrics>,
    pub(crate) events: Arc<EventLog>,
    pub(crate) profiles: ProfileTable,
    /// Per-request lifecycle traces (bounded; see [`crate::trace`]).
    pub(crate) traces: TraceStore,
    /// Engine-global request-id allocator (ids stay unique across every
    /// concurrent session).
    pub(crate) next_request_id: AtomicU64,
}

/// A multi-tenant tiered-execution service over one module.
///
/// See the crate docs for the full ladder lifecycle.  Cloning an `Engine`
/// is cheap and shares the cache, metrics and compile pool.
#[derive(Clone)]
pub struct Engine {
    pub(crate) core: Arc<EngineCore>,
}

impl Engine {
    /// Builds an engine over `module` and spawns its compile workers.
    pub fn new(module: Module, policy: EnginePolicy) -> Self {
        let cache = Arc::new(CodeCache::new());
        let metrics = Arc::new(EngineMetrics::default());
        let events = Arc::new(EventLog::default());
        let pool = CompilerPool::new(
            policy.compile_workers,
            policy.options.variant,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            Arc::clone(&events),
        );
        Engine {
            core: Arc::new(EngineCore {
                vm: Vm::new(module).with_fuel(policy.fuel),
                policy,
                cache,
                pool,
                metrics,
                events,
                profiles: ProfileTable::default(),
                traces: TraceStore::default(),
                next_request_id: AtomicU64::new(0),
            }),
        }
    }

    /// The engine's module.
    pub fn module(&self) -> &Module {
        &self.core.vm.module
    }

    /// The shared code cache.
    pub fn cache(&self) -> &CodeCache {
        &self.core.cache
    }

    /// The engine's policy.
    pub fn policy(&self) -> &EnginePolicy {
        &self.core.policy
    }

    /// Cumulative metrics.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.core.snapshot()
    }

    /// Current cross-request hotness of `function` at `tier`.
    pub fn hotness(&self, function: &str, tier: Tier) -> u64 {
        self.core.profiles.hotness(function, tier)
    }

    /// Total cross-request hotness of `function` across every tier.
    pub fn total_hotness(&self, function: &str) -> u64 {
        self.core.profiles.total_hotness(function)
    }

    /// Total uncommon-path hits climbed frames of `function` have
    /// recorded against its baseline branch profile — how contested the
    /// function's speculation currently is (high values with few
    /// [`MetricsSnapshot::guard_failures`] mean the profile tolerates the
    /// cold traffic; high values *with* guard failures mean the traffic
    /// shifted).
    pub fn uncommon_hits(&self, function: &str) -> u64 {
        self.core.profiles.uncommon_hits(function)
    }

    /// Speculation-failure deopts recorded against `function` (the input
    /// to the ladder's adaptive threshold demotion,
    /// [`TierPolicy::threshold_after_deopts`]).
    pub fn deopt_count(&self, function: &str) -> u64 {
        self.core.profiles.deopt_count(function)
    }

    /// Synchronously compiles every rung of `function`'s transition graph
    /// — including the machine rung's register-allocated artifact when
    /// the graph tops out at [`PipelineSpec::O4`] — and builds (and
    /// validates) the composed tables along *every* rung-chain suffix:
    /// adjacent hops plus every chained prefix from every starting rung
    /// (`O1 → O2`, `O1 → O3`, `O2 → O4`, …; each one Theorem 3.4 fold
    /// over the previous, memoized individually).  Subsequent traffic
    /// therefore climbs the whole graph — from whichever rung it
    /// currently runs — without waiting on background compiles or
    /// first-hop composition: how a service warms its cache before
    /// taking load.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::UnknownFunction`] when the module has no such
    /// function.
    ///
    /// # Panics
    ///
    /// Panics if a rung's compile is rejected by entry-table validation
    /// (a mapping-construction bug, never a user error).  A rejected
    /// *composed* table is not fatal — the engine simply never serves that
    /// hop — but is recorded as a [`EngineEvent::CompileRejected`].
    pub fn prewarm(&self, function: &str) -> Result<(), EngineError> {
        let base = self
            .core
            .vm
            .module
            .get(function)
            .ok_or_else(|| EngineError::UnknownFunction(function.to_string()))?;
        let tiers = Arc::clone(&self.core.policy.tiers);
        let rungs: Vec<Arc<CompiledVersion>> = (1..=tiers.top().0)
            .map(|rung| {
                let spec = tiers.spec(Tier(rung)).expect("rung within graph").clone();
                self.core
                    .ensure_compiled(&CacheKey::new(function, spec), base)
            })
            .collect();
        // Every suffix of the chain, so a frame sitting at any rung has
        // its straight-to-top table ready (O1→O4, O2→O4, O3→O4, …).
        // Later suffixes re-fold only memoized tables, so this is one
        // build per distinct (from, to) pair, not a quadratic recompose.
        for j in 0..rungs.len() {
            self.core.composed_chain(function, &rungs[j..]);
        }
        Ok(())
    }

    /// Cumulative instrumented *visits* per rung across every function —
    /// how often traffic reached each tier's OSR points.  This counts
    /// visits, **not** time; for wall-clock residency see
    /// [`Engine::rung_time_residency`].  (Renamed from `rung_residency`,
    /// whose name hid exactly that distinction.)
    pub fn rung_visit_residency(&self) -> std::collections::BTreeMap<Tier, u64> {
        self.core.profiles.per_tier_totals()
    }

    /// Cumulative execution *time* per rung across every function,
    /// nanoseconds — how long traffic actually ran at each tier.
    /// Measured by the request controllers with one `Instant` stamp per
    /// hop (batched, never on the interpreter loop), so short-lived rungs
    /// cost nothing to attribute.
    pub fn rung_time_residency(&self) -> std::collections::BTreeMap<Tier, u64> {
        self.core.profiles.per_tier_time_nanos()
    }

    /// The lifecycle trace of a request served by any of this engine's
    /// sessions, at whatever stage it has reached (`None` for unknown or
    /// long-evicted ids).
    pub fn trace(&self, id: RequestId) -> Option<RequestTrace> {
        self.core.traces.get(id.0)
    }

    /// Executes `requests` concurrently against the shared cache and waits
    /// for all of them — a thin compatibility wrapper over the persistent
    /// session API ([`Engine::start`](crate::Engine::start) /
    /// [`crate::EngineHandle`]).  Results are deterministic per request
    /// (OSR preserves semantics, so a request's value does not depend on
    /// when — or whether — transitions fire); events and metrics reflect
    /// the actual interleaving.
    pub fn run_batch(&self, requests: &[Request]) -> BatchReport {
        let handle = self.start();
        let ids: Vec<RequestId> = requests.iter().map(|r| handle.submit(r.clone())).collect();
        let index_of: HashMap<RequestId, usize> =
            ids.iter().enumerate().map(|(i, id)| (*id, i)).collect();
        let mut results: Vec<Option<Result<Option<Val>, EngineError>>> =
            requests.iter().map(|_| None).collect();
        let mut remaining = requests.len();
        while remaining > 0 {
            let Some(event) = handle.next_event() else {
                break;
            };
            match event {
                ResultEvent::Completed { id, result } => {
                    results[index_of[&id]] = Some(result);
                    remaining -= 1;
                }
                ResultEvent::DeadlineExpired { id, .. } => {
                    results[index_of[&id]] = Some(Err(EngineError::DeadlineExpired));
                    remaining -= 1;
                }
                ResultEvent::Engine(_) => {}
            }
        }
        handle.shutdown();
        BatchReport {
            results: results
                .into_iter()
                .map(|slot| slot.expect("every request completed"))
                .collect(),
            events: self.core.events.drain(),
            metrics: self.metrics(),
        }
    }
}

impl EngineCore {
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let (hits, misses) = self.cache.counters();
        self.metrics
            .snapshot(hits, misses, self.cache.invalidation_counts())
    }

    /// Executes one request on the current thread.
    pub(crate) fn run_one(&self, id: u64, req: &Request) -> Result<Option<Val>, EngineError> {
        self.metrics.requests.fetch_add(1, Ordering::Relaxed);
        // Borrow the function from the module; it is only cloned when a
        // compile job actually needs an owned copy.
        let base = self
            .vm
            .module
            .get(&req.function)
            .ok_or_else(|| EngineError::UnknownFunction(req.function.clone()))?;
        match req.mode {
            ExecMode::Tiered => {
                let mut controller = EngineController::new(self, &req.function, base, &req.args);
                let outcome =
                    self.vm
                        .run_tiered(base, &req.args, &self.policy.options, &mut controller);
                // Observations since the last instrumented visit still
                // belong to the shared speculation profile — even when the
                // request itself failed (e.g. fuel exhaustion).
                controller.flush_profile(true);
                // Close the final rung's time slice and flush the whole
                // batch of per-rung deltas (one lock per request).
                controller.finish_timing();
                let (value, events) = outcome?;
                self.record_events(
                    id,
                    &req.function,
                    events,
                    &controller.hops,
                    controller.rung_nanos.clone(),
                );
                Ok(value)
            }
            ExecMode::Debug => {
                // Debugger attach: the top-tier version must exist *now*;
                // compile synchronously when the cache has no artifact yet.
                let top = self.policy.tiers.top();
                let Some(spec) = self.policy.tiers.spec(top).cloned() else {
                    // Empty ladder: nothing to deoptimize from.
                    return Ok(self.vm.run_plain(base, &req.args)?);
                };
                let cv = self.ensure_compiled(&CacheKey::new(&req.function, spec), base);
                let (value, events) = self.vm.run_with_deopt_table(
                    &cv.versions,
                    &req.args,
                    &self.policy.deopt,
                    &cv.tier_down,
                )?;
                let labels = vec![
                    HopLabel {
                        from: top,
                        to: Tier::BASELINE,
                        composed: false,
                        speculated: false,
                        machine: false,
                        inlined: false,
                        guard_entry: false,
                        deopt: Some(DeoptReason::DebuggerAttach),
                        reclimb: false,
                        at_micros: self.events.now_micros(),
                    };
                    events.len()
                ];
                self.record_events(id, &req.function, events, &labels, Vec::new());
                Ok(value)
            }
        }
    }

    /// Records one request's transitions: events arrive in hop order, and
    /// `labels` carries the controller's tier annotations in the same
    /// order.  Backward hops additionally emit an [`EngineEvent::Deopt`]
    /// carrying the *why*; forward hops of frames that deopted earlier in
    /// the request emit an [`EngineEvent::Reclimb`].  Each hop also lands
    /// in the request's lifecycle trace (with the controller's `rung_nanos`
    /// time attribution) and feeds the transition-cost histogram.
    fn record_events(
        &self,
        request: u64,
        function: &str,
        events: Vec<OsrEvent>,
        labels: &[HopLabel],
        rung_nanos: Vec<(Tier, u64)>,
    ) {
        let mut trace_transitions = Vec::with_capacity(events.len());
        for (i, event) in events.into_iter().enumerate() {
            let label = labels.get(i).cloned().unwrap_or_default();
            self.metrics.transition_cost.record(event.nanos);
            trace_transitions.push(TraceTransition {
                at_micros: label.at_micros,
                from: label.from,
                to: label.to,
                direction: event.direction,
                kind: if label
                    .deopt
                    .as_ref()
                    .and_then(DeoptReason::violated_kind)
                    .is_some_and(|k| k == AssumptionKind::Inline)
                {
                    TableKind::InlineExit
                } else if label.speculated {
                    TableKind::ValueSpecialized
                } else if label.machine {
                    TableKind::Machine
                } else if label.composed {
                    TableKind::Composed
                } else {
                    TableKind::Direct
                },
                reclimb: label.reclimb,
                deopt: label.deopt.clone(),
                hop_nanos: event.nanos,
            });
            match event.direction {
                Direction::Forward => {
                    self.metrics.tier_ups.fetch_add(1, Ordering::Relaxed);
                    if label.composed {
                        self.metrics
                            .composed_tier_ups
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if label.speculated && !label.guard_entry {
                        // A violating frame's deliberate guard entry is
                        // not a successful specialization — only hops of
                        // conforming frames count.
                        self.metrics
                            .value_specialized_tier_ups
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if label.inlined {
                        self.metrics
                            .inlined_tier_ups
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    if label.reclimb {
                        self.metrics.reclimbs.fetch_add(1, Ordering::Relaxed);
                        self.events.push(EngineEvent::Reclimb {
                            request,
                            function: function.to_string(),
                            from_tier: label.from,
                            to_tier: label.to,
                        });
                    }
                }
                Direction::Backward => {
                    self.metrics.deopts.fetch_add(1, Ordering::Relaxed);
                    if let Some(reason) = &label.deopt {
                        match reason.violated_kind() {
                            Some(AssumptionKind::Bias) => {
                                self.metrics.guard_failures.fetch_add(1, Ordering::Relaxed);
                            }
                            Some(AssumptionKind::Value) => {
                                self.metrics
                                    .value_guard_failures
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Some(AssumptionKind::Inline) => {
                                self.metrics
                                    .inline_guard_failures
                                    .fetch_add(1, Ordering::Relaxed);
                            }
                            Some(AssumptionKind::Memory) | None => {}
                        }
                        self.events.push(EngineEvent::Deopt {
                            request,
                            function: function.to_string(),
                            from_tier: label.from,
                            to_tier: label.to,
                            reason: reason.clone(),
                        });
                    }
                }
            };
            self.events.push(EngineEvent::Transition {
                request,
                function: function.to_string(),
                from_tier: label.from,
                to_tier: label.to,
                composed: label.composed,
                speculated: label.speculated,
                inlined: label.inlined,
                event,
            });
        }
        self.traces
            .record_execution(request, trace_transitions, rung_nanos);
    }

    /// Snapshots the shared edge profile into the frequency summary a
    /// compile job lays blocks out by.  `None` below the O3 rung, when
    /// [`EnginePolicy::layout`] is off, or when no branch has drawn
    /// enough samples yet — the job then compiles layout-free.
    ///
    /// Advances the profile's drain epoch first: every controller holding
    /// a thread-local buffer drains at its next flush check, so the
    /// profile this snapshot misses is bounded by one flush interval and
    /// the *next* snapshot (the artifact's republish) sees it.
    pub(crate) fn layout_snapshot(
        &self,
        function: &str,
        spec: &PipelineSpec,
    ) -> Option<BlockFrequencies> {
        if !self.policy.layout || !matches!(spec, PipelineSpec::O3 | PipelineSpec::O4) {
            return None;
        }
        self.profiles.advance_epoch();
        let min = SpeculationPolicy::default().min_samples;
        let freqs = BlockFrequencies::from_edge_counts(&self.profiles.edge_totals(function), min);
        (!freqs.is_empty()).then_some(freqs)
    }

    /// Returns the compiled artifact for `key`, compiling on the calling
    /// thread if no one has yet, or waiting for an in-flight background
    /// compile.
    ///
    /// # Panics
    ///
    /// Panics if the compile is rejected by entry-table validation — that
    /// indicates a mapping-construction bug, never a user error.
    pub(crate) fn ensure_compiled(&self, key: &CacheKey, base: &Function) -> Arc<CompiledVersion> {
        if let Some(cv) = self.cache.get(key) {
            self.cache.count_hit();
            return cv;
        }
        self.cache.count_miss();
        loop {
            if let Some(cv) = self.cache.get(key) {
                return cv;
            }
            if self.cache.claim(key) {
                self.metrics.job_enqueued();
                run_job(
                    CompileJob {
                        key: key.clone(),
                        base: base.clone(),
                        // Synchronous path: the job never queues, so its
                        // priority is moot — mark it maximally urgent.
                        priority: u64::MAX,
                        profile: self.layout_snapshot(&key.function, &key.pipeline),
                        sites: Vec::new(),
                    },
                    &self.cache,
                    &self.metrics,
                    &self.events,
                    self.policy.options.variant,
                );
                return self
                    .cache
                    .get(key)
                    .expect("synchronous compile failed entry-table validation");
            }
            // A background worker claimed the slot; its publish is imminent.
            std::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The composed `from.opt → to.opt` table for `function`, built (and
    /// logged) on first use, memoized in the cache afterwards.
    pub(crate) fn composed_table(
        &self,
        function: &str,
        from: &CompiledVersion,
        to: &CompiledVersion,
    ) -> Result<Arc<ssair::feasibility::EntryTable>, CompileError> {
        let (result, built) = self.cache.composed(function, from, to, &self.vm.module);
        if built {
            self.log_composed(function, from, to, &result);
        }
        result
    }

    fn log_composed(
        &self,
        function: &str,
        from: &CompiledVersion,
        to: &CompiledVersion,
        result: &Result<Arc<ssair::feasibility::EntryTable>, CompileError>,
    ) {
        match result {
            Ok(table) => self.events.push(EngineEvent::Composed {
                function: function.to_string(),
                from: from.spec.name().to_string(),
                to: to.spec.name().to_string(),
                points: table.entries.len(),
            }),
            Err(e) => self.events.push(EngineEvent::CompileRejected {
                function: function.to_string(),
                reason: format!("composed {}→{}: {e}", from.spec.name(), to.spec.name()),
            }),
        }
    }

    /// Builds (and memoizes) the composed tables along a whole rung
    /// sequence: each adjacent `rungs[k-1] → rungs[k]` hop, plus every
    /// chained prefix `rungs[0] → rungs[k]` — the engine-side driver of
    /// [`ssair::feasibility::compose_entries_chain`]'s fold, with each
    /// prefix extended from the previous one by a single
    /// [`CodeCache::composed_prefix`] fold and memoized under its own
    /// rung pair.  A failed adjacent composition ends the chain (later
    /// prefixes would route through the rejected hop).
    pub(crate) fn composed_chain(&self, function: &str, rungs: &[Arc<CompiledVersion>]) {
        let mut prefix: Option<Arc<ssair::feasibility::EntryTable>> = None;
        for k in 1..rungs.len() {
            let Ok(adjacent) = self.composed_table(function, &rungs[k - 1], &rungs[k]) else {
                break;
            };
            prefix = if k == 1 {
                Some(adjacent)
            } else {
                let (result, built) = self.cache.composed_prefix(
                    function,
                    &rungs[0],
                    &rungs[k - 1],
                    &rungs[k],
                    prefix.as_ref().expect("prefix exists past the first fold"),
                    &adjacent,
                    &self.vm.module,
                );
                if built {
                    self.log_composed(function, &rungs[0], &rungs[k], &result);
                }
                match result {
                    Ok(table) => Some(table),
                    Err(_) => break,
                }
            };
        }
    }
}

/// One committed hop of a frame, as the engine labels it for the event
/// stream.
#[derive(Clone, Default)]
struct HopLabel {
    /// Rung the frame left.
    from: Tier,
    /// Rung the frame entered.
    to: Tier,
    /// Whether a composed version-to-version table served the hop.
    composed: bool,
    /// Whether the version entered is value-specialized (constant-seeded).
    speculated: bool,
    /// Whether the version entered executes on the register-allocated
    /// machine substrate (the O4 rung).
    machine: bool,
    /// Whether the version entered has hot call sites spliced in (an
    /// inline-speculating artifact).
    inlined: bool,
    /// Whether this forward hop is a deliberate *guard entry* — a
    /// violating frame hopping in only so its value guard can fire at
    /// the landing.  Guard entries are not counted as successful
    /// specialized tier-ups.
    guard_entry: bool,
    /// `Some` when the hop was a deopt, with the why.
    deopt: Option<DeoptReason>,
    /// Whether this upward hop re-climbs after an earlier deopt in the
    /// same request.
    reclimb: bool,
    /// When the hop landed, microseconds since the engine epoch.
    at_micros: u64,
}

/// A hop the controller has requested but that has not landed yet.
struct PendingHop {
    to: Tier,
    /// Artifact of the destination rung (`None` when falling to the
    /// baseline).
    artifact: Option<Arc<CompiledVersion>>,
    composed: bool,
    /// Whether the destination artifact is value-specialized.
    speculated: bool,
    /// Whether this is a violating frame's deliberate guard entry.
    guard_entry: bool,
    deopt: Option<DeoptReason>,
}

/// A planned value-guard escape, armed when the controller deliberately
/// hops a *violating* frame into a specialized version: the guard fires
/// at the forward landing — the first instrumented visit after the hop,
/// before a single specialized instruction executes — and takes this
/// pre-vetted route back out.  Every route is vetted with
/// [`vet_generic_escape`] at climb time, so the escape can never
/// launder speculation-tainted values into the violating frame.
struct ValueEscape {
    /// The vetted escape hop.
    target: TierTarget,
    /// Rung the escape lands on.
    to: Tier,
    /// Artifact of the landing rung (`None` for the baseline).
    artifact: Option<Arc<CompiledVersion>>,
    /// Whether a composed table serves the escape.
    composed: bool,
    /// The value-guard reason recorded on the deopt.
    reason: DeoptReason,
}

/// The engine's [`TierController`]: aggregates per-`(function, tier)`
/// hotness across requests, kicks off background compiles of the next
/// rung at the (cache- and deopt-adapted) edge threshold, and follows
/// only the [`crate::TierGraph`]'s edges through published cache
/// artifacts — directly off the baseline, through a composed (validated)
/// version-to-version table off any higher rung.
///
/// It also runs the speculation lifecycle.  At every rung it records the
/// conditional-branch edges its rung does not guard into the shared
/// per-rung profile; for guarded branches in a climbed frame it checks
/// each taken edge against the profiled bias and, once a branch's
/// uncommon path has been taken [`SpeculationPolicy::tolerance`] times
/// within the frame, deopts the frame mid-loop — along a graph down edge
/// chosen by [`TierPolicy::deopt_strategy`]: adaptively one rung when
/// the rung below is bias-neutral for the failing branch (via a composed
/// down-table), all the way to the baseline otherwise (via the
/// artifact's precomputed backward table).  The landed frame stays under
/// profiling and re-climbs once the (adaptively demoted,
/// [`TierPolicy::threshold_after_deopts`]) thresholds allow.
struct EngineController<'e> {
    core: &'e EngineCore,
    function: &'e str,
    base: &'e Function,
    /// The request's actual arguments — what the value guard checks a
    /// specialized artifact's speculation against, and the source of the
    /// parameter pins every hop carries
    /// ([`tinyvm::profile::TierTarget::pinned`]).
    args: &'e [Val],
    /// Parameter pins: `param value id → actual argument`, supplied to
    /// every hop so an OSR-entered frame can always re-read its arguments.
    pinned: Vec<(ssair::ValueId, Val)>,
    /// Thread-local profile buffer: edge observations, uncommon-path
    /// hits, and the one-shot argument-value observations, all batched
    /// here and drained into the shared [`ProfileTable`] only when the
    /// table's epoch advances (a compile was submitted), at hops, or at
    /// request end — the steady-state observe path touches no shared
    /// lock.
    local: LocalProfile,
    /// Memoized value-speculation verdict for the current climb epoch.
    spec_memo: Option<Speculation>,
    /// Frame-local value-speculation poison: set once a value guard fired
    /// (or a speculative route failed vetting), so this frame re-climbs
    /// on generic artifacts only — "without the stale assumption".
    no_value_spec: bool,
    /// Memoized inline-speculation verdict for the current climb epoch.
    inline_memo: Option<InlineSpec>,
    /// Frame-local inlining poison: set once an inline guard fired, so
    /// this frame re-climbs on call-preserving artifacts only.
    no_inline: bool,
    /// Frame-local `(hot hits, uncommon hits)` per *inline-guarded*
    /// branch since the last hop — the spliced analogue of
    /// `guard_stats`, keyed by the optimized CFG's guard blocks from the
    /// current artifact's [`crate::cache::InlinePlan::guards`] (the
    /// caller's own profile knows nothing about cloned callee blocks).
    inline_guard_stats: HashMap<BlockId, (u64, u64)>,
    /// The pre-vetted escape for a violating frame currently hopping into
    /// a specialized version; fired at the first observation after the
    /// landing.
    value_escape: Option<ValueEscape>,
    /// Rung the frame currently runs.
    tier: Tier,
    /// Artifact of the current rung (`None` at baseline).
    current: Option<Arc<CompiledVersion>>,
    /// Shared `(function, tier)` counter of the current rung.
    counter: Arc<AtomicU64>,
    /// Shared speculation-failure deopt counter of the function (cached so
    /// the hot observe path never takes the profile-table lock).
    deopt_counter: Arc<AtomicU64>,
    /// Hop requested but not yet landed.
    pending: Option<PendingHop>,
    /// Committed hops, in order.
    hops: Vec<HopLabel>,
    /// When the frame entered its current rung — stamped at controller
    /// creation and at each hop, *never* on the observe path.
    rung_entered: Instant,
    /// Execution nanoseconds per visited rung, in visit order: the
    /// batched per-request time attribution, flushed to the shared
    /// profile (and the request's trace) once the request finishes.
    rung_nanos: Vec<(Tier, u64)>,
    /// Whether this frame has deopted (used to label re-climbs).
    deopted: bool,
    /// Memoized `(deopts, threshold)` of the current rung's up edge —
    /// the cache-probe lookup behind [`TierPolicy::threshold_with_cache`]
    /// runs once per climb epoch, not once per loop iteration.  Cleared
    /// on every hop; recomputed when the deopt count moves.
    threshold_memo: Option<(u64, u64)>,
    /// Frame-local `(hot hits, uncommon hits)` per guarded branch since
    /// the last hop — the deopt decider: a guard fires only when the
    /// uncommon count reaches the policy tolerance *and* the observed
    /// uncommon rate exceeds what the profiled bias already allowed, so
    /// steady profile-consistent traffic never thrashes.
    guard_stats: HashMap<BlockId, (u64, u64)>,
    /// Memoized per-branch bias verdicts for the current climb.
    bias_cache: HashMap<BlockId, Option<BlockId>>,
    /// Whether this request already recorded its cache hit/miss.
    accounted: bool,
    /// Keys whose per-key probe history this request already fed (one
    /// probe per request per rung, so a long frame does not drown the
    /// hit-rate signal).
    probed: HashSet<CacheKey>,
    /// Keys this request already enqueued compile jobs for.
    enqueued: HashSet<CacheKey>,
    /// `(tier, point)` pairs where a hop was infeasible (never retried).
    failed_points: BTreeSet<(u8, InstId)>,
    /// Rungs whose outgoing composed table was rejected (never retried).
    blocked: BTreeSet<u8>,
}

impl<'e> EngineController<'e> {
    fn new(core: &'e EngineCore, function: &'e str, base: &'e Function, args: &'e [Val]) -> Self {
        let pinned: Vec<(ssair::ValueId, Val)> = args
            .iter()
            .enumerate()
            .take(base.params.len())
            .map(|(i, a)| (base.param_value(i), *a))
            .collect();
        let local_values: Vec<((usize, i64), u64)> = args
            .iter()
            .enumerate()
            .take(base.params.len())
            .filter_map(|(i, a)| match a {
                Val::Int(n) => Some(((i, *n), 1)),
                Val::Ptr(..) => None,
            })
            .collect();
        EngineController {
            core,
            function,
            base,
            args,
            pinned,
            local: LocalProfile::new(local_values),
            spec_memo: None,
            no_value_spec: false,
            inline_memo: None,
            no_inline: false,
            inline_guard_stats: HashMap::new(),
            value_escape: None,
            tier: Tier::BASELINE,
            current: None,
            counter: core.profiles.counter(function, Tier::BASELINE),
            deopt_counter: core.profiles.deopt_counter(function),
            pending: None,
            hops: Vec::new(),
            rung_entered: Instant::now(),
            rung_nanos: Vec::new(),
            deopted: false,
            threshold_memo: None,
            guard_stats: HashMap::new(),
            bias_cache: HashMap::new(),
            accounted: false,
            probed: HashSet::new(),
            enqueued: HashSet::new(),
            failed_points: BTreeSet::new(),
            blocked: BTreeSet::new(),
        }
    }

    fn account(&mut self, hit: bool) {
        if !self.accounted {
            if hit {
                self.core.cache.count_hit();
            } else {
                self.core.cache.count_miss();
            }
            self.accounted = true;
        }
    }

    /// Closes the current rung's time slice and flushes the per-rung
    /// deltas to the shared profile — called once when the request
    /// finishes (the visit-order vector stays intact for the trace).
    fn finish_timing(&mut self) {
        let now = Instant::now();
        let nanos = now.duration_since(self.rung_entered).as_nanos() as u64;
        self.rung_nanos.push((self.tier, nanos));
        self.rung_entered = now;
        self.core
            .profiles
            .record_time(self.function, self.rung_nanos.iter().copied());
    }

    /// Drains the thread-local buffer into the shared profile.  `force`
    /// drains unconditionally (request end, hops — the observations must
    /// be visible to whatever runs next); otherwise the drain is gated on
    /// [`ProfileTable::advance_epoch`] having moved since the last drain,
    /// which costs one relaxed atomic load on the steady state.
    fn flush_profile(&mut self, force: bool) {
        self.core
            .profiles
            .flush_local(self.function, self.tier, &mut self.local, force);
    }

    /// The value speculation the next climb should target, memoized per
    /// climb epoch: empty when the policy disables value speculation, the
    /// frame's speculation is poisoned, or no argument slot is stable; at
    /// a specialized rung, the current artifact's own speculation (so a
    /// climb stays consistent along the whole ladder).
    fn desired_speculation(&mut self) -> Speculation {
        if let Some(memo) = &self.spec_memo {
            return memo.clone();
        }
        let spec = if self.no_value_spec {
            Speculation::none()
        } else if let Some(cur) = self
            .current
            .as_ref()
            .filter(|cv| !cv.speculation.is_empty())
        {
            cur.speculation.clone()
        } else if let Some(policy) = self.core.policy.tiers.value_speculation() {
            Speculation::on((0..self.base.params.len()).filter_map(|slot| {
                self.core
                    .profiles
                    .stable_value(self.function, slot, &policy)
                    .map(|v| (slot, v))
            }))
        } else {
            Speculation::none()
        };
        self.spec_memo = Some(spec.clone());
        spec
    }

    /// The inline speculation the next climb should target, memoized per
    /// climb epoch alongside the value-speculation verdict: empty when
    /// the engine disables inlining, the frame's inlining is poisoned, or
    /// the destination rung sits below the splice rungs (only O3/O4
    /// splice — lower rungs recompile too often for it to pay off).  At a
    /// rung that already inlined, the current artifact's own spec is
    /// carried up (a climb stays consistent along the ladder) as long as
    /// no spliced callee has been republished since.
    fn desired_inline(&mut self, spec: &PipelineSpec) -> InlineSpec {
        if let Some(memo) = &self.inline_memo {
            return memo.clone();
        }
        let mut verdict = InlineSpec::none();
        if self.core.policy.inlining
            && !self.no_inline
            && matches!(spec, PipelineSpec::O3 | PipelineSpec::O4)
        {
            let carried = self
                .current
                .as_ref()
                .filter(|cv| cv.inline.is_some())
                .map(|cv| cv.inline_spec.clone());
            verdict = match carried {
                Some(spec)
                    if spec.sites().iter().all(|(_, callee, epoch)| {
                        self.core.cache.inline_epoch(callee) == *epoch
                    }) =>
                {
                    spec
                }
                _ => {
                    let policy = InlineSpeculationPolicy::default();
                    let module = &self.core.vm.module;
                    let sites = self
                        .core
                        .profiles
                        .inline_sites(self.function, &policy, |callee| {
                            module
                                .get(callee)
                                .filter(|f| InlineCalls::can_inline(f))
                                .map(Function::live_inst_count)
                        });
                    InlineSpec::on(sites.into_iter().map(|(at, callee)| {
                        let epoch = self.core.cache.inline_epoch(&callee);
                        (at, callee, epoch)
                    }))
                }
            };
        }
        self.inline_memo = Some(verdict.clone());
        verdict
    }

    /// Materializes the compile-job payload for an inline spec: each
    /// site's callee body snapshot plus the callee's *own* profiled
    /// branch bias under the destination rung's speculation policy.
    /// Nested call frames are never edge-observed, so the bias comes from
    /// the callee's time as a directly-requested baseline function —
    /// empty bias just means the spliced region carries no speculative
    /// guards.
    fn inline_sites_for(&self, next: Tier, spec: &InlineSpec) -> Vec<InlineSite> {
        let spol = self.core.policy.tiers.speculation_at(next);
        spec.sites()
            .iter()
            .filter_map(|(at, callee, _)| {
                let f = self.core.vm.module.get(callee)?;
                let bias = f
                    .block_ids()
                    .into_iter()
                    .filter(|b| f.block(*b).term.successors().len() > 1)
                    .filter_map(|b| {
                        self.core
                            .profiles
                            .edge_bias(callee, b, &spol)
                            .map(|hot| (b, hot))
                    })
                    .collect();
                Some(InlineSite {
                    at: *at,
                    callee: Arc::new(f.clone()),
                    bias,
                })
            })
            .collect()
    }

    /// Builds the cross-function exit out of the current inlined
    /// artifact: a backward hop through the plan's validated exit table
    /// into the spliced snapshot, from which the runtime reconstructs the
    /// callee frame (for mid-region landings) and resumes the true,
    /// call-preserving baseline at the call's continuation.  The exit is
    /// never mandatory — the spliced code is semantically exact, so an
    /// infeasible exit point soundly keeps running it.
    fn inline_exit_decision(&mut self, at: InstId, uncommon: u64) -> Option<TierDecision> {
        let cur = self.current.as_ref()?;
        let plan = Arc::clone(cur.inline.as_ref()?);
        let target = InlineExitTarget {
            spliced: Arc::clone(&plan.spliced),
            table: Arc::clone(&plan.to_spliced),
            base: Arc::clone(&cur.base),
            regions: Arc::new(plan.regions.clone()),
            callees: plan.callees.clone(),
            rung: Tier::BASELINE,
            pinned: self.pinned.clone(),
            mandatory: false,
            violated: Some(AssumptionKind::Inline),
        };
        // The frame re-climbs without the stale splice assumption.
        self.no_inline = true;
        self.inline_memo = None;
        self.pending = Some(PendingHop {
            to: Tier::BASELINE,
            artifact: None,
            composed: false,
            speculated: false,
            guard_entry: false,
            deopt: Some(DeoptReason::inline_guard(at, uncommon)),
        });
        Some(TierDecision::InlineExit(target))
    }

    /// The adapted climb threshold of the current rung's up edge
    /// ([`TierPolicy::threshold_with_cache`]), memoized per climb epoch:
    /// the per-key probe lookup and the adaptation metrics run once per
    /// `(hop, deopt-count)` epoch instead of once per loop iteration.
    fn adapted_threshold(&mut self, key: &CacheKey, deopts: u64) -> u64 {
        if let Some((d, t)) = self.threshold_memo {
            if d == deopts {
                return t;
            }
        }
        let tiers = &self.core.policy.tiers;
        let (hits, misses) = self.core.cache.probe_stats(key);
        let threshold = tiers.threshold_with_cache(self.tier, deopts, hits, misses);
        let unadapted = tiers.threshold_after_deopts(self.tier, deopts);
        if threshold < unadapted {
            self.core
                .metrics
                .threshold_lowers
                .fetch_add(1, Ordering::Relaxed);
        } else if threshold > unadapted {
            self.core
                .metrics
                .threshold_raises
                .fetch_add(1, Ordering::Relaxed);
        }
        self.threshold_memo = Some((deopts, threshold));
        threshold
    }

    /// Resolves where a guard failure at `branch` lands, following the
    /// graph's down edges under the policy's [`DeoptStrategy`]: adaptive
    /// falls pick the highest candidate rung that is *bias-neutral* for
    /// the failing branch — its speculation policy would not guard the
    /// branch, so the landed frame keeps running optimized code instead
    /// of thrashing straight back into the same guard.
    fn deopt_landing(&self, branch: BlockId) -> Tier {
        let tiers = &self.core.policy.tiers;
        match tiers.deopt_strategy(self.tier) {
            // A fixed target must be below the frame and reachable along
            // a declared down edge; the baseline is always a legal
            // emergency landing (every artifact carries a direct
            // backward table), so anything else clamps to it.
            crate::tiers::DeoptStrategy::Fixed(t)
                if t < self.tier && (t.is_baseline() || tiers.graph().has_edge(self.tier, t)) =>
            {
                t
            }
            crate::tiers::DeoptStrategy::Fixed(_) => Tier::BASELINE,
            crate::tiers::DeoptStrategy::Adaptive => tiers
                .graph()
                .down_targets(self.tier)
                .find(|d| {
                    d.is_baseline()
                        || self
                            .core
                            .profiles
                            .edge_bias(self.function, branch, &tiers.speculation_at(*d))
                            .is_none()
                })
                .unwrap_or(Tier::BASELINE),
        }
    }

    /// Builds the guard-failure tier-down hop: to the resolved landing
    /// rung through the current artifact's direct backward table
    /// (baseline) or a composed down-table (intermediate rung), falling
    /// back to the baseline when the partial fall is unavailable.
    fn tier_down_target(&mut self, reason: DeoptReason, branch: BlockId) -> Option<TierTarget> {
        let cur = Arc::clone(self.current.as_ref()?);
        let violated = reason.violated_kind();
        let tiers = &self.core.policy.tiers;
        let to = self.deopt_landing(branch);
        if !to.is_baseline() {
            let spec = tiers.spec(to).expect("target is a graph rung").clone();
            if let Some(tcv) = self.core.cache.get(&CacheKey::new(self.function, spec)) {
                if let Ok(table) = self.core.composed_table(self.function, &cur, &tcv) {
                    let target = Arc::clone(&tcv.opt);
                    let machine = tcv.machine.clone();
                    self.pending = Some(PendingHop {
                        to,
                        artifact: Some(tcv),
                        composed: true,
                        speculated: false,
                        guard_entry: false,
                        deopt: Some(reason),
                    });
                    return Some(TierTarget {
                        target,
                        table,
                        direction: Direction::Backward,
                        rung: to,
                        pinned: self.pinned.clone(),
                        mandatory: false,
                        machine,
                        violated,
                    });
                }
            }
            // Partial fall unavailable: fall to the baseline instead.
        }
        self.pending = Some(PendingHop {
            to: Tier::BASELINE,
            artifact: None,
            composed: false,
            speculated: false,
            guard_entry: false,
            deopt: Some(reason),
        });
        Some(TierTarget {
            target: Arc::clone(&cur.base),
            table: Arc::clone(&cur.tier_down),
            direction: Direction::Backward,
            rung: Tier::BASELINE,
            pinned: self.pinned.clone(),
            mandatory: false,
            machine: None,
            violated,
        })
    }

    /// Poisons value speculation for this frame: it re-climbs on generic
    /// artifacts only, and the next visit re-decides the climb afresh.
    fn poison_value_spec(&mut self) {
        self.no_value_spec = true;
        self.spec_memo = None;
        self.threshold_memo = None;
    }

    /// Hops a *violating* frame into the ready specialized artifact so
    /// its entry guard fires — the interpreter-level model of a compiled
    /// prologue guard: the frame transfers in, the guard trips at the
    /// landing (the first instrumented visit, before any specialized
    /// instruction executes), and a pre-vetted escape hops it straight
    /// out onto the *same rung's generic artifact*, where it re-climbs
    /// without the assumption.
    ///
    /// The escape deliberately uses no specialized-version mapping at
    /// all: the forward leg's identity transfers leave real source-frame
    /// values addressable under their own (version-independent) ids, and
    /// the generic artifact's *direct* forward table at the landing reads
    /// exactly such values — vetted by [`vet_generic_escape`], so a
    /// seeded constant can never launder into the violating frame.  The
    /// escape is marked mandatory: if it somehow cannot be served at fire
    /// time, the request aborts instead of running wrong code.
    ///
    /// Returns `None` (caller continues interpreting; speculation is
    /// poisoned frame-locally) when any leg of the round trip cannot be
    /// proven safe for a violating frame.
    fn violating_hop(
        &mut self,
        at: InstId,
        spec_cv: Arc<CompiledVersion>,
        next: Tier,
    ) -> Option<TierTarget> {
        let (slot, expected, actual) = spec_cv
            .speculation
            .violation(self.args)
            .expect("caller checked the mismatch");
        // The escape target: the same rung's generic artifact.  Without
        // it there is no speculation-free way out — stay generic instead.
        let generic_key = CacheKey::new(self.function, spec_cv.spec.clone());
        let Some(gcv) = self.core.cache.get(&generic_key) else {
            self.poison_value_spec();
            return None;
        };
        // Forward leg: direct off the baseline, composed off a higher rung.
        let (fwd_table, fwd_composed) = if self.tier.is_baseline() {
            (Arc::clone(&spec_cv.tier_up), false)
        } else {
            let cur = self
                .current
                .as_ref()
                .expect("an optimized rung has an artifact");
            match self.core.composed_table(self.function, cur, &spec_cv) {
                Ok(table) => (table, true),
                Err(_) => {
                    self.poison_value_spec();
                    return None;
                }
            }
        };
        let Some((landing, fwd_entry)) = fwd_table.get(at) else {
            self.poison_value_spec();
            return None;
        };
        let land = landing.loc;
        // The guard must trip at the landing, before anything executes:
        // the landing has to be an instrumented point of the specialized
        // version.
        if !spec_cv.header_points.contains(&land) {
            self.poison_value_spec();
            return None;
        }
        // Escape leg: the generic artifact's own (speculation-free)
        // forward table at the landing, reading only identity-transferred
        // real values and pinned parameters.
        let Some((_, escape_entry)) = gcv.tier_up.get(land) else {
            self.poison_value_spec();
            return None;
        };
        let Some(const_pins) = vet_generic_escape(fwd_entry, escape_entry, self.base) else {
            self.poison_value_spec();
            return None;
        };
        let mut escape_pinned = self.pinned.clone();
        escape_pinned.extend(const_pins);
        self.value_escape = Some(ValueEscape {
            target: TierTarget {
                target: Arc::clone(&gcv.opt),
                table: Arc::clone(&gcv.tier_up),
                direction: Direction::Backward,
                rung: next,
                pinned: escape_pinned,
                mandatory: true,
                machine: gcv.machine.clone(),
                violated: Some(AssumptionKind::Value),
            },
            to: next,
            artifact: Some(gcv),
            composed: false,
            reason: DeoptReason::value_guard(land, slot, expected, actual),
        });
        let target = Arc::clone(&spec_cv.opt);
        let machine = spec_cv.machine.clone();
        self.pending = Some(PendingHop {
            to: next,
            artifact: Some(spec_cv),
            composed: fwd_composed,
            speculated: true,
            guard_entry: true,
            deopt: None,
        });
        Some(TierTarget {
            target,
            table: fwd_table,
            direction: Direction::Forward,
            rung: next,
            pinned: self.pinned.clone(),
            mandatory: false,
            machine,
            violated: None,
        })
    }
}

impl TierController for EngineController<'_> {
    fn observes_edges(&self) -> bool {
        true // the speculation lifecycle runs on edge observations
    }

    fn observes_calls(&self) -> bool {
        // Call edges are only meaningful in baseline coordinates (every
        // pass preserves `InstId`s, but a climbed frame's call may sit in
        // dead-stripped or spliced code), and only worth buffering when
        // inlining can consume them.  The runtime re-reads this flag on
        // every version hop, so a frame stops observing the moment it
        // climbs.
        self.core.policy.inlining && self.tier.is_baseline()
    }

    fn observe_call(&mut self, at: InstId, callee: &str) {
        *self
            .local
            .calls
            .entry((at, callee.to_string()))
            .or_insert(0) += 1;
    }

    fn observe(&mut self, at: InstId, _count: usize) -> TierDecision {
        // Epoch-gated: on the steady state (no compile submitted since the
        // last drain) this is one relaxed load, never a shared lock.
        self.flush_profile(false);
        // Count the visit first: top-rung frames still contribute to the
        // per-(function, tier) hotness profile.
        let total = self.counter.fetch_add(1, Ordering::Relaxed) + 1;
        // A pre-vetted value-guard escape fires at the first instrumented
        // visit after the violating hop landed — this very instruction,
        // before any specialized code has executed.
        if let Some(escape) = self.value_escape.take() {
            self.poison_value_spec();
            self.pending = Some(PendingHop {
                to: escape.to,
                artifact: escape.artifact,
                composed: escape.composed,
                speculated: false,
                guard_entry: false,
                deopt: Some(escape.reason),
            });
            return TierDecision::Transition(escape.target);
        }
        let tiers = &self.core.policy.tiers;
        let Some(next) = tiers.next_tier(self.tier) else {
            return TierDecision::Continue; // no up edge out of this rung
        };
        // Borrow the next rung's spec; it is only cloned past the
        // threshold (the steady cold-frame path allocates nothing).
        let spec = tiers.spec(next).expect("next is a graph rung");
        let deopts = self.deopt_counter.load(Ordering::Relaxed);
        if self.threshold_memo.is_none_or(|(d, _)| d != deopts) {
            // New climb epoch: re-decide the value speculation alongside
            // the threshold (both are profile queries, memoized together
            // and refreshed together — a stale verdict would otherwise
            // survive until the next hop).
            let spec = spec.clone();
            self.spec_memo = None;
            self.inline_memo = None;
            let speculation = self.desired_speculation();
            let inline = self.desired_inline(&spec);
            let key = CacheKey::inlined(self.function, spec, speculation, inline);
            self.adapted_threshold(&key, deopts);
        }
        let (_, threshold) = self.threshold_memo.expect("just memoized");
        if total < threshold {
            return TierDecision::Continue;
        }
        if self.blocked.contains(&self.tier.0) || self.failed_points.contains(&(self.tier.0, at)) {
            return TierDecision::Continue;
        }
        let key = CacheKey::inlined(
            self.function,
            spec.clone(),
            self.desired_speculation(),
            self.desired_inline(spec),
        );
        match self.core.cache.get(&key) {
            Some(cv) => {
                self.account(true);
                if self.probed.insert(key.clone()) {
                    self.core.cache.note_probe(&key, true);
                }
                let speculated = !cv.speculation.is_empty();
                if speculated && !cv.speculation.matches(self.args) {
                    // Entry guard: the ready artifact speculates on a value
                    // this frame's arguments violate.  Hop in to fire the
                    // guard (sound: the vetted escape runs before any
                    // specialized instruction) — or, when the round trip
                    // cannot be vetted, stay out and re-climb generic.
                    return match self.violating_hop(at, cv, next) {
                        Some(target) => TierDecision::Transition(target),
                        None => TierDecision::Continue,
                    };
                }
                let (target, table) = if self.tier.is_baseline() {
                    (Arc::clone(&cv.opt), Arc::clone(&cv.tier_up))
                } else {
                    let cur = self
                        .current
                        .as_ref()
                        .expect("an optimized rung has an artifact");
                    match self.core.composed_table(self.function, cur, &cv) {
                        Ok(table) => (Arc::clone(&cv.opt), table),
                        Err(_) if speculated => {
                            // Rejected speculative composition: re-climb
                            // generic instead of blocking the rung.
                            self.poison_value_spec();
                            return TierDecision::Continue;
                        }
                        Err(_) => {
                            // Rejected composition: this rung can never hop.
                            self.blocked.insert(self.tier.0);
                            return TierDecision::Continue;
                        }
                    }
                };
                let machine = cv.machine.clone();
                self.pending = Some(PendingHop {
                    to: next,
                    artifact: Some(cv),
                    composed: !self.tier.is_baseline(),
                    speculated,
                    guard_entry: false,
                    deopt: None,
                });
                TierDecision::Transition(TierTarget {
                    target,
                    table,
                    direction: Direction::Forward,
                    rung: next,
                    pinned: self.pinned.clone(),
                    mandatory: false,
                    machine,
                    violated: None,
                })
            }
            None => {
                self.account(false);
                if self.probed.insert(key.clone()) {
                    self.core.cache.note_probe(&key, false);
                }
                if self.enqueued.insert(key.clone()) && self.core.cache.claim(&key) {
                    // This frame's own buffered edges belong in the layout
                    // snapshot the job is about to take.
                    self.flush_profile(true);
                    let profile = self.core.layout_snapshot(self.function, &key.pipeline);
                    let sites = self.inline_sites_for(next, &key.inline_spec());
                    self.core.pool.submit(
                        CompileJob {
                            key,
                            base: self.base.clone(),
                            priority: total,
                            profile,
                            sites,
                        },
                        &self.core.metrics,
                    );
                }
                TierDecision::Continue
            }
        }
    }

    fn observe_edge(&mut self, from: BlockId, to: BlockId, at: InstId) -> TierDecision {
        if self.tier.is_baseline() {
            // Profile: every edge taken at the baseline feeds the shared
            // speculation profile (batched; flushed at instrumented
            // visits).
            *self.local.edges.entry((from, to)).or_insert(0) += 1;
            return TierDecision::Continue;
        }
        // Inline guards first: a spliced region's profiled branches are
        // guarded against the *callee's* bias, recorded in the artifact's
        // plan at compile time (the caller's own edge profile knows
        // nothing about cloned callee blocks).
        if let Some(plan) = self
            .current
            .as_ref()
            .and_then(|cv| cv.inline.as_ref().map(Arc::clone))
        {
            if let Some(&(_, hot)) = plan.guards.iter().find(|(b, _)| *b == from) {
                let policy = self.core.policy.tiers.speculation_at(self.tier);
                let stats = self.inline_guard_stats.entry(from).or_insert((0, 0));
                if to == hot {
                    stats.0 += 1;
                    return TierDecision::Continue;
                }
                stats.1 += 1;
                let (hot_hits, hits) = *stats;
                // Same wrongness test as value-bias guards: enough
                // uncommon hits, at a rate above what the callee's
                // profiled bias already tolerated.
                let allowed_percent = (100 - policy.bias_percent.min(100)) as u64;
                let within_allowance = hits * 100 <= (hot_hits + hits) * allowed_percent;
                if hits < policy.tolerance
                    || within_allowance
                    || self.failed_points.contains(&(self.tier.0, at))
                {
                    return TierDecision::Continue;
                }
                return match self.inline_exit_decision(at, hits) {
                    Some(decision) => decision,
                    None => TierDecision::Continue,
                };
            }
        }
        // Guard: compare the taken edge against the profiled bias, under
        // the *rung-specific* speculation policy (deeper rungs guard more
        // branches).
        let policy = self.core.policy.tiers.speculation_at(self.tier);
        let profiles = &self.core.profiles;
        let function = self.function;
        let bias = *self
            .bias_cache
            .entry(from)
            .or_insert_with(|| profiles.edge_bias(function, from, &policy));
        let Some(hot) = bias else {
            // This rung does not speculate on the branch: record the edge
            // into the per-rung profile instead, so a partially-deopted
            // frame keeps correcting the bias without re-entering the
            // baseline.
            *self.local.edges.entry((from, to)).or_insert(0) += 1;
            return TierDecision::Continue;
        };
        let stats = self.guard_stats.entry(from).or_insert((0, 0));
        if to == hot {
            stats.0 += 1;
            return TierDecision::Continue;
        }
        stats.1 += 1;
        let (hot_hits, hits) = *stats;
        *self.local.uncommon.entry(from).or_insert(0) += 1;
        // Fire only on *wrong* speculation: enough uncommon hits, taken at
        // a higher rate than the profiled bias already tolerated.
        let allowed_percent = (100 - policy.bias_percent.min(100)) as u64;
        let within_allowance = hits * 100 <= (hot_hits + hits) * allowed_percent;
        if hits < policy.tolerance
            || within_allowance
            || self.failed_points.contains(&(self.tier.0, at))
        {
            return TierDecision::Continue;
        }
        match self.tier_down_target(DeoptReason::bias_guard(at, hits), from) {
            Some(target) => TierDecision::Transition(target),
            None => TierDecision::Continue,
        }
    }

    fn on_infeasible(&mut self, at: InstId) {
        self.pending = None;
        // An infeasible forward leg of a violating round trip disarms the
        // escape with it (the frame never entered the specialized code).
        self.value_escape = None;
        self.failed_points.insert((self.tier.0, at));
        self.core.metrics.infeasible.fetch_add(1, Ordering::Relaxed);
    }

    fn on_transition(&mut self, _at: InstId) {
        // Unflushed guard observations belong to the rung being left.
        self.flush_profile(true);
        let hop = self
            .pending
            .take()
            .expect("a hop landed only after being requested");
        // Time spent since the last hop (or frame entry) belongs to the
        // rung being left — one Instant stamp per hop, batched locally.
        let now = Instant::now();
        let nanos = now.duration_since(self.rung_entered).as_nanos() as u64;
        self.rung_nanos.push((self.tier, nanos));
        self.rung_entered = now;
        // Every deopt-labelled hop counts — including the same-rung
        // value-guard escape onto the rung's generic artifact.
        let down = hop.deopt.is_some();
        self.hops.push(HopLabel {
            from: self.tier,
            to: hop.to,
            composed: hop.composed,
            speculated: hop.speculated,
            machine: hop.artifact.as_ref().is_some_and(|a| a.machine.is_some()),
            inlined: hop.artifact.as_ref().is_some_and(|a| a.inline.is_some()),
            guard_entry: hop.guard_entry,
            deopt: hop.deopt.clone(),
            reclimb: self.deopted && hop.to > self.tier,
            at_micros: self.core.events.now_micros(),
        });
        if down {
            self.deopted = true;
            self.deopt_counter.fetch_add(1, Ordering::Relaxed);
        }
        // The profile the frame gathered about this climb is stale after
        // any hop: biases are re-queried (under the landed rung's
        // policy), guard counters restart, and the climb threshold and
        // value-speculation verdict are re-decided.
        self.guard_stats.clear();
        self.inline_guard_stats.clear();
        self.bias_cache.clear();
        self.threshold_memo = None;
        self.spec_memo = None;
        self.inline_memo = None;
        self.tier = hop.to;
        self.counter = self.core.profiles.counter(self.function, hop.to);
        self.current = hop.artifact;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> Module {
        minic::compile(
            "fn hot(x, n) {
                 var s = 0;
                 for (var i = 0; i < n; i = i + 1) {
                     s = s + x * x + i;
                 }
                 return s;
             }
             fn cold(x) {
                 return x * 2 + 1;
             }",
        )
        .unwrap()
    }

    fn policy() -> EnginePolicy {
        EnginePolicy {
            compile_workers: 1,
            batch_workers: 2,
            ..EnginePolicy::two_tier(8, 24)
        }
    }

    #[test]
    fn batch_results_match_plain_interpretation() {
        let m = module();
        let engine = Engine::new(m.clone(), policy());
        let requests: Vec<Request> = (0..12)
            .map(|k| Request::tiered("hot", vec![Val::Int(k % 5), Val::Int(40 + k)]))
            .collect();
        let report = engine.run_batch(&requests);
        let vm = Vm::new(m);
        for (req, got) in requests.iter().zip(&report.results) {
            let expected = vm
                .run_plain(vm.module.get("hot").unwrap(), &req.args)
                .unwrap();
            assert_eq!(got.as_ref().unwrap(), &expected);
        }
        assert_eq!(report.metrics.requests, 12);
    }

    #[test]
    fn hot_function_tiers_up_in_background() {
        let m = module();
        let engine = Engine::new(m, policy());
        // Enough independent requests that later ones find the artifact.
        let requests: Vec<Request> = (0..16)
            .map(|k| Request::tiered("hot", vec![Val::Int(3), Val::Int(60 + k)]))
            .collect();
        let mut tier_ups = 0;
        for _ in 0..4 {
            let report = engine.run_batch(&requests);
            tier_ups += report.transitions(Direction::Forward);
        }
        assert!(tier_ups > 0, "a background tier-up eventually fires");
        assert!(engine.metrics().compiles >= 1);
        assert!(engine.cache().ready_count() >= 1);
    }

    #[test]
    fn prewarmed_ladder_climbs_to_the_top_in_one_frame() {
        let m = module();
        let engine = Engine::new(m.clone(), policy());
        engine.prewarm("hot").expect("hot exists");
        assert_eq!(engine.cache().ready_count(), 2, "O1 and O2 artifacts");
        assert_eq!(engine.cache().composed_count(), 1, "O1→O2 table");
        let req = Request::tiered("hot", vec![Val::Int(2), Val::Int(500)]);
        let report = engine.run_batch(std::slice::from_ref(&req));
        let vm = Vm::new(m);
        let expected = vm
            .run_plain(vm.module.get("hot").unwrap(), &req.args)
            .unwrap();
        assert_eq!(report.results[0].as_ref().unwrap(), &expected);
        let hops: Vec<(Tier, Tier, bool)> = report
            .events
            .iter()
            .filter_map(|e| match e {
                EngineEvent::Transition {
                    from_tier,
                    to_tier,
                    composed,
                    ..
                } => Some((*from_tier, *to_tier, *composed)),
                _ => None,
            })
            .collect();
        assert_eq!(
            hops,
            vec![
                (Tier(0), Tier(1), false),
                (Tier(1), Tier(2), true), // composed, never re-entering O0
            ],
            "one frame climbs the whole ladder"
        );
        assert_eq!(report.metrics.composed_tier_ups, 1);
    }

    #[test]
    fn debug_requests_deopt_through_cache() {
        let m = module();
        let engine = Engine::new(m.clone(), policy());
        let req = Request::debug("hot", vec![Val::Int(2), Val::Int(50)]);
        let report = engine.run_batch(std::slice::from_ref(&req));
        let vm = Vm::new(m);
        let expected = vm
            .run_plain(vm.module.get("hot").unwrap(), &req.args)
            .unwrap();
        assert_eq!(report.results[0].as_ref().unwrap(), &expected);
        assert_eq!(report.transitions(Direction::Backward), 1, "deopt fired");
        assert!(engine.metrics().deopts >= 1);
        // The deopt left the top rung for the baseline.
        assert!(report.events.iter().any(|e| matches!(
            e,
            EngineEvent::Transition {
                from_tier: Tier(2),
                to_tier: Tier(0),
                ..
            }
        )));
    }

    #[test]
    fn unknown_function_is_an_error() {
        let engine = Engine::new(module(), policy());
        let report = engine.run_batch(&[Request::tiered("nope", vec![])]);
        assert!(matches!(
            report.results[0],
            Err(EngineError::UnknownFunction(_))
        ));
        assert!(engine.prewarm("nope").is_err());
    }

    #[test]
    fn cold_functions_never_compile() {
        let m = module();
        let engine = Engine::new(m, policy());
        let requests: Vec<Request> = (0..8)
            .map(|k| Request::tiered("cold", vec![Val::Int(k)]))
            .collect();
        let report = engine.run_batch(&requests);
        assert!(report.results.iter().all(Result::is_ok));
        assert_eq!(engine.metrics().compiles, 0, "no loops, no hotness");
        assert_eq!(engine.cache().ready_count(), 0);
    }
}
