//! A concurrent tiered-execution service over the OSR machinery: the role
//! a production VM's execution manager plays around OSRKit/MCJIT in
//! §5.4/§6.1 of *On-Stack Replacement, Distilled*, scaled from "one
//! function at a time" to batched multi-tenant traffic.
//!
//! # Architecture
//!
//! ```text
//!   requests ──► Engine::run_batch ──► N request threads (interpreters)
//!                                         │ hotness (shared counters)
//!                                         ▼
//!                 ┌──────────────── TierController ───────────────┐
//!                 │ cold: keep interpreting                       │
//!                 │ hot + no artifact: claim slot, enqueue job ───┼──► CompileQueue
//!                 │ hot + artifact ready: fire tier-up OSR        │        │
//!                 └───────────────▲───────────────────────────────┘        ▼
//!                                 │ publish                        compile workers
//!                            CodeCache ◄──────────────────────────  (background)
//!                    (FunctionVersions + precomputed,
//!                     validated OSR entry tables)
//! ```
//!
//! # Tier-up lifecycle
//!
//! 1. Every request interprets its function's **baseline** version; the
//!    interpreter reports each loop-header OSR-point visit to the
//!    engine's [`tinyvm::profile::TierController`].
//! 2. Visits accumulate in a **shared, cross-request counter** per
//!    function ([`ProfileTable`]).  When the counter crosses
//!    [`EnginePolicy::hotness_threshold`], the controller claims the
//!    cache slot and enqueues a [`pool::CompileJob`]; the request keeps
//!    interpreting — compilation never blocks the request thread.
//! 3. A background worker optimizes the function (recording the §5.1
//!    primitive actions), **precomputes both OSR entry tables**
//!    (`ssair::feasibility::precompute_entries`, the SSA analogue of the
//!    `osr` crate's validated mapping precomputation), validates them
//!    structurally, and publishes the artifact to the [`cache::CodeCache`].
//! 4. The next hot visit — by *any* request of *any* batch — finds the
//!    artifact and fires an optimizing OSR through the precomputed
//!    forward table: compensation code runs against the live frame and
//!    execution continues in the optimized version (via a generated
//!    continuation function or direct frame surgery,
//!    [`tinyvm::runtime::TransitionOptions`]).
//!
//! # Tier-down lifecycle
//!
//! A request in [`ExecMode::Debug`] models a debugger attach (§7): the
//! optimized version must stop being the one that runs.  The engine
//! ensures an artifact exists (compiling synchronously if needed — the
//! only blocking compile), runs the **optimized** version, and at the
//! first instrumented visit fires a deoptimizing OSR through the
//! precomputed *backward* table — `reconstruct`'s compensation code
//! rebuilds the baseline frame state (Algorithm 1, `avail` variant by
//! default) and execution finishes in the baseline version, where every
//! source variable is inspectable.
//!
//! # Observability
//!
//! Every transition, compile and rejection is recorded as an
//! [`metrics::EngineEvent`]; aggregate counters (tier-ups, deopts,
//! cache hits/misses, queue depth/peak, compile latency) are available
//! as a [`metrics::MetricsSnapshot`] from [`Engine::metrics`] and in
//! every [`BatchReport`].
//!
//! # Example
//!
//! ```
//! use engine::{Engine, EnginePolicy, Request};
//! use ssair::interp::Val;
//!
//! let module = minic::compile(
//!     "fn work(x, n) {
//!          var s = 0;
//!          for (var i = 0; i < n; i = i + 1) { s = s + x * x + i; }
//!          return s;
//!      }",
//! ).unwrap();
//! let policy = EnginePolicy { hotness_threshold: 16, ..Default::default() };
//! let engine = Engine::new(module, policy);
//! let requests: Vec<Request> = (0..8)
//!     .map(|k| Request::tiered("work", vec![Val::Int(2), Val::Int(50 + k)]))
//!     .collect();
//! let report = engine.run_batch(&requests);
//! assert!(report.results.iter().all(Result::is_ok));
//! ```

pub mod cache;
mod engine;
pub mod metrics;
pub mod pool;

pub use cache::{CacheKey, CodeCache, CompiledVersion, PipelineSpec};
pub use engine::{BatchReport, Engine, EngineError, EnginePolicy, ExecMode, ProfileTable, Request};
pub use metrics::{EngineEvent, EngineMetrics, MetricsSnapshot};
