//! A concurrent tiered-execution service over the OSR machinery: the role
//! a production VM's execution manager plays around OSRKit/MCJIT in
//! §5.4/§6.1 of *On-Stack Replacement, Distilled*, scaled from "one
//! function at a time" to sustained multi-tenant traffic over a tier
//! ladder.
//!
//! # Architecture
//!
//! ```text
//!  submit / try_submit ─► EngineHandle ─► persistent worker pool (interpreters)
//!       │ bounded queue      ▲    │ deadline check at pickup: expired work
//!   RequestId / QueueFull    │    ▼ is dropped (DeadlineExpired), never run
//!       │              ResultEvents               │ per-(function, rung)
//!  run_batch ────────────────┘                    ▼ shared hotness + edge profile
//!  (compat wrapper)                     ┌── EngineController ──────────────┐
//!                                       │ cold: keep interpreting          │
//!                                       │ hot + rung not compiled: enqueue ┼─► CompileQueue
//!                                       │ hot + artifact ready: up edge    │  (hot-first
//!                                       │ guard failed: down edge mid-loop │   priority)
//!                                       └───────▲──────────────────────────┘      │
//!                                               │ publish (republish ⇒            ▼
//!                 transition graph (TierGraph)  │  composed invalidation)  compile workers
//!      O0 ──direct──► O1 ──composed──► O2 ──composed──► O3 ──composed──► O4 (machine)
//!      ▲               ▲◄────── adaptive one-rung deopt ─────┴───────────┘ (background,
//!      └◄──────── full deopt + debug deopt ◄──────────┘        §5.2 keep-set recompiles)
//!                           └──── CodeCache ◄───────┘
//!          (8 hash shards: per-rung FunctionVersions + validated entry
//!           tables + chained composed tables for arbitrary rung pairs)
//! ```
//!
//! # The transition graph
//!
//! A [`TierPolicy`] exposes a [`TierGraph`] — N pipeline rungs above the
//! baseline interpreter plus the allowed up/down edges between them, each
//! up edge gated by its own hotness threshold.  The default graph is the
//! chain `O0 → O1 → O2 → O3 → O4` ([`PipelineSpec::O1`] light CSE+DCE,
//! [`PipelineSpec::O2`] the §5.4 standard mix, [`PipelineSpec::O3`] the
//! aggressive mix with a second SCCP + sinking round,
//! [`PipelineSpec::O4`] the same SSA mix executed on the
//! register-allocated machine substrate — see the next section), with
//! down edges `k → k-1` and `k → 0` out of every optimized rung.  Visits of a
//! version's loop-header OSR points accumulate in shared
//! per-`(function, tier)` counters ([`ProfileTable`]); when the counter
//! of the rung a frame currently runs crosses its (adapted — see below)
//! edge threshold, the controller enqueues a background compile of the
//! next rung (from the shared baseline) and — once the artifact is
//! published — hops the live frame into it:
//!
//! * **O0 → O1** through the artifact's direct, precomputed forward table;
//! * **any higher hop** (O1 → O2, O2 → O3, and every down edge between
//!   optimized rungs) through a *composed* `fopt → fopt'` table — the
//!   SSA analogue of Theorem 3.4's mapping composition, folded over the
//!   whole rung sequence by
//!   [`ssair::feasibility::compose_entries_chain`]: adjacent hops are
//!   composed through the shared baseline
//!   ([`ssair::feasibility::compose_entries`]), and longer prefixes
//!   (e.g. the `O1 → O3` table [`Engine::prewarm`] memoizes) extend the
//!   previous prefix by a single table-level fold
//!   ([`ssair::feasibility::compose_table_pair`]) — so a frame transfers
//!   straight between optimized versions and never re-enters the
//!   baseline.  Composed tables are built lazily, validated structurally
//!   *and differentially* (compensation steps are replayed on sampled
//!   concrete frames, the SSA analogue of `osr::validate_mapping`),
//!   memoized in the cache per rung pair (both directions), and rejected
//!   with [`cache::CompileError::Divergence`] if any replay disagrees
//!   with a reference run.  A republish drops every memoized composed
//!   table routed through the replaced rung (see *Assumptions &
//!   invalidation* below) and it is rebuilt on the next hop.
//!
//! After every hop the frame stays under profiling, so one frame can
//! climb the whole graph mid-loop.  A request in [`ExecMode::Debug`]
//! models a debugger attach (§7): it runs the *top*-rung version and
//! tiers down to the baseline through the precomputed backward table at
//! the first instrumented visit, where every source variable is
//! inspectable.
//!
//! # The machine rung (O4)
//!
//! The top rung of the default graph changes the *execution substrate*,
//! not the SSA program: an O4 compile runs the same aggressive pipeline
//! as O3, precomputes and validates the same entry tables, and then
//! additionally lowers the optimized function to a linear micro-IR
//! ([`ssair::machine`]) — branches and jumps over flat program counters,
//! operands register-allocated by liveness/interference coloring onto a
//! sixteen-register file ([`ssair::machine::NUM_REGS`]) with overflow in
//! numbered spill slots, φ-nodes resolved into parallel edge copies.
//! Frames that climb into O4 execute in a dedicated dispatch loop over
//! the register file instead of the SSA interpreter.
//!
//! OSR in and out of registers is bridged by the artifact's *location
//! maps* ([`ssair::machine::LocationMap`]): every instrumented SSA point
//! keeps a bidirectional mapping between live SSA values and the
//! register/slot each lives in at that program counter.  Climbing in
//! takes the ordinary (direct or composed) SSA table to the landing
//! environment and then *scatters* it into registers; deopting out —
//! guard failure, debugger attach, value-guard escape — *gathers* the
//! registers back into an SSA environment and leaves through the same
//! validated tables every SSA rung uses.  Values the register allocator
//! rematerializes or spills are read from their *shadow slots*
//! (write-through copies maintained for every OSR-visible value), so
//! Algorithm 1's compensation steps see exactly the environment they
//! were validated against: deopt-from-registers is no weaker than
//! deopt-from-SSA.  Each O4 compile is additionally differentially
//! validated at build time — the micro-IR artifact is executed against
//! the SSA interpreter on sampled arguments and rejected on any
//! divergence ([`cache::CompileError::Divergence`]).  In the event
//! stream and request traces, hops landing in O4 carry
//! [`TableKind::Machine`].
//!
//! # Profile-guided layout
//!
//! O3 and O4 compiles consume a snapshot of the edge profile
//! ([`ssair::passes::BlockFrequencies`], built from
//! [`ProfileTable`] edge counts) and append a
//! [`ssair::passes::LayoutBlocks`] pass that reorders the optimized
//! version's blocks hot-fallthrough-first; machine lowering then emits
//! blocks in that order, so the micro-IR's hot successor is the literal
//! `pc + 1` fallthrough and the hot path stops paying taken jumps.  The
//! O2+ mixes already run `MergeBlocks` and `SimplifyJumps` — superblock
//! formation and jump threading — with every action recorded in the
//! mapper, so OSR entry tables over the laid-out version stay exact.
//!
//! **When the snapshot is taken.**  At compile-job submission: the
//! requesting controller force-drains its thread-local buffer, the
//! engine bumps the profile's drain epoch
//! ([`ProfileTable::advance_epoch`] — which makes every other live
//! frame's buffer drain at its next instrumented visit), and the
//! aggregated per-block successor totals ride into the job.  A compile
//! therefore sees the profile as of its submission, never a later one;
//! the snapshot actually used is recorded on the artifact as
//! [`cache::CompiledVersion::layout_digest`] (the `(block, hot
//! successor)` pairs the layout honored).  Rungs below O3, prewarmed
//! compiles, and engines with [`EnginePolicy::layout`] cleared compile
//! with no layout (an empty digest, creation order).
//!
//! **Layout-stale artifacts.**  A cached artifact keeps its layout until
//! the rung is *republished*: any §5.2 keep-set recompile — or an
//! explicit republish after the profile shifts, e.g. when a speculation
//! demotion already forces one — re-snapshots the current profile, so
//! the replacement artifact is laid out for the traffic that actually
//! runs.  Layout staleness alone never invalidates an artifact: the old
//! order stays *correct* (block order changes execution cost, not
//! results), so eager invalidation would only churn the cache.
//!
//! # The speculation lifecycle (guard → deopt → re-climb → demotion)
//!
//! Deoptimization is not a debugger-only special case: the same
//! validated-transition machinery runs *speculation guards* in every
//! `Tiered` frame, making tier transitions fully bidirectional.
//!
//! 1. **Profile.** The controller records which successor every
//!    conditional branch takes into the shared [`ProfileTable`], keyed
//!    per rung (batched per frame, flushed at instrumented visits): the
//!    baseline records every branch, a climbed frame every branch its
//!    rung does not guard — so a partially-deoptimized frame keeps
//!    correcting the profile without re-entering the baseline.  A branch
//!    becomes a *guard* at a rung once its aggregate profile is biased
//!    enough for that rung's policy ([`TierPolicy::speculation_at`]:
//!    under [`LadderPolicy`]'s default gradient, each rung below the top
//!    demands 5 more points of bias — deeper rungs speculate more).
//! 2. **Guard.** A climbed frame checks every taken conditional edge
//!    against the recorded bias.  Executions of the cold edge count as
//!    guard failures; after `tolerance` failures within one frame (at a
//!    rate above what the profile already allowed), the speculation is
//!    declared wrong.
//! 3. **Deopt.** The frame hops *down* mid-loop, along a graph down edge
//!    picked by [`TierPolicy::deopt_strategy`].  The default
//!    [`DeoptStrategy::Adaptive`] falls **one rung** when the rung below
//!    is *bias-neutral* for the failing branch (its policy would not
//!    guard it — the landed frame keeps most of its optimization and
//!    cannot immediately re-fire the same guard), and **all the way to
//!    the baseline** when every intermediate candidate still speculates
//!    on the branch.  One-rung falls go through a composed down-table;
//!    full deopts through the artifact's precomputed backward table.
//!    The event stream records an [`EngineEvent::Deopt`] with a
//!    bias-kind [`DeoptReason::AssumptionViolated`] next to the backward
//!    [`EngineEvent::Transition`].  Constants the landed frame never
//!    computed are rematerialized at hop time (§5.1: free
//!    rematerializations), so the deopt-landed frame can take tables
//!    back out again.
//! 4. **Re-climb.** The landed frame keeps profiling: branch edges update
//!    the (now-corrected, rung-keyed) profile and hotness keeps
//!    accumulating, so the frame climbs again — recorded as
//!    [`EngineEvent::Reclimb`].  If the traffic shift was real, the
//!    refreshed profile dissolves the stale bias and the re-climbed frame
//!    stays up.
//! 5. **Demotion.** Every guard-failure deopt of a function raises its
//!    climb thresholds adaptively
//!    ([`TierPolicy::threshold_after_deopts`] doubles per recorded
//!    deopt), so repeat offenders re-earn each rung with a longer
//!    profile.
//!
//! # Value speculation (stable arguments → constant-seeded versions)
//!
//! Beyond branch edges, every `Tiered` request records its concrete
//! integer arguments into the shared *value profile*
//! ([`ProfileTable::record_values`], batched and flushed with the edge
//! profile).  When an argument slot is **stable** — at least
//! [`ValueSpeculationPolicy::min_samples`] observations dominated by one
//! value ([`TierPolicy::value_speculation`]; disable with `None`) — a
//! climb targets a *constant-seeded specialized version*: the cache key
//! grows a third component, `(function, pipeline, speculation)`
//! ([`Speculation`]), and the compile prepends
//! [`ssair::passes::SeedValues`] to the rung's normal mix, materializing
//! the stable value as a constant so SCCP/DCE/branch folding collapse
//! everything the argument decides (the dispatch arm, the weight chain).
//! The artifact records the speculation as its **entry guard**.
//!
//! Entries into specialized code are guarded, and violations deopt
//! through the same `TierGraph` machinery as branch guards:
//!
//! * a frame whose arguments *match* hops in normally (the hop is
//!   labelled `speculated` in the event stream and counted in
//!   [`MetricsSnapshot::value_specialized_tier_ups`]);
//! * a frame whose arguments *violate* the speculation still hops in —
//!   the interpreter-level model of a compiled prologue guard — and the
//!   guard fires at the landing, **before a single specialized
//!   instruction executes**: the frame escapes onto the same rung's
//!   generic artifact ([`EngineEvent::Deopt`] with a value-kind
//!   [`DeoptReason::AssumptionViolated`],
//!   [`MetricsSnapshot::value_guard_failures`])
//!   and re-climbs without the assumption.  The round trip is only taken
//!   when it is provably sound for a violating frame
//!   ([`cache::vet_generic_escape`]): the escape reads nothing the
//!   specialized version computed — only identity-transferred real
//!   values, pinned parameters (arguments are re-suppliable at any hop),
//!   and baseline constants — and is *mandatory* (if unservable at fire
//!   time the request aborts rather than run wrong code).  Round trips
//!   that cannot be vetted are declined at climb time and the frame
//!   climbs generic.
//! * violating requests keep recording their arguments, so a stream that
//!   flips its stable value dissolves the stability
//!   ([`ProfileTable::stable_value`] goes `None`) and later traffic stops
//!   speculating until a new value stabilizes; the dissolved slot can be
//!   swept from the cache through the unified invalidation path (see
//!   *Assumptions & invalidation* below).
//!
//! # Inlining + call-graph speculation
//!
//! The third speculative cache-key dimension is the *call graph*: which
//! callees a version spliced into itself, and at which epoch of each
//! callee's life.
//!
//! **Profiling.**  While a frame runs the baseline, every executed call
//! feeds the per-`(caller, call-site, callee)` *call-edge profile*
//! (buffered in the frame's `LocalProfile`, drained on the same epoch
//! flush as the branch edges).  A site becomes inline-worthy when it has
//! enough samples, one dominant callee, and that callee is spliceable —
//! a leaf built from pure scalar instructions within the size budget
//! ([`ssair::passes::InlineCalls::can_inline`],
//! [`tinyvm::profile::InlineSpeculationPolicy`]).
//!
//! **Splicing.**  A climb to the O3/O4 rungs then targets an *inlined
//! version*: the cache key grows a fourth component
//! ([`cache::InlineSpec`] — the spliced sites, each with the callee's
//! identity **and current inline epoch**), and the compile prepends
//! [`ssair::passes::InlineCalls`] to the rung's mix.  The pass clones
//! the callee's blocks into the caller, records every clone as ordinary
//! OSR state-mapping actions plus a per-version *inline map*
//! (`cloned pc → callee pc`), and guards the callee's profiled branches
//! against the **callee's own** baseline bias (the caller's edge profile
//! knows nothing about cloned blocks).  Entry tables for the spliced
//! version come out of the same [`ssair::feasibility`] precomputation as
//! every other rung — splices are just more recorded actions.  The O4
//! rung lowers the spliced artifact unchanged, so the machine rung runs
//! call-free too.
//!
//! **Cross-function deopt.**  When a spliced guard fires (an inline-kind
//! [`DeoptReason::AssumptionViolated`], counted in
//! [`MetricsSnapshot::inline_guard_failures`], labelled
//! [`TableKind::InlineExit`] in the request trace), the frame exits to
//! the baseline through the version's validated exit table.  A landing
//! *inside* an inlined region **reconstructs the callee frame** from the
//! inline map — the callee runs to its return in its own (true,
//! call-preserving) function, the caller resumes at the call's
//! continuation, and the transition event names the reconstructed callee
//! (`OsrEvent::callee`, rendered as `reconstructing <callee>`).  The
//! frame then re-climbs call-preserving (the splice assumption is
//! poisoned for the rest of the request).
//!
//! **Invalidation.**  Republishing any version of a callee invalidates
//! the callee *entity* — its inline epoch advances and every registered
//! caller artifact spliced at an older epoch is evicted through the one
//! shared path described under *Assumptions & invalidation* below.
//! Epochs make the rule exact under concurrency: an inlined artifact is
//! usable iff every spliced callee still sits at the epoch recorded in
//! the key, so no stale-inline execution is possible even while a
//! republish storm races live climbs.  Already-running frames soundly
//! finish on their `Arc` — spliced code is semantically exact for the
//! body it cloned.  Inlining is on by default and gated by
//! [`EnginePolicy::inlining`]; forward hops into spliced versions are
//! labelled `inlined` and counted in
//! [`MetricsSnapshot::inlined_tier_ups`].
//!
//! # Assumptions & invalidation
//!
//! All three speculation families share one bookkeeping system, the
//! [`assume`] module.  A speculative artifact's bets are an ordered
//! [`AssumptionSet`] of [`Assumption`]s — `ValueStable` (a stable
//! argument seeded as a constant), `InlinedCallee` (a call site spliced
//! at a callee epoch), `BiasGuard` (a branch-bias bet; profile-local
//! today, with room reserved for a future memory-cell kind) — and a
//! compiled version is *named* exclusively by its [`VersionKey`]
//! `{ function, pipeline, assumptions }`: the cache's slot shards, the
//! composed-table memo (as endpoint-key pairs), the cache-hit probe
//! history (as [`VersionKey::generic`] views) and [`Engine::prewarm`]
//! all key on it.  The key's `Display` form is canonical and stable —
//! the serializable version name the horizontal-scale roadmap item
//! needs.
//!
//! Invalidation is one dependency registry inside the [`CodeCache`].  At
//! publish time an artifact is registered under the [`Entity`] each of
//! its assumptions depends on — the callee identity for `InlinedCallee`
//! bets, the `(function, slot)` value-stability for `ValueStable` bets —
//! and every eviction flows through [`CodeCache::invalidate`]:
//!
//! * [`Entity::Rung`] — a republish of a key drops every memoized
//!   composed table routed through that endpoint, counted in
//!   [`MetricsSnapshot::composed_invalidations`];
//! * [`Entity::Callee`] — a callee republish bumps its inline epoch and
//!   evicts every registered caller spliced at an older epoch (stale
//!   in-flight compiles are abandoned at publish), counted in
//!   [`MetricsSnapshot::inline_invalidations`];
//! * [`Entity::ValueStability`] — a dissolved stable value evicts every
//!   artifact seeded on that slot, counted in
//!   [`MetricsSnapshot::value_invalidations`].
//!
//! The per-kind counters sum to
//! [`MetricsSnapshot::assumption_invalidations`], and the bench gate
//! checks that identity on every committed `BENCH_engine.json`.  On the
//! deopt side the same taxonomy names every guard: a deopting frame
//! carries a [`DeoptReason::AssumptionViolated`] with a structured
//! [`ViolatedAssumption`] whose [`AssumptionKind`]
//! (`bias`/`value`/`inline`) is the single label that metrics, request
//! traces, [`OsrEvent::violated`](tinyvm::runtime::OsrEvent) and the
//! event stream all render, and [`cache::vet_generic_escape`] is the one
//! vetted same-rung generic-escape mechanism any assumption kind can
//! request.
//!
//! # Adaptive climb thresholds
//!
//! Beyond deopt demotion, each up edge's threshold reacts to the code
//! cache: the controller records one probe per request per rung (was the
//! next rung's artifact ready when the frame got hot?), and
//! [`TierPolicy::threshold_with_cache`] halves the threshold once at
//! least ¾ of the probes for that `(function, pipeline)` hit (compiling
//! is effectively free — climb sooner) and doubles it under sustained
//! misses (the compile pipeline is behind — don't pile on).  Both
//! adjustments are surfaced in [`MetricsSnapshot::threshold_lowers`] /
//! [`MetricsSnapshot::threshold_raises`].
//!
//! # §5.2 keep-set recompiles
//!
//! A climbed frame must always be able to *leave* its version, but some
//! shapes block the deopt-critical backward entry at the loop header —
//! typically a named loop-local whose baseline φ is dead in O2 yet needed
//! on the loop's exit path.  Compile jobs detect this during table
//! precompute ([`ssair::feasibility::precompute_entries_collecting`]) and
//! recompile with the blocking values in a liveness-extension keep-set
//! ([`PipelineSpec::build_keeping`]; ADCE and sinking treat them as
//! roots), retrying until every loop-header entry of the backward table
//! is served.  The published artifact is then the keep-set recompiled
//! version — cached under the same `(function, pipeline)` key, recorded
//! as [`EngineEvent::ExtensionRecompiled`] — rather than a fast version
//! that could never deoptimize.
//!
//! # Back-pressure, deadlines and compile priorities
//!
//! [`EngineHandle::submit`] is bounded by
//! [`EnginePolicy::queue_depth`]: when that many requests wait for a
//! worker, `submit` blocks and [`EngineHandle::try_submit`] returns
//! [`SubmitError::QueueFull`] (handing the request back) so a front end
//! can shed load instead of queueing unboundedly.  A request may also
//! carry a [`Request::deadline`] — a queueing budget in *microseconds*
//! since submission: work still waiting for a worker once it has waited
//! longer than its budget (a zero budget expires unconditionally) is
//! *dropped* at pickup (the caller stopped waiting; running it would
//! only steal the worker from live traffic), streamed as
//! [`ResultEvent::DeadlineExpired`] and counted in
//! [`MetricsSnapshot::deadline_expired`].  The background compile queue
//! is a hot-first priority queue: jobs carry the submitting function's
//! hotness, and workers pop the hottest job first, so under skewed
//! traffic the functions serving the most requests get their artifacts
//! earliest.
//!
//! # Sessions
//!
//! [`Engine::start`] spawns a persistent worker pool;
//! [`EngineHandle::submit`] enqueues work and returns a [`RequestId`];
//! completions and engine events stream over the handle's channel as
//! [`ResultEvent`]s; [`EngineHandle::shutdown`] drains in-flight work.
//! Multiple sessions share one engine (cache, counters, compile pool).
//! [`Engine::run_batch`] remains as a thin compatibility wrapper that
//! submits a slice of requests and waits for all of them.
//!
//! # Observability
//!
//! The engine can *time* its machinery, not just count it — the
//! observability layer has three parts, all measured on one monotone
//! clock (the **engine epoch**, the creation instant of the shared
//! [`metrics::EventLog`]; every timestamp below is microseconds since
//! that epoch).
//!
//! **Per-request lifecycle traces.**  Every submitted request is traced
//! through submit → worker pickup (the queue wait) → each OSR transition
//! (source/destination rung, table kind — direct, composed,
//! value-specialized, or machine — climb/deopt/re-climb, per-hop cost) →
//! completion,
//! as a [`RequestTrace`] queryable from [`EngineHandle::trace`] (or
//! [`Engine::trace`]) and rendered as a human-readable tree by its
//! `Display` impl (see `examples/engine_trace.rs`).  Timestamps within a
//! trace are monotone.  The same events stream live as timestamped
//! [`metrics::TimedEngineEvent`]s through [`metrics::EventLog::subscribe`]
//! / [`metrics::EventLog::drain_timed`].  The trace store is bounded
//! ([`trace::TRACE_CAPACITY`]); the oldest traces are evicted first.
//!
//! **Per-rung time residency.**  [`Engine::rung_visit_residency`] counts
//! instrumented *visits* per rung; [`Engine::rung_time_residency`]
//! attributes wall-clock *time* (nanoseconds) per rung.  Time is measured
//! by the request controller with one `Instant` stamp per hop — batched
//! exactly like the edge profile, so the interpreter observe path stays
//! lock-free and allocation-free.
//!
//! **Latency histograms.**  Four lock-free log-bucketed histograms
//! ([`histogram::LogHistogram`]) record end-to-end request latency, queue
//! wait, compile latency (all µs) and per-transition cost (ns); their
//! p50/p90/p99 surface in [`metrics::MetricsSnapshot`] (fields
//! `request_latency`, `queue_wait`, `compile_latency`,
//! `transition_cost`).  Quantiles are conservative upper bucket edges
//! with bounded relative error — at most `1/8` (12.5%) above the true
//! sorted-percentile value, exact for small values; see the
//! [`histogram`] module docs.  Recording is one relaxed `fetch_add` per
//! observation, and observations happen only at lifecycle boundaries
//! (pickup, completion, compile publish, hop landing), never per loop
//! iteration.
//!
//! **Reading `BENCH_engine.json`.**  The bench harness
//! (`crates/bench/benches/engine.rs`) serializes a perf-gate snapshot to
//! `BENCH_engine.json` at the repo root, committed in-repo so the perf
//! trajectory of every PR stays diffable.  Keys: `schema` (currently
//! `"bench-engine-v1"`), `warm_session_micros` / `cold_session_micros`
//! (median wall-clock of a full Zipf session with a warm/cold cache),
//! `request_latency_micros` / `queue_wait_micros` /
//! `compile_latency_micros` / `transition_cost_nanos` (objects with
//! `count`/`p50`/`p90`/`p99`/`max`), `rung_visit_residency` and
//! `rung_time_micros` (per-rung maps keyed `"O0"`, `"O1"`, … — the time
//! map holds *true* microseconds, rounded to the nearest from the
//! nanosecond residency counters rather than truncated),
//! `speculation` (the full counter set of [`metrics::MetricsSnapshot`]),
//! `o4_session` (the machine-rung acceptance session: its own
//! warm/cold wall-clock, the measured warm O4-vs-O3 session speedup in
//! permille, and the O4 engine's per-rung residency maps), `layout`
//! (the profile-guided-layout A/B: best warm-session micros with layout
//! on vs off over identical probe traffic, plus each leg's O4
//! taken/fallthrough jump counters), and `inline` (the
//! inline-speculation A/B: best warm-session micros with inlining on vs
//! off over identical call-graph traffic, plus each leg's dynamic
//! call-dispatch count summed over the driver's machine-rung artifacts).
//! CI regenerates the file and `cargo run -p bench --bin bench_gate`
//! fails the build when required fields are missing, quantiles are not
//! monotone (`p50 ≤ p90 ≤ p99`), the tier-1 invariants (≥ 1 composed
//! tier-up, ≥ 1 deopt) regress, the machine rung loses the plurality
//! of `o4_session` execution time, the layout ordering regresses
//! (layout-on warm micros must stay ≤ layout-off, and layout-on must
//! not raise the taken-jump share), or the inline block regresses
//! (inline-on warm micros must stay ≤ inline-off, and the spliced leg
//! must dispatch *strictly fewer* calls — the deterministic witness that
//! the splice happened).  The bench-smoke job additionally diffs freshly
//! regenerated `layout` and `inline` blocks against the committed ones
//! within a tolerance (`bench_gate diff-layout` / `bench_gate
//! diff-inline`).
//!
//! Beyond timing, every transition (with its tier pair and whether it was
//! composed), compile, composed-table build and rejection is recorded as
//! an [`metrics::EngineEvent`]; aggregate counters (tier-ups, composed
//! tier-ups, deopts, cache hits/misses, queue depth, compile latency) are
//! available as a [`metrics::MetricsSnapshot`] from [`Engine::metrics`],
//! in every [`BatchReport`], and in every [`SessionReport`].
//!
//! # Example
//!
//! ```
//! use engine::{Engine, EnginePolicy, Request, ResultEvent};
//! use ssair::interp::Val;
//!
//! let module = minic::compile(
//!     "fn work(x, n) {
//!          var s = 0;
//!          for (var i = 0; i < n; i = i + 1) { s = s + x * x + i; }
//!          return s;
//!      }",
//! ).unwrap();
//! let engine = Engine::new(module, EnginePolicy::three_tier(8, 24, 24));
//! engine.prewarm("work").unwrap(); // compile O1..O3 + the chained composed tables
//!
//! let session = engine.start();
//! let ids: Vec<_> = (0..8)
//!     .map(|k| session.submit(Request::tiered("work", vec![Val::Int(2), Val::Int(200 + k)])))
//!     .collect();
//! let report = session.shutdown(); // drains all in-flight work
//! let results = report.results();
//! assert!(ids.iter().all(|id| results[id].is_ok()));
//! assert!(report.metrics.tier_ups >= 1);
//! ```

pub mod assume;
pub mod cache;
mod engine;
pub mod histogram;
pub mod metrics;
pub mod pool;
mod session;
pub mod tiers;
pub mod trace;

pub use assume::{
    Assumption, AssumptionKind, AssumptionSet, Entity, VersionKey, ViolatedAssumption,
};
pub use cache::{
    CacheKey, CodeCache, CompileError, CompiledVersion, InlineSpec, PipelineSpec, Speculation,
};
pub use engine::{
    BatchReport, Engine, EngineError, EnginePolicy, ExecMode, ProfileTable, Request,
    SpeculationPolicy, ValueSpeculationPolicy,
};
pub use histogram::{HistogramSnapshot, LogHistogram};
pub use metrics::{DeoptReason, EngineEvent, EngineMetrics, MetricsSnapshot, TimedEngineEvent};
pub use session::{EngineHandle, RequestId, ResultEvent, SessionReport, SubmitError};
pub use tiers::{DeoptStrategy, LadderPolicy, Tier, TierEdge, TierGraph, TierPolicy, NEVER_HOT};
pub use trace::{RequestTrace, TableKind, TraceTransition};
